//! SINC^N (CIC) decimation filters — the first stage of the paper's
//! decimation chain ("a 3rd order SINC-filter as first stage", §3.1).
//!
//! A CIC decimator of order `N` and ratio `R` is `N` integrators running
//! at the modulator rate, a downsampler, and `N` differentiators (combs)
//! at the low rate. Its DC gain is `R^N` and its magnitude response is
//! `|sin(πfR/fs) / sin(πf/fs)|^N` — the matched noise filter for an
//! `N−1`-order ΣΔ modulator.
//!
//! Two implementations are provided:
//!
//! * [`CicDecimator`] — integer (`i64`) arithmetic, bit-exact to an FPGA
//!   realization (CIC tolerates two's-complement wraparound by design,
//!   though with a ±1-bit input and the paper's `R = 32`, 16 bits of
//!   growth never wrap an `i64`);
//! * [`CicDecimatorF64`] — floating-point twin used by the behavioral
//!   chain and to cross-check the integer path.

use crate::bits::PackedBits;
use crate::DspError;

/// Byte-indexed weighted popcount tables for the word-parallel kernel:
/// for a byte value `b`, `W1[b] = Σ t·bit_t(b)` and `W2[b] = Σ t²·bit_t(b)`
/// over bit positions `t ∈ 0..8`. Combined with per-byte offsets they give
/// the first and second position moments of the set bits of a whole word
/// in eight table lookups.
const fn weighted_popcount_tables() -> ([u16; 256], [u16; 256]) {
    let mut w1 = [0u16; 256];
    let mut w2 = [0u16; 256];
    let mut b = 0usize;
    while b < 256 {
        let mut t = 0usize;
        while t < 8 {
            if (b >> t) & 1 == 1 {
                w1[b] += t as u16;
                w2[b] += (t * t) as u16;
            }
            t += 1;
        }
        b += 1;
    }
    (w1, w2)
}

/// `(W1, W2)` weighted popcount tables (see
/// [`weighted_popcount_tables`]).
static WEIGHTED: ([u16; 256], [u16; 256]) = weighted_popcount_tables();

/// The low `len` bits of a word (`len ≤ 64`).
#[inline]
fn low_bits(word: u64, len: usize) -> u64 {
    if len >= 64 {
        word
    } else {
        word & ((1u64 << len) - 1)
    }
}

/// Integer CIC decimator (order `N`, ratio `R`, unit differential delay).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CicDecimator {
    order: usize,
    ratio: usize,
    integrators: Vec<i64>,
    combs: Vec<i64>,
    phase: usize,
}

impl CicDecimator {
    /// Creates a CIC decimator.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] when `order == 0` or
    /// `ratio < 2`.
    pub fn new(order: usize, ratio: usize) -> Result<Self, DspError> {
        if order == 0 {
            return Err(DspError::InvalidParameter("CIC order must be >= 1".into()));
        }
        if ratio < 2 {
            return Err(DspError::InvalidParameter("CIC ratio must be >= 2".into()));
        }
        Ok(CicDecimator {
            order,
            ratio,
            integrators: vec![0; order],
            combs: vec![0; order],
            phase: 0,
        })
    }

    /// The paper's first stage: 3rd-order SINC decimating by 32 (the
    /// remaining ÷4 to reach OSR 128 is done by the FIR stage).
    pub fn paper_default() -> Self {
        CicDecimator::new(3, 32).expect("paper parameters are valid")
    }

    /// Filter order `N`.
    pub fn order(&self) -> usize {
        self.order
    }

    /// Decimation ratio `R`.
    pub fn ratio(&self) -> usize {
        self.ratio
    }

    /// DC gain `R^N`.
    pub fn gain(&self) -> i64 {
        (self.ratio as i64).pow(self.order as u32)
    }

    /// Register width (bits) required for unconditional correctness with a
    /// `input_bits`-wide input: `input_bits + N·log2(R)` (Hogenauer).
    pub fn required_bits(&self, input_bits: u32) -> u32 {
        input_bits + (self.order as f64 * (self.ratio as f64).log2()).ceil() as u32
    }

    /// Pushes one high-rate sample; returns a decimated output every
    /// `ratio`-th call.
    pub fn push(&mut self, x: i64) -> Option<i64> {
        let mut acc = x;
        for int in &mut self.integrators {
            *int = int.wrapping_add(acc);
            acc = *int;
        }
        self.phase += 1;
        if self.phase < self.ratio {
            return None;
        }
        self.phase = 0;
        let mut v = acc;
        for comb in &mut self.combs {
            let prev = *comb;
            *comb = v;
            v = v.wrapping_sub(prev);
        }
        Some(v)
    }

    /// Processes a block, returning all decimated outputs.
    pub fn process(&mut self, xs: &[i64]) -> Vec<i64> {
        xs.iter().filter_map(|&x| self.push(x)).collect()
    }

    /// Consumes up to 64 single-bit samples at once — the word-parallel
    /// kernel behind the packed hot path.
    ///
    /// The low `len` bits of `word` (LSB-first, bits above `len` are
    /// ignored) each map to `+scale` (set) or `−scale` (clear), exactly
    /// as if fed one at a time through [`CicDecimator::push`]; decimated
    /// outputs are handed to `emit` in stream order. **Bit-identical** to
    /// the scalar path: for a ±1-bit input the integrator cascade reduces
    /// to position moments of the set bits, which the kernel computes per
    /// word with popcounts and the byte-indexed partial-sum tables —
    /// closed forms that hold in ℤ/2⁶⁴, the same ring the scalar
    /// wrapping arithmetic runs in (property-tested in `tests/props.rs`).
    ///
    /// Orders 1–3 use the closed forms; higher orders fall back to the
    /// scalar recurrence internally (same contract, no speedup).
    ///
    /// # Panics
    ///
    /// Panics when `len > 64`.
    pub fn push_word(&mut self, word: u64, len: usize, scale: i64, emit: &mut impl FnMut(i64)) {
        assert!(len <= 64, "a word carries at most 64 bits, got {len}");
        let mut lo = 0usize;
        while lo < len {
            // Advance in segments bounded by decimation boundaries so each
            // segment produces at most one output, right at its end.
            let take = (self.ratio - self.phase).min(len - lo);
            self.advance_bits(low_bits(word >> lo, take), take, scale);
            self.phase += take;
            lo += take;
            if self.phase == self.ratio {
                self.phase = 0;
                let mut v = self.integrators[self.order - 1];
                for comb in &mut self.combs {
                    let prev = *comb;
                    *comb = v;
                    v = v.wrapping_sub(prev);
                }
                emit(v);
            }
        }
    }

    /// Processes a packed single-bit stream through
    /// [`CicDecimator::push_word`], appending decimated outputs to `out`
    /// (which is not cleared, so callers can accumulate).
    pub fn process_packed_into(&mut self, bits: &PackedBits, scale: i64, out: &mut Vec<i64>) {
        let mut remaining = bits.len();
        for &w in bits.words() {
            let take = remaining.min(64);
            self.push_word(w, take, scale, &mut |v| out.push(v));
            remaining -= take;
        }
    }

    /// Advances the integrator cascade by `len` bits of `seg` without
    /// touching the decimation phase or combs. `seg` must already be
    /// masked to its low `len` bits (`1 ≤ len ≤ 64`).
    #[inline]
    fn advance_bits(&mut self, seg: u64, len: usize, scale: i64) {
        debug_assert!((1..=64).contains(&len));
        debug_assert_eq!(seg, low_bits(seg, len));
        if self.order > 3 {
            // No closed form implemented: scalar fallback.
            for k in 0..len {
                let x = if (seg >> k) & 1 == 1 {
                    scale
                } else {
                    scale.wrapping_neg()
                };
                let mut acc = x;
                for int in &mut self.integrators {
                    *int = int.wrapping_add(acc);
                    acc = *int;
                }
            }
            return;
        }
        // Closed forms. Per sample i (1-indexed in the segment, input
        // x_i = ±scale) the scalar cascade does s1 += x_i; s2 += s1;
        // s3 += s2. Unrolled over L = len samples:
        //
        //   s1' = s1 + A                               A = Σ x_i
        //   s2' = s2 + L·s1 + B                        B = Σ (L+1−i)·x_i
        //   s3' = s3 + L·s2 + T(L)·s1 + C              C = Σ T(L+1−i)·x_i
        //
        // with T(m) = m(m+1)/2. For x_i = scale·(2b_i − 1) each weighted
        // sum reduces to the popcount P and the position moments
        // M1 = Σ i·b_i, M2 = Σ i²·b_i of the set bits, which come from
        // the byte tables. All identities hold in ℤ/2⁶⁴, so wrapping
        // products/sums reproduce the scalar path bit for bit.
        let l = len as i64;
        let p = i64::from(seg.count_ones());
        let a = scale.wrapping_mul(2 * p - l);
        if self.order == 1 {
            self.integrators[0] = self.integrators[0].wrapping_add(a);
            return;
        }
        // 0-indexed moments K1 = Σ k·b_k, K2 = Σ k²·b_k via byte tables.
        let (w1, w2) = (&WEIGHTED.0, &WEIGHTED.1);
        let mut k1 = 0i64;
        let mut k2 = 0i64;
        let mut w = seg;
        let mut base = 0i64;
        while w != 0 {
            let byte = (w & 0xFF) as usize;
            let pb = i64::from((byte as u8).count_ones());
            let t1 = i64::from(w1[byte]);
            let t2 = i64::from(w2[byte]);
            k1 += base * pb + t1;
            k2 += base * base * pb + 2 * base * t1 + t2;
            w >>= 8;
            base += 8;
        }
        // 1-indexed moments.
        let m1 = k1 + p;
        let tri = l * (l + 1) / 2;
        // B = scale·(2·((L+1)·P − M1) − L(L+1)/2).
        let b = scale.wrapping_mul(2 * ((l + 1) * p - m1) - tri);
        let s1 = self.integrators[0];
        if self.order == 2 {
            self.integrators[1] = self.integrators[1]
                .wrapping_add(l.wrapping_mul(s1))
                .wrapping_add(b);
            self.integrators[0] = s1.wrapping_add(a);
            return;
        }
        let m2 = k2 + 2 * k1 + p;
        // 2·Σ T(L+1−i)·b_i = (L+1)(L+2)·P − (2L+3)·M1 + M2, and
        // Σ_{m=1..L} T(m) = L(L+1)(L+2)/6; C is their scaled difference.
        let c2 = (l + 1) * (l + 2) * p - (2 * l + 3) * m1 + m2;
        let tet = l * (l + 1) * (l + 2) / 6;
        let c = scale.wrapping_mul(c2 - tet);
        let s2 = self.integrators[1];
        self.integrators[2] = self.integrators[2]
            .wrapping_add(l.wrapping_mul(s2))
            .wrapping_add(tri.wrapping_mul(s1))
            .wrapping_add(c);
        self.integrators[1] = s2.wrapping_add(l.wrapping_mul(s1)).wrapping_add(b);
        self.integrators[0] = s1.wrapping_add(a);
    }

    /// Clears all filter state.
    pub fn reset(&mut self) {
        self.integrators.iter_mut().for_each(|v| *v = 0);
        self.combs.iter_mut().for_each(|v| *v = 0);
        self.phase = 0;
    }

    /// Gain-normalized magnitude response at a frequency normalized to
    /// the *input* rate (cycles/sample):
    /// `|sin(πfR) / (R·sin(πf))|^N`, with the `f → 0` limit of 1.
    pub fn magnitude_at(&self, normalized_freq: f64) -> f64 {
        cic_magnitude(self.order, self.ratio, normalized_freq)
    }
}

/// Shared CIC magnitude formula (see [`CicDecimator::magnitude_at`]).
fn cic_magnitude(order: usize, ratio: usize, normalized_freq: f64) -> f64 {
    let f = normalized_freq;
    let denom = (std::f64::consts::PI * f).sin();
    if denom.abs() < 1e-12 {
        return 1.0; // DC (and integer-cycle aliases of it)
    }
    let num = (std::f64::consts::PI * f * ratio as f64).sin();
    (num / (ratio as f64 * denom)).abs().powi(order as i32)
}

/// Floating-point CIC decimator, the behavioral twin of [`CicDecimator`].
#[derive(Debug, Clone, PartialEq)]
pub struct CicDecimatorF64 {
    order: usize,
    ratio: usize,
    integrators: Vec<f64>,
    combs: Vec<f64>,
    phase: usize,
}

impl CicDecimatorF64 {
    /// Creates a floating-point CIC decimator.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] when `order == 0` or
    /// `ratio < 2`.
    pub fn new(order: usize, ratio: usize) -> Result<Self, DspError> {
        if order == 0 {
            return Err(DspError::InvalidParameter("CIC order must be >= 1".into()));
        }
        if ratio < 2 {
            return Err(DspError::InvalidParameter("CIC ratio must be >= 2".into()));
        }
        Ok(CicDecimatorF64 {
            order,
            ratio,
            integrators: vec![0.0; order],
            combs: vec![0.0; order],
            phase: 0,
        })
    }

    /// DC gain `R^N`.
    pub fn gain(&self) -> f64 {
        (self.ratio as f64).powi(self.order as i32)
    }

    /// Decimation ratio `R`.
    pub fn ratio(&self) -> usize {
        self.ratio
    }

    /// Filter order `N`.
    pub fn order(&self) -> usize {
        self.order
    }

    /// Pushes one high-rate sample; returns a decimated output (already
    /// normalized by the DC gain) every `ratio`-th call.
    pub fn push(&mut self, x: f64) -> Option<f64> {
        let mut acc = x;
        for int in &mut self.integrators {
            *int += acc;
            acc = *int;
        }
        self.phase += 1;
        if self.phase < self.ratio {
            return None;
        }
        self.phase = 0;
        let mut v = acc;
        for comb in &mut self.combs {
            let prev = *comb;
            *comb = v;
            v -= prev;
        }
        Some(v / self.gain())
    }

    /// Processes a block, returning all decimated (normalized) outputs.
    pub fn process(&mut self, xs: &[f64]) -> Vec<f64> {
        xs.iter().filter_map(|&x| self.push(x)).collect()
    }

    /// Clears all filter state.
    pub fn reset(&mut self) {
        self.integrators.iter_mut().for_each(|v| *v = 0.0);
        self.combs.iter_mut().for_each(|v| *v = 0.0);
        self.phase = 0;
    }

    /// Gain-normalized magnitude response at a frequency normalized to
    /// the *input* rate (see [`CicDecimator::magnitude_at`]).
    pub fn magnitude_at(&self, normalized_freq: f64) -> f64 {
        cic_magnitude(self.order, self.ratio, normalized_freq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_gain_is_r_to_the_n() {
        let mut cic = CicDecimator::new(3, 8).unwrap();
        assert_eq!(cic.gain(), 512);
        // Constant input of 1 must converge to the DC gain.
        let out = cic.process(&vec![1; 8 * 16]);
        assert_eq!(*out.last().unwrap(), 512);
    }

    #[test]
    fn paper_stage_parameters() {
        let cic = CicDecimator::paper_default();
        assert_eq!(cic.order(), 3);
        assert_eq!(cic.ratio(), 32);
        assert_eq!(cic.gain(), 32_768);
        // Hogenauer width for a 1-bit input: 1 + 3*5 = 16 bits.
        assert_eq!(cic.required_bits(1), 16);
    }

    #[test]
    fn impulse_response_sums_to_polyphase_gain() {
        // The full (undecimated) boxcar^N response sums to R^N, but the
        // decimated output keeps only every R-th tap, so a single
        // high-rate impulse contributes R^(N-1). Summed over all R input
        // phases the total is R^N.
        let n_order = 3;
        let r = 4;
        let mut per_phase_sum = 0_i64;
        for phase in 0..r {
            let mut cic = CicDecimator::new(n_order, r).unwrap();
            let mut impulse = vec![0_i64; r * 20];
            impulse[phase] = 1;
            let out = cic.process(&impulse);
            let sum: i64 = out.iter().sum();
            assert_eq!(sum, (r as i64).pow(n_order as u32 - 1), "phase {phase}");
            assert!(out.iter().all(|&v| v >= 0));
            per_phase_sum += sum;
        }
        assert_eq!(per_phase_sum, (r as i64).pow(n_order as u32));
    }

    #[test]
    fn float_and_integer_paths_agree_on_bitstreams() {
        let mut icic = CicDecimator::new(3, 16).unwrap();
        let mut fcic = CicDecimatorF64::new(3, 16).unwrap();
        // Pseudo-random ±1 bitstream.
        let bits: Vec<i64> = (0..16 * 64)
            .map(|i| {
                if (i * 2654435761_u64 as usize) % 7 < 3 {
                    1
                } else {
                    -1
                }
            })
            .collect();
        let fin: Vec<f64> = bits.iter().map(|&b| b as f64).collect();
        let iout = icic.process(&bits);
        let fout = fcic.process(&fin);
        assert_eq!(iout.len(), fout.len());
        let gain = icic.gain() as f64;
        for (a, b) in iout.iter().zip(&fout) {
            assert!(
                (*a as f64 / gain - b).abs() < 1e-9,
                "integer {} vs float {}",
                *a as f64 / gain,
                b
            );
        }
    }

    #[test]
    fn decimation_ratio_is_respected() {
        let mut cic = CicDecimatorF64::new(2, 10).unwrap();
        let out = cic.process(&vec![0.5; 1000]);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn sinc_nulls_fall_at_multiples_of_output_rate() {
        // A tone exactly at the output rate f = fs/R lands in the first
        // null of the sinc response and must be strongly attenuated.
        let order = 3;
        let r = 32;
        let fs = 128_000.0;
        let f_null = fs / r as f64; // 4 kHz
        let n = r * 512;
        let tone: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * f_null * i as f64 / fs).sin())
            .collect();
        let mut cic = CicDecimatorF64::new(order, r).unwrap();
        let out = cic.process(&tone);
        // Skip the transient, measure residual RMS.
        let settled = &out[8..];
        let rms = (settled.iter().map(|v| v * v).sum::<f64>() / settled.len() as f64).sqrt();
        assert!(rms < 1e-3, "null leakage rms {rms}");
    }

    #[test]
    fn passband_tone_survives() {
        // A 100 Hz tone (far below the 4 kHz output Nyquist of 2 kHz)
        // passes with near-unity gain.
        let fs = 128_000.0;
        let r = 32;
        let f = 100.0;
        let n = r * 4096;
        let tone: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * f * i as f64 / fs).sin())
            .collect();
        let mut cic = CicDecimatorF64::new(3, r).unwrap();
        let out = cic.process(&tone);
        let settled = &out[16..];
        let rms = (settled.iter().map(|v| v * v).sum::<f64>() / settled.len() as f64).sqrt();
        let expected = 1.0 / 2.0_f64.sqrt();
        assert!((rms - expected).abs() / expected < 0.01, "rms {rms}");
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut cic = CicDecimator::new(3, 4).unwrap();
        let fresh = cic.clone();
        let _ = cic.process(&[1, -1, 1, 1, -1, 1, 0, 3]);
        assert_ne!(cic, fresh);
        cic.reset();
        assert_eq!(cic, fresh);
        let mut f = CicDecimatorF64::new(2, 4).unwrap();
        let fresh = f.clone();
        let _ = f.process(&[0.5; 9]);
        f.reset();
        assert_eq!(f, fresh);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(CicDecimator::new(0, 8).is_err());
        assert!(CicDecimator::new(3, 1).is_err());
        assert!(CicDecimatorF64::new(0, 8).is_err());
        assert!(CicDecimatorF64::new(3, 0).is_err());
    }

    #[test]
    fn magnitude_response_matches_measured_attenuation() {
        let cic = CicDecimatorF64::new(3, 32).unwrap();
        // DC gain 1.
        assert!((cic.magnitude_at(0.0) - 1.0).abs() < 1e-12);
        // Exact null at the output rate (f = 1/R of the input rate).
        assert!(cic.magnitude_at(1.0 / 32.0) < 1e-12);
        // Cross-check the formula against a measured tone: 100 Hz at
        // 128 kHz input.
        let fs = 128_000.0;
        let f = 100.0;
        let predicted = cic.magnitude_at(f / fs);
        let tone: Vec<f64> = (0..32 * 4096)
            .map(|i| (2.0 * std::f64::consts::PI * f * i as f64 / fs).sin())
            .collect();
        let mut filt = CicDecimatorF64::new(3, 32).unwrap();
        let out = filt.process(&tone);
        let settled = &out[16..];
        let rms = (settled.iter().map(|v| v * v).sum::<f64>() / settled.len() as f64).sqrt();
        let measured = rms * 2.0_f64.sqrt();
        assert!(
            (measured - predicted).abs() < 0.01 * predicted,
            "measured {measured} vs formula {predicted}"
        );
        // Integer twin agrees with the float twin.
        let icic = CicDecimator::new(3, 32).unwrap();
        assert!((icic.magnitude_at(0.01) - cic.magnitude_at(0.01)).abs() < 1e-15);
    }

    /// Reference: feed bits one at a time through the scalar path.
    fn scalar_reference(cic: &mut CicDecimator, bools: &[bool], scale: i64) -> Vec<i64> {
        bools
            .iter()
            .filter_map(|&b| cic.push(if b { scale } else { -scale }))
            .collect()
    }

    #[test]
    fn word_kernel_matches_scalar_push() {
        // Deterministic pseudo-random bit pattern across several orders,
        // ratios, and word-unaligned lengths (the proptest in
        // tests/props.rs covers random streams).
        let scale = 1_i64 << 20;
        for order in 1..=5 {
            for ratio in [2usize, 3, 7, 32, 100] {
                for len in [1usize, 63, 64, 65, 128, 128 * 3 + 17] {
                    let bools: Vec<bool> = (0..len)
                        .map(|i| (i.wrapping_mul(2654435761) >> 7) % 5 < 2)
                        .collect();
                    let packed: PackedBits = bools.iter().copied().collect();
                    let mut scalar = CicDecimator::new(order, ratio).unwrap();
                    let mut word = CicDecimator::new(order, ratio).unwrap();
                    let expect = scalar_reference(&mut scalar, &bools, scale);
                    let mut got = Vec::new();
                    word.process_packed_into(&packed, scale, &mut got);
                    assert_eq!(got, expect, "order {order} ratio {ratio} len {len}");
                    // Full state agrees, not just the outputs — the two
                    // paths stay interchangeable mid-stream.
                    assert_eq!(word, scalar, "order {order} ratio {ratio} len {len}");
                }
            }
        }
    }

    #[test]
    fn word_kernel_interoperates_with_scalar_mid_stream() {
        // Alternate word-parallel and scalar feeding on the same filter;
        // the result must match an all-scalar run.
        let scale = 7_i64;
        let bools: Vec<bool> = (0..200).map(|i| i % 3 != 1).collect();
        let mut all_scalar = CicDecimator::new(3, 8).unwrap();
        let expect = scalar_reference(&mut all_scalar, &bools, scale);
        let mut mixed = CicDecimator::new(3, 8).unwrap();
        let mut got = Vec::new();
        // First 70 bits scalar, then the rest in words of 64.
        for &b in &bools[..70] {
            if let Some(v) = mixed.push(if b { scale } else { -scale }) {
                got.push(v);
            }
        }
        let tail: PackedBits = bools[70..].iter().copied().collect();
        mixed.process_packed_into(&tail, scale, &mut got);
        assert_eq!(got, expect);
        assert_eq!(mixed, all_scalar);
    }

    #[test]
    fn word_kernel_wraps_like_the_scalar_path() {
        // Force two's-complement wraparound (the property CIC designs
        // rely on) with a huge scale; both paths must wrap identically.
        let scale = i64::MAX / 3;
        let bools: Vec<bool> = (0..64 * 5).map(|i| i % 7 < 3).collect();
        let packed: PackedBits = bools.iter().copied().collect();
        let mut scalar = CicDecimator::new(3, 32).unwrap();
        let mut word = CicDecimator::new(3, 32).unwrap();
        let expect = scalar_reference(&mut scalar, &bools, scale);
        let mut got = Vec::new();
        word.process_packed_into(&packed, scale, &mut got);
        assert_eq!(got, expect);
    }

    #[test]
    fn word_kernel_rejects_oversized_len() {
        let mut cic = CicDecimator::paper_default();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cic.push_word(0, 65, 1, &mut |_| {});
        }));
        assert!(result.is_err());
    }

    #[test]
    fn linearity_of_integer_path() {
        let xs: Vec<i64> = (0..256).map(|i| ((i * 7) % 11) as i64 - 5).collect();
        let ys: Vec<i64> = (0..256).map(|i| ((i * 3) % 13) as i64 - 6).collect();
        let sum: Vec<i64> = xs.iter().zip(&ys).map(|(a, b)| a + b).collect();
        let mut c1 = CicDecimator::new(3, 8).unwrap();
        let mut c2 = CicDecimator::new(3, 8).unwrap();
        let mut c3 = CicDecimator::new(3, 8).unwrap();
        let ox = c1.process(&xs);
        let oy = c2.process(&ys);
        let os = c3.process(&sum);
        for ((a, b), s) in ox.iter().zip(&oy).zip(&os) {
            assert_eq!(a + b, *s);
        }
    }
}

//! From-scratch radix-2 complex FFT.
//!
//! The spectral characterization of the ΣΔ-ADC (paper Fig. 7) needs a
//! Fourier transform; no external DSP crate is used, so this module
//! implements the classic iterative Cooley–Tukey decimation-in-time FFT
//! with bit-reversal permutation, plus the inverse transform and a naive
//! DFT used as a test oracle.

use crate::DspError;

/// Minimal complex number for the FFT (kept local to avoid an external
/// num-complex dependency).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates a complex number from rectangular parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// The additive identity.
    #[inline]
    pub const fn zero() -> Self {
        Complex { re: 0.0, im: 0.0 }
    }

    /// `e^{iθ}` on the unit circle.
    #[inline]
    pub fn from_angle(theta: f64) -> Self {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Squared magnitude `re² + im²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }
}

impl std::ops::Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl std::ops::Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl std::ops::Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl std::ops::Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        Complex::new(self.re * rhs, self.im * rhs)
    }
}

/// In-place forward FFT (no normalization), radix-2 decimation in time.
///
/// # Errors
///
/// Returns [`DspError::LengthNotPowerOfTwo`] unless `data.len()` is a
/// power of two (length 1 is allowed and a no-op).
pub fn fft(data: &mut [Complex]) -> Result<(), DspError> {
    transform(data, -1.0)
}

/// In-place inverse FFT, normalized by `1/N` so that `ifft(fft(x)) == x`.
///
/// # Errors
///
/// Returns [`DspError::LengthNotPowerOfTwo`] unless `data.len()` is a
/// power of two.
pub fn ifft(data: &mut [Complex]) -> Result<(), DspError> {
    transform(data, 1.0)?;
    let scale = 1.0 / data.len() as f64;
    for v in data.iter_mut() {
        *v = *v * scale;
    }
    Ok(())
}

/// Forward FFT of a real signal: packs into complex, transforms, and
/// returns the full complex spectrum.
///
/// # Errors
///
/// Returns [`DspError::LengthNotPowerOfTwo`] unless `signal.len()` is a
/// power of two.
pub fn fft_real(signal: &[f64]) -> Result<Vec<Complex>, DspError> {
    let mut buf: Vec<Complex> = signal.iter().map(|&x| Complex::new(x, 0.0)).collect();
    fft(&mut buf)?;
    Ok(buf)
}

fn transform(data: &mut [Complex], sign: f64) -> Result<(), DspError> {
    let n = data.len();
    if !n.is_power_of_two() {
        return Err(DspError::LengthNotPowerOfTwo { len: n });
    }
    if n <= 1 {
        return Ok(());
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            data.swap(i, j);
        }
    }
    // Iterative butterflies.
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::from_angle(ang);
        let half = len / 2;
        for start in (0..n).step_by(len) {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..half {
                let u = data[start + k];
                let v = data[start + k + half] * w;
                data[start + k] = u + v;
                data[start + k + half] = u - v;
                w = w * wlen;
            }
        }
        len <<= 1;
    }
    Ok(())
}

/// Naive `O(N²)` DFT, used as a correctness oracle in tests and small
/// analyses. Accepts any length.
pub fn naive_dft(signal: &[Complex]) -> Vec<Complex> {
    let n = signal.len();
    let mut out = vec![Complex::zero(); n];
    for (k, out_k) in out.iter_mut().enumerate() {
        let mut acc = Complex::zero();
        for (t, &x) in signal.iter().enumerate() {
            let ang = -2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64;
            acc = acc + x * Complex::from_angle(ang);
        }
        *out_k = acc;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: Complex, b: Complex, tol: f64) {
        assert!(
            (a.re - b.re).abs() < tol && (a.im - b.im).abs() < tol,
            "{a:?} != {b:?}"
        );
    }

    #[test]
    fn fft_matches_naive_dft() {
        let n = 64;
        let signal: Vec<Complex> = (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                Complex::new(
                    (2.0 * std::f64::consts::PI * 5.0 * t).sin() + 0.3 * t,
                    0.1 * (2.0 * std::f64::consts::PI * 9.0 * t).cos(),
                )
            })
            .collect();
        let oracle = naive_dft(&signal);
        let mut fast = signal.clone();
        fft(&mut fast).unwrap();
        for (a, b) in fast.iter().zip(&oracle) {
            assert_close(*a, *b, 1e-9);
        }
    }

    #[test]
    fn ifft_round_trips() {
        let n = 256;
        let signal: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let mut buf = signal.clone();
        fft(&mut buf).unwrap();
        ifft(&mut buf).unwrap();
        for (a, b) in buf.iter().zip(&signal) {
            assert_close(*a, *b, 1e-12);
        }
    }

    #[test]
    fn pure_tone_lands_in_single_bin() {
        let n = 128;
        let k = 17;
        let signal: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * k as f64 * i as f64 / n as f64).cos())
            .collect();
        let spec = fft_real(&signal).unwrap();
        // Energy only at bins k and n-k, each with magnitude n/2.
        for (i, v) in spec.iter().enumerate() {
            if i == k || i == n - k {
                assert!(
                    (v.abs() - n as f64 / 2.0).abs() < 1e-9,
                    "bin {i}: {}",
                    v.abs()
                );
            } else {
                assert!(v.abs() < 1e-9, "leak at bin {i}: {}", v.abs());
            }
        }
    }

    #[test]
    fn parseval_energy_is_conserved() {
        let n = 512;
        let signal: Vec<f64> = (0..n).map(|i| ((i * i) as f64 * 0.001).sin()).collect();
        let time_energy: f64 = signal.iter().map(|x| x * x).sum();
        let spec = fft_real(&signal).unwrap();
        let freq_energy: f64 = spec.iter().map(|v| v.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-9 * time_energy);
    }

    #[test]
    fn dc_signal_concentrates_in_bin_zero() {
        let signal = vec![3.0; 32];
        let spec = fft_real(&signal).unwrap();
        assert!((spec[0].re - 96.0).abs() < 1e-12);
        for v in &spec[1..] {
            assert!(v.abs() < 1e-12);
        }
    }

    #[test]
    fn non_power_of_two_is_rejected() {
        let mut buf = vec![Complex::zero(); 100];
        assert_eq!(
            fft(&mut buf).unwrap_err(),
            DspError::LengthNotPowerOfTwo { len: 100 }
        );
        assert!(ifft(&mut buf).is_err());
        assert!(fft_real(&[0.0; 7]).is_err());
    }

    #[test]
    fn tiny_lengths_work() {
        let mut one = vec![Complex::new(5.0, 0.0)];
        fft(&mut one).unwrap();
        assert_close(one[0], Complex::new(5.0, 0.0), 1e-15);

        let mut two = vec![Complex::new(1.0, 0.0), Complex::new(-1.0, 0.0)];
        fft(&mut two).unwrap();
        assert_close(two[0], Complex::zero(), 1e-15);
        assert_close(two[1], Complex::new(2.0, 0.0), 1e-15);
    }

    #[test]
    fn linearity_holds() {
        let n = 64;
        let a: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64).sin(), 0.0))
            .collect();
        let b: Vec<Complex> = (0..n)
            .map(|i| Complex::new(0.0, (i as f64).cos()))
            .collect();
        let mut fa = a.clone();
        let mut fb = b.clone();
        fft(&mut fa).unwrap();
        fft(&mut fb).unwrap();
        let mut sum: Vec<Complex> = a.iter().zip(&b).map(|(&x, &y)| x + y * 2.0).collect();
        fft(&mut sum).unwrap();
        for i in 0..n {
            assert_close(sum[i], fa[i] + fb[i] * 2.0, 1e-10);
        }
    }

    #[test]
    fn complex_helpers_behave() {
        let z = Complex::new(3.0, -4.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.conj(), Complex::new(3.0, 4.0));
        let w = Complex::from_angle(std::f64::consts::FRAC_PI_2);
        assert!((w.re).abs() < 1e-15 && (w.im - 1.0).abs() < 1e-15);
        assert_eq!(Complex::zero() + z, z);
        assert_eq!(z - z, Complex::zero());
        let p = Complex::new(0.0, 1.0) * Complex::new(0.0, 1.0);
        assert_close(p, Complex::new(-1.0, 0.0), 1e-15);
    }
}

//! Lane-banked decimation: K packed bitstreams through K filter chains
//! in lockstep.
//!
//! The decimation stages are already word-parallel ([`CicDecimator::push_word`]
//! consumes 64 modulator clocks per call) and account for a few percent
//! of frame cost, so these banks are deliberately *thin*: one scalar
//! filter per lane, driven lane-by-lane. That keeps every lane
//! bit-identical to the scalar chain **by construction** — the same
//! kernel runs on the same words — while giving the batched readout in
//! `tonos-core` a uniform push/retire/reset lane lifecycle mirroring the
//! `SigmaDelta2Bank` modulator bank in `tonos-analog`.

use crate::bits::PackedBits;
use crate::cic::CicDecimator;
use crate::decimator::TwoStageDecimator;
use crate::fir::FirDecimator;

/// K first-stage CIC decimators with a lane lifecycle.
#[derive(Debug, Clone, Default)]
pub struct CicBank {
    lanes: Vec<CicDecimator>,
}

impl CicBank {
    /// An empty bank.
    pub fn new() -> Self {
        CicBank::default()
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Absorbs a scalar CIC as a new lane; returns its index.
    pub fn push_lane(&mut self, cic: CicDecimator) -> usize {
        self.lanes.push(cic);
        self.lanes.len() - 1
    }

    /// Removes a lane, handing back the scalar filter with its exact
    /// state. Later lanes shift down by one.
    pub fn retire_lane(&mut self, lane: usize) -> CicDecimator {
        self.lanes.remove(lane)
    }

    /// Borrows one lane mutably (for reset or inspection).
    pub fn lane_mut(&mut self, lane: usize) -> &mut CicDecimator {
        &mut self.lanes[lane]
    }

    /// Decimates K packed bitstreams, appending each lane's outputs to
    /// the matching `out` entry. Bit-identical to running each scalar
    /// CIC alone — it *is* each scalar CIC.
    ///
    /// # Panics
    ///
    /// Panics when `bits` and `outs` lengths differ from the lane count.
    pub fn process_packed_into(&mut self, bits: &[PackedBits], scale: i64, outs: &mut [Vec<i64>]) {
        assert_eq!(bits.len(), self.lanes(), "one bitstream per lane");
        assert_eq!(outs.len(), self.lanes(), "one output sink per lane");
        for ((cic, b), out) in self.lanes.iter_mut().zip(bits).zip(outs) {
            cic.process_packed_into(b, scale, out);
        }
    }
}

/// K second-stage FIR decimators with a lane lifecycle.
#[derive(Debug, Clone, Default)]
pub struct FirBank {
    lanes: Vec<FirDecimator>,
}

impl FirBank {
    /// An empty bank.
    pub fn new() -> Self {
        FirBank::default()
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Absorbs a scalar FIR as a new lane; returns its index.
    pub fn push_lane(&mut self, fir: FirDecimator) -> usize {
        self.lanes.push(fir);
        self.lanes.len() - 1
    }

    /// Removes a lane, handing back the scalar filter with its exact
    /// state. Later lanes shift down by one.
    pub fn retire_lane(&mut self, lane: usize) -> FirDecimator {
        self.lanes.remove(lane)
    }

    /// Borrows one lane mutably (for reset or inspection).
    pub fn lane_mut(&mut self, lane: usize) -> &mut FirDecimator {
        &mut self.lanes[lane]
    }

    /// Pushes one sample into each lane, appending any decimated output
    /// to the matching `outs` entry.
    ///
    /// # Panics
    ///
    /// Panics when `xs` and `outs` lengths differ from the lane count.
    pub fn push(&mut self, xs: &[f64], outs: &mut [Vec<f64>]) {
        assert_eq!(xs.len(), self.lanes(), "one sample per lane");
        assert_eq!(outs.len(), self.lanes(), "one output sink per lane");
        for ((fir, &x), out) in self.lanes.iter_mut().zip(xs).zip(outs) {
            if let Some(y) = fir.push(x) {
                out.push(y);
            }
        }
    }
}

/// K complete SINC³+FIR decimation chains ([`TwoStageDecimator`] per
/// lane) with the same push/retire/reset lane lifecycle as the
/// modulator bank in `tonos-analog`.
#[derive(Debug, Clone, Default)]
pub struct DecimatorBank {
    lanes: Vec<TwoStageDecimator>,
}

impl DecimatorBank {
    /// An empty bank.
    pub fn new() -> Self {
        DecimatorBank::default()
    }

    /// Builds a bank from scalar chains, one lane each.
    pub fn from_decimators(decs: impl IntoIterator<Item = TwoStageDecimator>) -> Self {
        DecimatorBank {
            lanes: decs.into_iter().collect(),
        }
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// True when the bank holds no lanes.
    pub fn is_empty(&self) -> bool {
        self.lanes.is_empty()
    }

    /// Absorbs a scalar chain as a new lane; returns its index.
    pub fn push_lane(&mut self, dec: TwoStageDecimator) -> usize {
        self.lanes.push(dec);
        self.lanes.len() - 1
    }

    /// Removes a lane, handing back the scalar chain with its exact
    /// state (filter memories and throughput counters). Later lanes
    /// shift down by one.
    pub fn retire_lane(&mut self, lane: usize) -> TwoStageDecimator {
        self.lanes.remove(lane)
    }

    /// Flushes one lane's filter state
    /// (see [`TwoStageDecimator::reset`]).
    pub fn reset_lane(&mut self, lane: usize) {
        self.lanes[lane].reset();
    }

    /// Borrows one lane (for counters or settling queries).
    pub fn lane(&self, lane: usize) -> &TwoStageDecimator {
        &self.lanes[lane]
    }

    /// Decimates K packed bitstreams in lockstep, appending each lane's
    /// output samples to the matching `outs` entry (not cleared first).
    /// Each lane is bit-identical to the scalar
    /// [`TwoStageDecimator::process_packed_into`] — it *is* that call.
    ///
    /// # Panics
    ///
    /// Panics when `bits` and `outs` lengths differ from the lane count.
    pub fn process_packed_into(&mut self, bits: &[PackedBits], outs: &mut [Vec<f64>]) {
        assert_eq!(bits.len(), self.lanes(), "one bitstream per lane");
        assert_eq!(outs.len(), self.lanes(), "one output sink per lane");
        for ((dec, b), out) in self.lanes.iter_mut().zip(bits).zip(outs) {
            dec.process_packed_into(b, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decimator::DecimatorConfig;

    /// A deterministic pseudo-random bitstream (xorshift) packed per
    /// lane, different per seed.
    fn stream(seed: u64, bits: usize) -> PackedBits {
        let mut s = seed | 1;
        let mut out = PackedBits::new();
        for _ in 0..bits {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            out.push(s & 1 == 1);
        }
        out
    }

    #[test]
    fn decimator_bank_matches_scalar_chains() {
        let k = 5;
        let streams: Vec<PackedBits> = (0..k).map(|i| stream(0x9E37 + i as u64, 4096)).collect();
        let mut scalars: Vec<TwoStageDecimator> = (0..k)
            .map(|_| DecimatorConfig::paper_default().build().unwrap())
            .collect();
        let mut bank = DecimatorBank::from_decimators(scalars.clone());
        let mut outs: Vec<Vec<f64>> = vec![Vec::new(); k];
        bank.process_packed_into(&streams, &mut outs);
        for (lane, (scalar, s)) in scalars.iter_mut().zip(&streams).enumerate() {
            let expect = scalar.process_packed(s);
            assert_eq!(outs[lane], expect, "lane {lane}");
            assert_eq!(bank.lane(lane).samples_out(), scalar.samples_out());
        }
    }

    #[test]
    fn retired_decimator_lane_continues_like_scalar() {
        let mut bank = DecimatorBank::new();
        for _ in 0..3 {
            bank.push_lane(DecimatorConfig::paper_default().build().unwrap());
        }
        let streams: Vec<PackedBits> = (0..3).map(|i| stream(7 + i as u64, 2048)).collect();
        let mut outs: Vec<Vec<f64>> = vec![Vec::new(); 3];
        bank.process_packed_into(&streams, &mut outs);

        let mut retired = bank.retire_lane(1);
        assert_eq!(bank.lanes(), 2);
        // The retired lane carries its filter state: feeding more bits
        // continues the stream, identical to a scalar that saw both
        // segments.
        let tail = stream(8, 1024);
        let got = retired.process_packed(&tail);
        let mut reference = DecimatorConfig::paper_default().build().unwrap();
        let _ = reference.process_packed(&streams[1]);
        let expect = reference.process_packed(&tail);
        assert_eq!(got, expect);
    }

    #[test]
    fn cic_and_fir_banks_run_lockstep() {
        let mut cics = CicBank::new();
        cics.push_lane(CicDecimator::paper_default());
        cics.push_lane(CicDecimator::paper_default());
        let streams = [stream(21, 640), stream(22, 640)];
        let mut outs: Vec<Vec<i64>> = vec![Vec::new(); 2];
        cics.process_packed_into(&streams, 1, &mut outs);
        let mut scalar = CicDecimator::paper_default();
        let mut expect = Vec::new();
        scalar.process_packed_into(&streams[1], 1, &mut expect);
        assert_eq!(outs[1], expect);

        let taps = crate::fir::design_lowpass(16, 0.2, crate::window::Window::Hann).unwrap();
        let mut firs = FirBank::new();
        firs.push_lane(FirDecimator::new(taps.clone(), 2).unwrap());
        firs.push_lane(FirDecimator::new(taps.clone(), 2).unwrap());
        let mut fir_outs: Vec<Vec<f64>> = vec![Vec::new(); 2];
        for n in 0..100 {
            firs.push(&[n as f64 * 0.01, (n as f64 * 0.3).sin()], &mut fir_outs);
        }
        let mut fir_ref = FirDecimator::new(taps, 2).unwrap();
        let expect: Vec<f64> = (0..100)
            .filter_map(|n| fir_ref.push((n as f64 * 0.3).sin()))
            .collect();
        assert_eq!(fir_outs[1], expect);
    }
}

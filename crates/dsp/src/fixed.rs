//! Q-format fixed-point helpers for FPGA word-length modeling.
//!
//! The paper's decimation filter runs in an FPGA, i.e. in fixed-point
//! arithmetic. [`QFormat`] describes a signed two's-complement format with
//! a given number of fractional bits and total width; [`Fixed`] is a value
//! in such a format with saturating conversion from `f64`. The
//! fixed-point decimator ablation (DESIGN.md A4) uses these to show how
//! coefficient word length affects the reproduced SNR.

use crate::DspError;

/// A signed fixed-point format: `total_bits` wide with `frac_bits`
/// fractional bits (Q notation: Q(total-frac-1).(frac)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QFormat {
    /// Total width in bits, including the sign (2..=63).
    pub total_bits: u32,
    /// Fractional bits (0..total_bits).
    pub frac_bits: u32,
}

impl QFormat {
    /// Creates a format after validating the widths.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] for widths outside 2..=63
    /// or `frac_bits >= total_bits`.
    pub fn new(total_bits: u32, frac_bits: u32) -> Result<Self, DspError> {
        if !(2..=63).contains(&total_bits) {
            return Err(DspError::InvalidParameter(format!(
                "total bits {total_bits} must be in 2..=63"
            )));
        }
        if frac_bits >= total_bits {
            return Err(DspError::InvalidParameter(format!(
                "fractional bits {frac_bits} must be < total bits {total_bits}"
            )));
        }
        Ok(QFormat {
            total_bits,
            frac_bits,
        })
    }

    /// Largest representable raw value.
    pub fn max_raw(self) -> i64 {
        (1_i64 << (self.total_bits - 1)) - 1
    }

    /// Smallest representable raw value.
    pub fn min_raw(self) -> i64 {
        -(1_i64 << (self.total_bits - 1))
    }

    /// The weight of one LSB.
    pub fn lsb(self) -> f64 {
        1.0 / (1_i64 << self.frac_bits) as f64
    }

    /// Largest representable real value.
    pub fn max_value(self) -> f64 {
        self.max_raw() as f64 * self.lsb()
    }

    /// Smallest representable real value.
    pub fn min_value(self) -> f64 {
        self.min_raw() as f64 * self.lsb()
    }
}

/// Running tally of fixed-point saturation events.
///
/// [`Fixed`] values are `Copy` and carry no history, so saturation
/// accounting is explicit: conversion sites that care thread one of these
/// through [`Fixed::from_f64_counted`] (or read the tally returned by
/// [`quantize_coefficients_counted`]) and surface it through the
/// telemetry layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SaturationStats {
    /// Conversions that clamped at a format limit.
    pub saturations: u64,
    /// Total conversions observed.
    pub conversions: u64,
}

impl SaturationStats {
    /// Saturated fraction of all conversions, if any were observed.
    pub fn rate(&self) -> Option<f64> {
        (self.conversions > 0).then(|| self.saturations as f64 / self.conversions as f64)
    }

    /// Merges another tally into this one.
    pub fn merge(&mut self, other: SaturationStats) {
        self.saturations += other.saturations;
        self.conversions += other.conversions;
    }
}

/// A value stored in a [`QFormat`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fixed {
    raw: i64,
    format: QFormat,
}

impl Fixed {
    /// Quantizes an `f64` into the format, rounding to nearest and
    /// saturating at the format limits.
    pub fn from_f64(x: f64, format: QFormat) -> Self {
        let scaled = x * (1_i64 << format.frac_bits) as f64;
        let raw = if scaled.is_nan() {
            0
        } else {
            scaled
                .round()
                .clamp(format.min_raw() as f64, format.max_raw() as f64) as i64
        };
        Fixed { raw, format }
    }

    /// Like [`Fixed::from_f64`], but tallies the conversion (and whether
    /// it saturated) into `stats`.
    pub fn from_f64_counted(x: f64, format: QFormat, stats: &mut SaturationStats) -> Self {
        stats.conversions += 1;
        let rounded = (x * (1_i64 << format.frac_bits) as f64).round();
        // NaN maps to 0, which is not a clamp; only a rounded value
        // beyond the representable raw range counts as saturation.
        let in_range = rounded >= format.min_raw() as f64 && rounded <= format.max_raw() as f64;
        if !rounded.is_nan() && !in_range {
            stats.saturations += 1;
        }
        Fixed::from_f64(x, format)
    }

    /// Builds a value from a raw integer (caller asserts it fits).
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] when `raw` is outside the
    /// format range.
    pub fn from_raw(raw: i64, format: QFormat) -> Result<Self, DspError> {
        if raw < format.min_raw() || raw > format.max_raw() {
            return Err(DspError::InvalidParameter(format!(
                "raw {raw} outside format range [{}, {}]",
                format.min_raw(),
                format.max_raw()
            )));
        }
        Ok(Fixed { raw, format })
    }

    /// The raw two's-complement integer.
    pub fn raw(self) -> i64 {
        self.raw
    }

    /// The format of this value.
    pub fn format(self) -> QFormat {
        self.format
    }

    /// The represented real value.
    pub fn to_f64(self) -> f64 {
        self.raw as f64 * self.format.lsb()
    }

    /// Saturating addition of two values in the same format.
    ///
    /// # Panics
    ///
    /// Panics if the operands use different formats (a static design
    /// error in filter construction, not a runtime condition).
    pub fn saturating_add(self, rhs: Fixed) -> Fixed {
        assert_eq!(self.format, rhs.format, "mixed Q formats");
        let raw = (self.raw + rhs.raw).clamp(self.format.min_raw(), self.format.max_raw());
        Fixed {
            raw,
            format: self.format,
        }
    }

    /// Fixed-point multiply: full-precision product rescaled (with
    /// round-to-nearest) back into `self`'s format, saturating.
    ///
    /// # Panics
    ///
    /// Panics if the combined fractional width exceeds 62 bits.
    pub fn saturating_mul(self, rhs: Fixed) -> Fixed {
        let shift = rhs.format.frac_bits;
        assert!(
            self.format.frac_bits + shift <= 62,
            "product fractional width too large"
        );
        let prod = (self.raw as i128) * (rhs.raw as i128);
        // Round to nearest by adding half an LSB before the shift.
        let rounded = (prod + (1_i128 << (shift.max(1) - 1))) >> shift;
        let raw =
            rounded.clamp(self.format.min_raw() as i128, self.format.max_raw() as i128) as i64;
        Fixed {
            raw,
            format: self.format,
        }
    }
}

/// Quantizes a slice of coefficients into a Q format and returns both the
/// quantized real values and the worst-case quantization error.
pub fn quantize_coefficients(coeffs: &[f64], format: QFormat) -> (Vec<f64>, f64) {
    let (out, worst, _) = quantize_coefficients_counted(coeffs, format);
    (out, worst)
}

/// Like [`quantize_coefficients`], but also reports how many coefficients
/// saturated at the format limits (a word length too narrow for the
/// filter's largest tap).
pub fn quantize_coefficients_counted(
    coeffs: &[f64],
    format: QFormat,
) -> (Vec<f64>, f64, SaturationStats) {
    let mut worst = 0.0_f64;
    let mut stats = SaturationStats::default();
    let out = coeffs
        .iter()
        .map(|&c| {
            let q = Fixed::from_f64_counted(c, format, &mut stats).to_f64();
            worst = worst.max((q - c).abs());
            q
        })
        .collect();
    (out, worst, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q15() -> QFormat {
        QFormat::new(16, 15).unwrap()
    }

    #[test]
    fn format_limits_are_correct() {
        let f = q15();
        assert_eq!(f.max_raw(), 32767);
        assert_eq!(f.min_raw(), -32768);
        assert!((f.lsb() - 1.0 / 32768.0).abs() < 1e-18);
        assert!((f.max_value() - (1.0 - 1.0 / 32768.0)).abs() < 1e-12);
        assert!((f.min_value() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn round_trip_within_half_lsb() {
        let f = q15();
        for &x in &[0.0, 0.123456, -0.9876, 0.5, -0.5, 0.99996] {
            let q = Fixed::from_f64(x, f);
            assert!((q.to_f64() - x).abs() <= f.lsb() / 2.0 + 1e-15, "{x}");
        }
    }

    #[test]
    fn saturation_clamps_out_of_range() {
        let f = q15();
        assert_eq!(Fixed::from_f64(5.0, f).raw(), f.max_raw());
        assert_eq!(Fixed::from_f64(-5.0, f).raw(), f.min_raw());
        assert_eq!(Fixed::from_f64(f64::NAN, f).raw(), 0);
    }

    #[test]
    fn addition_saturates() {
        let f = q15();
        let big = Fixed::from_f64(0.9, f);
        let sum = big.saturating_add(big);
        assert_eq!(sum.raw(), f.max_raw());
        let small = Fixed::from_f64(0.25, f).saturating_add(Fixed::from_f64(0.125, f));
        assert!((small.to_f64() - 0.375).abs() < f.lsb());
    }

    #[test]
    fn multiplication_rescales_correctly() {
        let f = q15();
        let a = Fixed::from_f64(0.5, f);
        let b = Fixed::from_f64(0.25, f);
        let p = a.saturating_mul(b);
        assert!((p.to_f64() - 0.125).abs() < f.lsb(), "{}", p.to_f64());
        // Negative operand.
        let n = Fixed::from_f64(-0.5, f).saturating_mul(b);
        assert!((n.to_f64() + 0.125).abs() < f.lsb());
    }

    #[test]
    fn from_raw_validates_range() {
        let f = q15();
        assert!(Fixed::from_raw(32767, f).is_ok());
        assert!(Fixed::from_raw(32768, f).is_err());
        assert!(Fixed::from_raw(-32769, f).is_err());
    }

    #[test]
    fn invalid_formats_are_rejected() {
        assert!(QFormat::new(1, 0).is_err());
        assert!(QFormat::new(64, 32).is_err());
        assert!(QFormat::new(16, 16).is_err());
        assert!(QFormat::new(16, 20).is_err());
    }

    #[test]
    #[should_panic(expected = "mixed Q formats")]
    fn mixed_format_addition_panics() {
        let a = Fixed::from_f64(0.1, q15());
        let b = Fixed::from_f64(0.1, QFormat::new(12, 11).unwrap());
        let _ = a.saturating_add(b);
    }

    #[test]
    fn counted_conversion_tallies_saturations() {
        let f = q15();
        let mut stats = SaturationStats::default();
        // In range, exactly at max, beyond max, beyond min, NaN.
        let _ = Fixed::from_f64_counted(0.5, f, &mut stats);
        let _ = Fixed::from_f64_counted(f.max_value(), f, &mut stats);
        let _ = Fixed::from_f64_counted(2.0, f, &mut stats);
        let _ = Fixed::from_f64_counted(-2.0, f, &mut stats);
        let _ = Fixed::from_f64_counted(f64::NAN, f, &mut stats);
        assert_eq!(stats.conversions, 5);
        assert_eq!(stats.saturations, 2, "NaN maps to 0, not a clamp");
        assert!((stats.rate().unwrap() - 0.4).abs() < 1e-12);

        let mut total = SaturationStats::default();
        total.merge(stats);
        total.merge(stats);
        assert_eq!(total.conversions, 10);
        assert_eq!(SaturationStats::default().rate(), None);
    }

    #[test]
    fn counted_coefficient_quantization_matches_uncounted() {
        let coeffs = [0.1, -0.2, 5.0, -0.5];
        let f = QFormat::new(8, 7).unwrap();
        let (q1, worst1) = quantize_coefficients(&coeffs, f);
        let (q2, worst2, stats) = quantize_coefficients_counted(&coeffs, f);
        assert_eq!(q1, q2);
        assert_eq!(worst1, worst2);
        assert_eq!(stats.conversions, 4);
        assert_eq!(stats.saturations, 1, "only the 5.0 tap clamps");
    }

    #[test]
    fn coefficient_quantization_reports_worst_error() {
        let coeffs = [0.1, -0.2, 0.33333, 0.5];
        let f = QFormat::new(8, 7).unwrap();
        let (q, worst) = quantize_coefficients(&coeffs, f);
        assert_eq!(q.len(), 4);
        assert!(worst <= f.lsb() / 2.0 + 1e-15);
        for (a, b) in q.iter().zip(&coeffs) {
            assert!((a - b).abs() <= worst + 1e-15);
        }
        // A coarser format has a larger worst-case error.
        let (_, worst_coarse) = quantize_coefficients(&coeffs, QFormat::new(4, 3).unwrap());
        assert!(worst_coarse > worst);
    }
}

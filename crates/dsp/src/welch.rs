//! Welch-averaged power spectral density estimation.
//!
//! The single-FFT periodogram of [`crate::spectrum`] is the right tool
//! for coherent-tone tests (Fig. 7), but characterizing *noise floors* —
//! idle-channel behavior, in-band noise density, spurious tones at
//! unknown frequencies — needs a consistent PSD estimator. Welch's
//! method averages windowed, overlapping segments, trading frequency
//! resolution for variance:
//!
//! * segment length `L` (power of two), 50 % overlap;
//! * Hann window with proper noise-bandwidth normalization, so white
//!   noise of variance σ² integrates to σ² across the band;
//! * density output in power per hertz, plus a helper for band power.

use crate::fft::fft_real;
use crate::window::Window;
use crate::DspError;

/// A Welch PSD estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct WelchPsd {
    /// One-sided power spectral density per bin, in (signal units)²/Hz.
    density: Vec<f64>,
    /// Bin spacing in Hz.
    resolution_hz: f64,
    /// Sample rate in Hz.
    sample_rate: f64,
    /// Number of averaged segments.
    segments: usize,
}

impl WelchPsd {
    /// Estimates the PSD of `signal` using `segment_len`-point segments
    /// (power of two) with 50 % overlap and a Hann window.
    ///
    /// # Errors
    ///
    /// * [`DspError::LengthNotPowerOfTwo`] — invalid segment length.
    /// * [`DspError::InputTooShort`] — fewer samples than one segment.
    pub fn estimate(
        signal: &[f64],
        sample_rate: f64,
        segment_len: usize,
    ) -> Result<Self, DspError> {
        if !segment_len.is_power_of_two() || segment_len < 8 {
            return Err(DspError::LengthNotPowerOfTwo { len: segment_len });
        }
        if signal.len() < segment_len {
            return Err(DspError::InputTooShort {
                len: signal.len(),
                required: segment_len,
            });
        }
        let window = Window::Hann.coefficients(segment_len)?;
        let window_energy: f64 = window.iter().map(|w| w * w).sum();
        let hop = segment_len / 2;
        let half = segment_len / 2;
        let mut density = vec![0.0; half + 1];
        let mut segments = 0usize;
        let mut start = 0usize;
        while start + segment_len <= signal.len() {
            let windowed: Vec<f64> = signal[start..start + segment_len]
                .iter()
                .zip(&window)
                .map(|(&x, &w)| x * w)
                .collect();
            let spec = fft_real(&windowed)?;
            // Periodogram normalization: |X[k]|² / (fs · Σw²), doubled for
            // the one-sided fold except at DC and Nyquist.
            for (k, v) in spec.iter().take(half + 1).enumerate() {
                let mut p = v.norm_sqr() / (sample_rate * window_energy);
                if k != 0 && k != half {
                    p *= 2.0;
                }
                density[k] += p;
            }
            segments += 1;
            start += hop;
        }
        for d in &mut density {
            *d /= segments as f64;
        }
        Ok(WelchPsd {
            density,
            resolution_hz: sample_rate / segment_len as f64,
            sample_rate,
            segments,
        })
    }

    /// One-sided PSD values in (units)²/Hz.
    pub fn density(&self) -> &[f64] {
        &self.density
    }

    /// Bin spacing in Hz.
    pub fn resolution_hz(&self) -> f64 {
        self.resolution_hz
    }

    /// Sample rate in Hz.
    pub fn sample_rate(&self) -> f64 {
        self.sample_rate
    }

    /// Number of averaged segments.
    pub fn segments(&self) -> usize {
        self.segments
    }

    /// Center frequency of a bin.
    pub fn bin_frequency(&self, bin: usize) -> f64 {
        bin as f64 * self.resolution_hz
    }

    /// Integrated power over `[lo_hz, hi_hz]`.
    pub fn band_power(&self, lo_hz: f64, hi_hz: f64) -> f64 {
        let lo = (lo_hz / self.resolution_hz).round().max(0.0) as usize;
        let hi = ((hi_hz / self.resolution_hz).round() as usize).min(self.density.len() - 1);
        if lo > hi {
            return 0.0;
        }
        self.density[lo..=hi].iter().sum::<f64>() * self.resolution_hz
    }

    /// The strongest non-DC bin: `(frequency, density)`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::NoSignal`] when the spectrum is empty above DC.
    pub fn peak(&self) -> Result<(f64, f64), DspError> {
        self.density
            .iter()
            .enumerate()
            .skip(2)
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite densities"))
            .map(|(i, &d)| (self.bin_frequency(i), d))
            .ok_or(DspError::NoSignal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::{add_white_noise, sine_wave};

    #[test]
    fn white_noise_integrates_to_its_variance() {
        let mut x = vec![0.0; 65_536];
        let peak = 0.5; // uniform ±0.5 → variance 1/12
        add_white_noise(&mut x, peak, 11);
        let fs = 1000.0;
        let psd = WelchPsd::estimate(&x, fs, 1024).unwrap();
        let total = psd.band_power(0.0, fs / 2.0);
        let expected = peak * peak / 3.0;
        assert!(
            (total - expected).abs() < 0.05 * expected,
            "integrated {total} vs variance {expected}"
        );
        // Flat density: first and last quarter of the band agree.
        let low = psd.band_power(10.0, 100.0) / 90.0;
        let high = psd.band_power(400.0, 490.0) / 90.0;
        assert!((low / high - 1.0).abs() < 0.2, "flatness {low} vs {high}");
    }

    #[test]
    fn tone_power_is_recovered_in_band() {
        let fs = 1000.0;
        let amp = 0.3;
        let x = sine_wave(fs, 123.0, amp, 0.0, 32_768);
        let psd = WelchPsd::estimate(&x, fs, 2048).unwrap();
        // A tone's power integrates to A²/2 regardless of the window.
        let tone_power = psd.band_power(110.0, 136.0);
        assert!(
            (tone_power - amp * amp / 2.0).abs() < 0.02 * amp * amp,
            "tone power {tone_power}"
        );
        let (f_peak, _) = psd.peak().unwrap();
        assert!((f_peak - 123.0).abs() < 2.0 * psd.resolution_hz());
    }

    #[test]
    fn averaging_reduces_variance() {
        let make = |n: usize| {
            let mut x = vec![0.0; n];
            add_white_noise(&mut x, 0.3, 5);
            WelchPsd::estimate(&x, 1000.0, 512).unwrap()
        };
        let few = make(1024); // 3 segments
        let many = make(65_536); // 255 segments
        assert!(many.segments() > 50 * few.segments() / 10);
        let spread = |psd: &WelchPsd| {
            let d = &psd.density()[5..250];
            let mean = d.iter().sum::<f64>() / d.len() as f64;
            d.iter().map(|v| (v - mean).abs()).sum::<f64>() / d.len() as f64 / mean
        };
        assert!(
            spread(&many) < 0.5 * spread(&few),
            "{} !< {}",
            spread(&many),
            spread(&few)
        );
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        assert!(matches!(
            WelchPsd::estimate(&[0.0; 100], 1000.0, 100),
            Err(DspError::LengthNotPowerOfTwo { .. })
        ));
        assert!(matches!(
            WelchPsd::estimate(&[0.0; 100], 1000.0, 256),
            Err(DspError::InputTooShort { .. })
        ));
        assert!(matches!(
            WelchPsd::estimate(&[0.0; 100], 1000.0, 4),
            Err(DspError::LengthNotPowerOfTwo { .. })
        ));
    }

    #[test]
    fn accessors_are_consistent() {
        let x = sine_wave(1000.0, 50.0, 1.0, 0.0, 4096);
        let psd = WelchPsd::estimate(&x, 1000.0, 512).unwrap();
        assert_eq!(psd.density().len(), 257);
        assert!((psd.resolution_hz() - 1000.0 / 512.0).abs() < 1e-12);
        assert_eq!(psd.sample_rate(), 1000.0);
        assert_eq!(psd.segments(), 15);
        assert!((psd.bin_frequency(256) - 500.0).abs() < 1e-9);
    }
}

//! IIR biquad filters (RBJ cookbook designs).
//!
//! Host-side post-processing of the 1 kS/s stream — separating the
//! sub-hertz respiratory modulation from the pulse band, smoothing trend
//! displays — wants cheap recursive filters rather than long FIRs. This
//! module provides the standard second-order sections in Direct Form II
//! transposed, with the Robert Bristow-Johnson cookbook designs.

use crate::DspError;

/// A second-order IIR section (Direct Form II transposed), normalized so
/// `a0 = 1`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Biquad {
    b0: f64,
    b1: f64,
    b2: f64,
    a1: f64,
    a2: f64,
    z1: f64,
    z2: f64,
}

impl Biquad {
    /// Builds a section from raw coefficients (`a0` already divided out).
    pub fn from_coefficients(b0: f64, b1: f64, b2: f64, a1: f64, a2: f64) -> Self {
        Biquad {
            b0,
            b1,
            b2,
            a1,
            a2,
            z1: 0.0,
            z2: 0.0,
        }
    }

    fn design(kind: &str, cutoff_hz: f64, sample_rate: f64, q: f64) -> Result<Self, DspError> {
        if !(sample_rate > 0.0) {
            return Err(DspError::InvalidParameter(
                "sample rate must be positive".into(),
            ));
        }
        if !(cutoff_hz > 0.0 && cutoff_hz < sample_rate / 2.0) {
            return Err(DspError::InvalidParameter(format!(
                "cutoff {cutoff_hz} Hz outside (0, {})",
                sample_rate / 2.0
            )));
        }
        if !(q > 0.0) {
            return Err(DspError::InvalidParameter("Q must be positive".into()));
        }
        let w0 = 2.0 * std::f64::consts::PI * cutoff_hz / sample_rate;
        let (sin_w0, cos_w0) = w0.sin_cos();
        let alpha = sin_w0 / (2.0 * q);
        let a0 = 1.0 + alpha;
        let (b0, b1, b2) = match kind {
            "lowpass" => {
                let b1 = 1.0 - cos_w0;
                (b1 / 2.0, b1, b1 / 2.0)
            }
            "highpass" => {
                let b1 = -(1.0 + cos_w0);
                (-b1 / 2.0, b1, -b1 / 2.0)
            }
            "bandpass" => (alpha, 0.0, -alpha),
            _ => unreachable!("internal design kinds only"),
        };
        Ok(Biquad::from_coefficients(
            b0 / a0,
            b1 / a0,
            b2 / a0,
            (-2.0 * cos_w0) / a0,
            (1.0 - alpha) / a0,
        ))
    }

    /// RBJ low-pass with the given cutoff and Q (0.7071 for Butterworth).
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] for an out-of-band cutoff,
    /// non-positive sample rate, or non-positive Q.
    pub fn lowpass(cutoff_hz: f64, sample_rate: f64, q: f64) -> Result<Self, DspError> {
        Biquad::design("lowpass", cutoff_hz, sample_rate, q)
    }

    /// RBJ high-pass.
    ///
    /// # Errors
    ///
    /// See [`Biquad::lowpass`].
    pub fn highpass(cutoff_hz: f64, sample_rate: f64, q: f64) -> Result<Self, DspError> {
        Biquad::design("highpass", cutoff_hz, sample_rate, q)
    }

    /// RBJ band-pass (constant 0 dB peak gain) centered at `center_hz`.
    ///
    /// # Errors
    ///
    /// See [`Biquad::lowpass`].
    pub fn bandpass(center_hz: f64, sample_rate: f64, q: f64) -> Result<Self, DspError> {
        Biquad::design("bandpass", center_hz, sample_rate, q)
    }

    /// Processes one sample.
    #[inline]
    pub fn push(&mut self, x: f64) -> f64 {
        let y = self.b0 * x + self.z1;
        self.z1 = self.b1 * x - self.a1 * y + self.z2;
        self.z2 = self.b2 * x - self.a2 * y;
        y
    }

    /// Processes a block.
    pub fn process(&mut self, xs: &[f64]) -> Vec<f64> {
        xs.iter().map(|&x| self.push(x)).collect()
    }

    /// Clears the delay state.
    pub fn reset(&mut self) {
        self.z1 = 0.0;
        self.z2 = 0.0;
    }

    /// Magnitude response at a frequency.
    pub fn magnitude_at(&self, freq_hz: f64, sample_rate: f64) -> f64 {
        let w = 2.0 * std::f64::consts::PI * freq_hz / sample_rate;
        let (num_re, num_im) = polyval(self.b0, self.b1, self.b2, w);
        let (den_re, den_im) = polyval(1.0, self.a1, self.a2, w);
        ((num_re * num_re + num_im * num_im) / (den_re * den_re + den_im * den_im)).sqrt()
    }
}

/// Evaluates `c0 + c1·z⁻¹ + c2·z⁻²` at `z = e^{jw}`.
fn polyval(c0: f64, c1: f64, c2: f64, w: f64) -> (f64, f64) {
    let re = c0 + c1 * w.cos() + c2 * (2.0 * w).cos();
    let im = -c1 * w.sin() - c2 * (2.0 * w).sin();
    (re, im)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::sine_wave;

    #[test]
    fn lowpass_passes_dc_and_kills_high_frequencies() {
        let mut f = Biquad::lowpass(10.0, 1000.0, std::f64::consts::FRAC_1_SQRT_2).unwrap();
        assert!((f.magnitude_at(0.001, 1000.0) - 1.0).abs() < 1e-3);
        assert!((f.magnitude_at(10.0, 1000.0) - std::f64::consts::FRAC_1_SQRT_2).abs() < 0.01);
        assert!(f.magnitude_at(200.0, 1000.0) < 0.01);
        // Time-domain check: DC settles to the input.
        let out = f.process(&vec![0.8; 2000]);
        assert!((out.last().unwrap() - 0.8).abs() < 1e-6);
    }

    #[test]
    fn highpass_blocks_dc() {
        let mut f = Biquad::highpass(1.0, 1000.0, std::f64::consts::FRAC_1_SQRT_2).unwrap();
        let out = f.process(&vec![1.0; 8000]);
        assert!(
            out.last().unwrap().abs() < 1e-3,
            "DC leak {}",
            out.last().unwrap()
        );
        assert!((f.magnitude_at(100.0, 1000.0) - 1.0).abs() < 1e-3);
    }

    #[test]
    fn bandpass_peaks_at_center() {
        let f = Biquad::bandpass(0.25, 250.0, 1.0).unwrap();
        let at_center = f.magnitude_at(0.25, 250.0);
        assert!((at_center - 1.0).abs() < 1e-6, "center gain {at_center}");
        assert!(f.magnitude_at(0.02, 250.0) < 0.2);
        assert!(f.magnitude_at(3.0, 250.0) < 0.2);
    }

    #[test]
    fn magnitude_formula_matches_measured_tone() {
        let fs = 1000.0;
        let f_tone = 35.0;
        let design = Biquad::lowpass(25.0, fs, std::f64::consts::FRAC_1_SQRT_2).unwrap();
        let predicted = design.magnitude_at(f_tone, fs);
        let mut filt = design;
        let out = filt.process(&sine_wave(fs, f_tone, 1.0, 0.0, 8000));
        let settled = &out[2000..];
        let rms = (settled.iter().map(|v| v * v).sum::<f64>() / settled.len() as f64).sqrt();
        let measured = rms * 2.0_f64.sqrt();
        assert!(
            (measured - predicted).abs() < 0.01 * predicted.max(0.01),
            "measured {measured} vs predicted {predicted}"
        );
    }

    #[test]
    fn filter_is_stable_under_impulse() {
        let mut f = Biquad::bandpass(5.0, 1000.0, 8.0).unwrap();
        let mut x = vec![0.0; 20_000];
        x[0] = 1.0;
        let out = f.process(&x);
        // High-Q ring-down decays rather than diverging.
        let early: f64 = out[..1000].iter().map(|v| v.abs()).sum();
        let late: f64 = out[19_000..].iter().map(|v| v.abs()).sum();
        assert!(late < 1e-6 * early.max(1e-12), "late energy {late}");
    }

    #[test]
    fn reset_clears_the_state() {
        let mut f = Biquad::lowpass(10.0, 1000.0, std::f64::consts::FRAC_1_SQRT_2).unwrap();
        let _ = f.process(&[1.0; 100]);
        f.reset();
        let fresh = Biquad::lowpass(10.0, 1000.0, std::f64::consts::FRAC_1_SQRT_2).unwrap();
        assert_eq!(f, fresh);
    }

    #[test]
    fn invalid_designs_are_rejected() {
        assert!(Biquad::lowpass(0.0, 1000.0, 0.7).is_err());
        assert!(Biquad::lowpass(600.0, 1000.0, 0.7).is_err());
        assert!(Biquad::lowpass(10.0, 0.0, 0.7).is_err());
        assert!(Biquad::bandpass(10.0, 1000.0, 0.0).is_err());
        assert!(Biquad::highpass(10.0, -5.0, 0.7).is_err());
    }
}

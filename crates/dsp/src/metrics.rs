//! Converter performance metrics: SNR, SNDR, THD, SFDR, ENOB.
//!
//! Paper §3.1 reports "a signal-to-noise ratio better than 72 dB" for the
//! 12-bit ΣΔ-ADC measured from the spectrum of a converted sine wave
//! (Fig. 7). This module extracts the standard dynamic metrics from a
//! [`Spectrum`] following the usual ADC-test conventions:
//!
//! * the **signal** is the strongest non-DC bin plus its window-leakage
//!   neighbors;
//! * **harmonics** are the bins at integer multiples of the signal
//!   frequency (folded across Nyquist), again with leakage neighbors;
//! * **noise** is everything else except DC.

use crate::spectrum::Spectrum;
use crate::DspError;

/// Number of harmonics attributed to distortion (2nd..=7th).
const HARMONICS: usize = 6;

/// Dynamic performance metrics extracted from a one-tone spectrum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynamicMetrics {
    /// Frequency of the detected signal tone in Hz.
    pub signal_frequency: f64,
    /// Signal power in full-scale units.
    pub signal_power: f64,
    /// Signal level in dBFS.
    pub signal_dbfs: f64,
    /// Signal-to-noise ratio in dB (harmonics excluded from noise).
    pub snr_db: f64,
    /// Signal-to-noise-and-distortion ratio in dB.
    pub sndr_db: f64,
    /// Total harmonic distortion in dB (negative; -inf-like floor when
    /// no harmonics are measurable).
    pub thd_db: f64,
    /// Spurious-free dynamic range in dB (signal vs. strongest spur).
    pub sfdr_db: f64,
    /// Effective number of bits derived from SNDR.
    pub enob: f64,
}

impl DynamicMetrics {
    /// Extracts the metrics from a spectrum containing one dominant tone.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::NoSignal`] when the spectrum has no non-DC
    /// content.
    pub fn from_spectrum(spectrum: &Spectrum) -> Result<Self, DspError> {
        let leak = spectrum.window().leakage_bins();
        let peak = spectrum.peak_bin()?;
        let n_bins = spectrum.len();
        let nyq = n_bins - 1;

        // Classify every bin: DC, signal, harmonic, or noise.
        #[derive(Clone, Copy, PartialEq)]
        enum Class {
            Dc,
            Signal,
            Harmonic,
            Noise,
        }
        let mut class = vec![Class::Noise; n_bins];
        for c in class.iter_mut().take(leak + 1) {
            *c = Class::Dc;
        }
        // Tag harmonic bins with their harmonic index so each spur's
        // cluster power can be integrated separately (SFDR compares the
        // signal against the strongest *integrated* spur, consistent with
        // the cluster-integrated signal power).
        let mut harmonic_index = vec![0usize; n_bins];
        let mark = |class: &mut [Class],
                    harmonic_index: &mut [usize],
                    center: usize,
                    what: Class,
                    idx: usize| {
            let lo = center.saturating_sub(leak);
            let hi = (center + leak).min(nyq);
            for b in lo..=hi {
                if class[b] == Class::Noise {
                    class[b] = what;
                    harmonic_index[b] = idx;
                }
            }
        };
        mark(&mut class, &mut harmonic_index, peak, Class::Signal, 0);
        for h in 2..=(HARMONICS + 1) {
            // Fold the harmonic frequency across Nyquist (aliasing).
            let mut k = (peak * h) % (2 * nyq);
            if k > nyq {
                k = 2 * nyq - k;
            }
            mark(&mut class, &mut harmonic_index, k, Class::Harmonic, h);
        }

        let mut signal_power = 0.0;
        let mut harmonic_power = 0.0;
        let mut noise_power = 0.0;
        let mut harmonic_clusters = [0.0_f64; HARMONICS + 2];
        let mut strongest_noise_bin = 0.0_f64;
        let power = spectrum.power();
        for ((&p, &c), &h) in power.iter().zip(&class).zip(&harmonic_index) {
            match c {
                Class::Dc => {}
                Class::Signal => signal_power += p,
                Class::Harmonic => {
                    harmonic_power += p;
                    harmonic_clusters[h] += p;
                }
                Class::Noise => {
                    noise_power += p;
                    strongest_noise_bin = strongest_noise_bin.max(p);
                }
            }
        }
        let strongest_spur = harmonic_clusters
            .iter()
            .copied()
            .fold(strongest_noise_bin, f64::max);

        if signal_power <= 0.0 {
            return Err(DspError::NoSignal);
        }
        let floor = 1e-30;
        let snr_db = 10.0 * (signal_power / noise_power.max(floor)).log10();
        let sndr_db = 10.0 * (signal_power / (noise_power + harmonic_power).max(floor)).log10();
        let thd_db = 10.0 * (harmonic_power.max(floor) / signal_power).log10();
        let sfdr_db = 10.0 * (signal_power / strongest_spur.max(floor)).log10();
        Ok(DynamicMetrics {
            signal_frequency: spectrum.bin_frequency(peak),
            signal_power,
            signal_dbfs: 10.0 * signal_power.log10(),
            snr_db,
            sndr_db,
            thd_db,
            sfdr_db,
            enob: (sndr_db - 1.76) / 6.02,
        })
    }
}

impl std::fmt::Display for DynamicMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "tone {:.3} Hz @ {:+.2} dBFS: SNR {:.2} dB, SNDR {:.2} dB, THD {:.2} dB, \
             SFDR {:.2} dB, ENOB {:.2} bit",
            self.signal_frequency,
            self.signal_dbfs,
            self.snr_db,
            self.sndr_db,
            self.thd_db,
            self.sfdr_db,
            self.enob
        )
    }
}

/// The ideal SNR of an `n`-bit quantizer driven by a full-scale sine:
/// `6.02 n + 1.76` dB. Used as a reference line in experiments.
pub fn ideal_quantizer_snr_db(bits: u32) -> f64 {
    6.02 * bits as f64 + 1.76
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::{add_white_noise, sine_wave};
    use crate::spectrum::Spectrum;
    use crate::window::Window;

    fn coherent_tone(fs: f64, n: usize, target: f64, amp: f64) -> (Vec<f64>, f64) {
        let f = Window::coherent_frequency(fs, n, target);
        (sine_wave(fs, f, amp, 0.0, n), f)
    }

    #[test]
    fn clean_sine_has_huge_snr() {
        let fs = 1000.0;
        let (x, f) = coherent_tone(fs, 4096, 100.0, 0.9);
        let s = Spectrum::from_signal(&x, fs, Window::Hann).unwrap();
        let m = DynamicMetrics::from_spectrum(&s).unwrap();
        assert!(m.snr_db > 120.0, "{m}");
        assert!((m.signal_frequency - f).abs() < fs / 4096.0);
        assert!((m.signal_dbfs - 20.0 * 0.9_f64.log10() * 1.0).abs() < 0.1);
    }

    #[test]
    fn known_noise_level_is_recovered() {
        // Uniform noise of peak a has variance a²/3; with signal power
        // A²/2 the expected SNR is 10 log10( (A²/2) / (a²/3) ).
        let fs = 1000.0;
        let n = 16_384;
        let (mut x, _) = coherent_tone(fs, n, 200.0, 1.0);
        let peak = 0.01;
        add_white_noise(&mut x, peak, 7);
        let s = Spectrum::from_signal(&x, fs, Window::Hann).unwrap();
        let m = DynamicMetrics::from_spectrum(&s).unwrap();
        let expected = 10.0 * ((0.5) / (peak * peak / 3.0)).log10();
        assert!(
            (m.snr_db - expected).abs() < 1.5,
            "snr {} vs expected {expected}",
            m.snr_db
        );
    }

    #[test]
    fn harmonic_distortion_is_separated_from_noise() {
        let fs = 1000.0;
        let n = 8192;
        let f = Window::coherent_frequency(fs, n, 50.0);
        let mut x = sine_wave(fs, f, 0.9, 0.0, n);
        // Add a -40 dBc third harmonic.
        let h3 = sine_wave(fs, 3.0 * f, 0.009, 0.0, n);
        for (v, h) in x.iter_mut().zip(&h3) {
            *v += h;
        }
        let s = Spectrum::from_signal(&x, fs, Window::Hann).unwrap();
        let m = DynamicMetrics::from_spectrum(&s).unwrap();
        assert!((m.thd_db + 40.0).abs() < 0.5, "thd {}", m.thd_db);
        // SNR must stay clean; SNDR must be dominated by the harmonic.
        assert!(m.snr_db > 100.0, "{m}");
        assert!((m.sndr_db + m.thd_db).abs() < 0.5, "{m}");
        assert!((m.sfdr_db - 40.0).abs() < 0.5, "{m}");
    }

    #[test]
    fn folded_harmonics_are_attributed() {
        // Tone at 400 Hz with fs = 1 kHz: 2nd harmonic at 800 Hz folds to
        // 200 Hz. The metric must classify the folded bin as distortion.
        let fs = 1000.0;
        let n = 4096;
        let f = Window::coherent_frequency(fs, n, 400.0);
        let folded = fs - 2.0 * f;
        let mut x = sine_wave(fs, f, 0.9, 0.0, n);
        let h = sine_wave(fs, folded, 0.02, 0.4, n);
        for (v, hv) in x.iter_mut().zip(&h) {
            *v += hv;
        }
        let s = Spectrum::from_signal(&x, fs, Window::Hann).unwrap();
        let m = DynamicMetrics::from_spectrum(&s).unwrap();
        assert!(m.snr_db > 80.0, "folded harmonic leaked into noise: {m}");
        assert!(m.thd_db > -45.0 && m.thd_db < -25.0, "{m}");
    }

    #[test]
    fn enob_matches_ideal_quantizer_rule() {
        // Quantize a full-scale sine to 10 bits; ENOB should be ≈ 10.
        let fs = 1000.0;
        let n = 16_384;
        let f = Window::coherent_frequency(fs, n, 130.0);
        let x: Vec<f64> = sine_wave(fs, f, 1.0, 0.0, n)
            .into_iter()
            .map(|v| {
                let q = (v * 512.0).round() / 512.0;
                q.clamp(-1.0, 1.0 - 1.0 / 512.0)
            })
            .collect();
        let s = Spectrum::from_signal(&x, fs, Window::Hann).unwrap();
        let m = DynamicMetrics::from_spectrum(&s).unwrap();
        assert!((m.enob - 10.0).abs() < 0.35, "{m}");
        assert!((m.sndr_db - ideal_quantizer_snr_db(10)).abs() < 2.0, "{m}");
    }

    #[test]
    fn silence_yields_no_signal() {
        let s = Spectrum::from_signal(&vec![0.0; 1024], 1000.0, Window::Hann).unwrap();
        assert_eq!(
            DynamicMetrics::from_spectrum(&s).unwrap_err(),
            DspError::NoSignal
        );
    }

    #[test]
    fn display_is_informative() {
        let fs = 1000.0;
        let (x, _) = coherent_tone(fs, 1024, 100.0, 0.5);
        let s = Spectrum::from_signal(&x, fs, Window::Hann).unwrap();
        let m = DynamicMetrics::from_spectrum(&s).unwrap();
        let text = m.to_string();
        assert!(text.contains("SNR"));
        assert!(text.contains("ENOB"));
    }

    #[test]
    fn ideal_snr_values() {
        assert!((ideal_quantizer_snr_db(12) - 74.0).abs() < 0.1);
        assert!((ideal_quantizer_snr_db(16) - 98.08).abs() < 0.01);
    }
}

//! Packed single-bit ΣΔ streams.
//!
//! The modulator emits one of exactly two values per clock (±1), yet the
//! behavioral chain historically shuttled that stream around as `Vec<f64>`
//! — 64 bits of heap traffic per one bit of information, plus a
//! float-multiply-and-round at the decimator's front door for every
//! sample. [`PackedBits`] stores the stream the way the paper's FPGA link
//! does: one bit per modulator clock, packed LSB-first into `u64` words.
//!
//! The packed representation is **bit-exact** against the `f64` path: a
//! `+1` bit enters the integer CIC as `+2^20` and a `−1` bit as `−2^20`,
//! which is precisely the value `(±1.0 * 2^20).round()` produces (see
//! [`crate::decimator::TwoStageDecimator::push_bit`]). The equivalence is
//! property-tested in `tests/props.rs`.
//!
//! ```
//! use tonos_dsp::bits::PackedBits;
//!
//! let bits: PackedBits = [true, false, true, true].into_iter().collect();
//! assert_eq!(bits.len(), 4);
//! assert_eq!(bits.ones(), 3);
//! assert_eq!(bits.to_f64_vec(), vec![1.0, -1.0, 1.0, 1.0]);
//! ```

/// A densely packed single-bit (±1) stream.
///
/// Bit `i` of the stream lives at bit `i % 64` (LSB-first) of word
/// `i / 64`. A set bit encodes `+1`, a clear bit `−1` — the two levels of
/// the 1-bit feedback DAC.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PackedBits {
    words: Vec<u64>,
    len: usize,
}

impl PackedBits {
    /// An empty stream.
    pub fn new() -> Self {
        PackedBits::default()
    }

    /// An empty stream with room for `bits` bits before reallocating.
    pub fn with_capacity(bits: usize) -> Self {
        PackedBits {
            words: Vec::with_capacity(bits.div_ceil(64)),
            len: 0,
        }
    }

    /// Number of bits in the stream.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the stream holds no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The backing words; bits beyond [`PackedBits::len`] in the last
    /// word are zero.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Appends one bit (`true` = +1, `false` = −1).
    pub fn push(&mut self, bit: bool) {
        let slot = self.len % 64;
        if slot == 0 {
            self.words.push(0);
        }
        if bit {
            *self.words.last_mut().expect("word pushed above") |= 1u64 << slot;
        }
        self.len += 1;
    }

    /// Appends a modulator output bit given in its ±1 `i8` encoding
    /// (any positive value maps to `+1`).
    pub fn push_i8(&mut self, bit: i8) {
        self.push(bit > 0);
    }

    /// Appends the low `len` bits of `word` (LSB-first) in one call —
    /// the block writers' fast path (one word splice instead of up to 64
    /// per-bit pushes). Bits of `word` at or above `len` are ignored.
    ///
    /// # Panics
    ///
    /// Panics when `len > 64`.
    pub fn push_bits(&mut self, word: u64, len: usize) {
        assert!(len <= 64, "a word carries at most 64 bits, got {len}");
        if len == 0 {
            return;
        }
        let w = if len < 64 {
            word & ((1u64 << len) - 1)
        } else {
            word
        };
        let slot = self.len % 64;
        if slot == 0 {
            self.words.push(w);
        } else {
            *self.words.last_mut().expect("non-empty at slot > 0") |= w << slot;
            if slot + len > 64 {
                self.words.push(w >> (64 - slot));
            }
        }
        self.len += len;
    }

    /// Packs a ±1 `i8` bitstream (the modulator's `process` output
    /// format: any positive value is `+1`, the rest `−1`).
    pub fn from_bitstream(bits: &[i8]) -> Self {
        let mut packed = PackedBits::with_capacity(bits.len());
        for &b in bits {
            packed.push_i8(b);
        }
        packed
    }

    /// The bit at `index`, or `None` past the end.
    pub fn get(&self, index: usize) -> Option<bool> {
        (index < self.len).then(|| self.words[index / 64] >> (index % 64) & 1 == 1)
    }

    /// Iterates the bits in stream order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        // Word-at-a-time: one shift per bit, one bounds check per 64.
        self.words.iter().enumerate().flat_map(move |(w, &word)| {
            let in_word = (self.len - w * 64).min(64);
            (0..in_word).map(move |i| word >> i & 1 == 1)
        })
    }

    /// Number of `+1` bits.
    pub fn ones(&self) -> u64 {
        self.words.iter().map(|w| u64::from(w.count_ones())).sum()
    }

    /// Mean of the ±1 stream — the demodulated DC value, in full-scale
    /// units. `0.0` for an empty stream.
    pub fn mean(&self) -> f64 {
        if self.len == 0 {
            return 0.0;
        }
        (2.0 * self.ones() as f64 - self.len as f64) / self.len as f64
    }

    /// Expands to the ±1.0 `f64` representation the legacy decimator
    /// entry points consume.
    pub fn to_f64_vec(&self) -> Vec<f64> {
        self.iter().map(|b| if b { 1.0 } else { -1.0 }).collect()
    }

    /// Removes all bits, keeping the allocation.
    pub fn clear(&mut self) {
        self.words.clear();
        self.len = 0;
    }

    /// Serializes the stream to bytes, LSB-first within each byte (byte
    /// `j` holds bits `8j..8j+8`), `len().div_ceil(8)` bytes total. Tail
    /// bits of the last byte beyond [`PackedBits::len`] are zero. This is
    /// the wire/file representation used by [`crate::frame`].
    pub fn to_bytes(&self) -> Vec<u8> {
        let n = self.len.div_ceil(8);
        let mut out = Vec::with_capacity(n);
        for &w in &self.words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out.truncate(n);
        out
    }

    /// Rebuilds a stream of `len` bits from its [`PackedBits::to_bytes`]
    /// representation. Bits of `bytes` at or beyond `len` are ignored, so
    /// the result is bit-identical to the stream that was serialized.
    ///
    /// # Panics
    ///
    /// Panics when `bytes` holds fewer than `len` bits.
    pub fn from_bytes(bytes: &[u8], len: usize) -> Self {
        assert!(
            bytes.len() * 8 >= len,
            "{} bytes carry fewer than {len} bits",
            bytes.len()
        );
        let mut packed = PackedBits::with_capacity(len);
        let mut remaining = len;
        for chunk in bytes.chunks(8) {
            if remaining == 0 {
                break;
            }
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            let take = remaining.min(chunk.len() * 8).min(64);
            packed.push_bits(u64::from_le_bytes(word), take);
            remaining -= take;
        }
        packed
    }
}

impl FromIterator<bool> for PackedBits {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let iter = iter.into_iter();
        let mut packed = PackedBits::with_capacity(iter.size_hint().0);
        for bit in iter {
            packed.push(bit);
        }
        packed
    }
}

impl Extend<bool> for PackedBits {
    fn extend<I: IntoIterator<Item = bool>>(&mut self, iter: I) {
        for bit in iter {
            self.push(bit);
        }
    }
}

/// In-place transpose of a 64×64 bit matrix: bit `c` of `m[r]` moves to
/// bit `r` of `m[c]`.
///
/// This is the pivot between the two natural packings of a lane bank's
/// 1-bit outputs: the per-clock view (one word per clock, one bit per
/// lane — what bit-sliced quantize/feedback produces) and the per-lane
/// view (one word per lane, one bit per clock — what
/// [`PackedBits::push_bits`] consumes). The recursive block-swap runs in
/// 64·log₂64 word operations, so converting a full 64-lane × 64-clock
/// block costs well under one operation per bit.
pub fn transpose64(m: &mut [u64; 64]) {
    let mut j = 32usize;
    let mut mask: u64 = 0x0000_0000_FFFF_FFFF;
    while j != 0 {
        let mut k = 0usize;
        while k < 64 {
            let t = ((m[k] >> j) ^ m[k + j]) & mask;
            m[k + j] ^= t;
            m[k] ^= t << j;
            k = (k + j + 1) & !j;
        }
        j >>= 1;
        mask ^= mask << j;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get_round_trip() {
        let pattern: Vec<bool> = (0..200).map(|i| i % 3 == 0 || i % 7 == 0).collect();
        let mut packed = PackedBits::new();
        for &b in &pattern {
            packed.push(b);
        }
        assert_eq!(packed.len(), 200);
        assert!(!packed.is_empty());
        for (i, &b) in pattern.iter().enumerate() {
            assert_eq!(packed.get(i), Some(b), "bit {i}");
        }
        assert_eq!(packed.get(200), None);
        let unpacked: Vec<bool> = packed.iter().collect();
        assert_eq!(unpacked, pattern);
    }

    #[test]
    fn word_boundaries_are_exact() {
        for len in [1, 63, 64, 65, 127, 128, 129] {
            let packed: PackedBits = (0..len).map(|i| i % 2 == 0).collect();
            assert_eq!(packed.len(), len);
            assert_eq!(packed.words().len(), len.div_ceil(64));
            assert_eq!(packed.iter().count(), len);
            assert_eq!(packed.ones(), len.div_ceil(2) as u64);
        }
    }

    #[test]
    fn unused_tail_bits_stay_zero() {
        let mut packed = PackedBits::new();
        packed.push(true);
        assert_eq!(packed.words(), &[1u64]);
        // Equality must not depend on stale tail state after clear+reuse.
        packed.clear();
        assert!(packed.is_empty());
        packed.push(false);
        assert_eq!(packed.words(), &[0u64]);
        let fresh: PackedBits = [false].into_iter().collect();
        assert_eq!(packed, fresh);
    }

    #[test]
    fn push_bits_matches_per_bit_pushes() {
        // Every alignment × length combination must splice identically to
        // per-bit pushes, including the cross-word spill.
        for prefix in [0usize, 1, 7, 63, 64, 65] {
            for len in [0usize, 1, 5, 63, 64] {
                let word = 0xDEAD_BEEF_CAFE_F00D_u64;
                let mut a = PackedBits::new();
                let mut b = PackedBits::new();
                for i in 0..prefix {
                    a.push(i % 3 == 0);
                    b.push(i % 3 == 0);
                }
                a.push_bits(word, len);
                for t in 0..len {
                    b.push(word >> t & 1 == 1);
                }
                assert_eq!(a, b, "prefix {prefix} len {len}");
                assert_eq!(a.words(), b.words(), "prefix {prefix} len {len}");
            }
        }
        // Bits above `len` must be ignored (tail stays zero).
        let mut c = PackedBits::new();
        c.push_bits(u64::MAX, 3);
        assert_eq!(c.words(), &[0b111u64]);
    }

    #[test]
    fn bitstream_conversion_matches_signs() {
        let bits: Vec<i8> = vec![1, -1, -1, 1, 1, 1, -1];
        let packed = PackedBits::from_bitstream(&bits);
        assert_eq!(packed.len(), 7);
        assert_eq!(packed.ones(), 4);
        let back: Vec<f64> = packed.to_f64_vec();
        let expected: Vec<f64> = bits.iter().map(|&b| f64::from(b)).collect();
        assert_eq!(back, expected);
    }

    #[test]
    fn mean_is_the_demodulated_dc() {
        assert_eq!(PackedBits::new().mean(), 0.0);
        let packed: PackedBits = (0..1000).map(|i| i % 4 != 0).collect();
        // 750 ones, 250 zeros: mean = (750 - 250) / 1000 = 0.5.
        assert!((packed.mean() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn byte_round_trip_is_exact() {
        for len in [0usize, 1, 7, 8, 9, 63, 64, 65, 127, 128, 200] {
            let pattern: PackedBits = (0..len).map(|i| i % 3 == 0 || i % 11 == 0).collect();
            let bytes = pattern.to_bytes();
            assert_eq!(bytes.len(), len.div_ceil(8), "len {len}");
            let back = PackedBits::from_bytes(&bytes, len);
            assert_eq!(back, pattern, "len {len}");
            assert_eq!(back.words(), pattern.words(), "len {len}");
        }
        // Junk bits beyond `len` in the source bytes are masked off.
        let noisy = PackedBits::from_bytes(&[0xFF], 3);
        assert_eq!(noisy.words(), &[0b111u64]);
    }

    #[test]
    #[should_panic(expected = "fewer than")]
    fn from_bytes_rejects_short_buffers() {
        let _ = PackedBits::from_bytes(&[0u8], 9);
    }

    #[test]
    fn collect_matches_extend() {
        let pattern: Vec<bool> = (0..130).map(|i| i % 5 == 0).collect();
        let collected: PackedBits = pattern.iter().copied().collect();
        let mut extended = PackedBits::new();
        extended.extend(pattern.iter().copied());
        assert_eq!(collected, extended);
    }

    #[test]
    fn transpose64_moves_every_bit_to_its_mirror() {
        let mut m = [0u64; 64];
        m[3] = 1 << 7;
        m[63] = 1 | (1 << 63);
        transpose64(&mut m);
        assert_eq!(m[7], 1 << 3);
        assert_eq!(m[0], 1 << 63);
        assert_eq!(m[63], 1 << 63);
        assert_eq!(m[3], 0);
    }

    #[test]
    fn transpose64_is_an_involution_on_pseudorandom_matrices() {
        // A cheap xorshift fills the matrix; transposing twice must give
        // back the original, and single transposition must satisfy
        // bit(r, c) == bit'(c, r) everywhere.
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let original: [u64; 64] = std::array::from_fn(|_| next());
        let mut m = original;
        transpose64(&mut m);
        for (r, &row) in original.iter().enumerate() {
            for (c, &col) in m.iter().enumerate() {
                assert_eq!(col >> r & 1, row >> c & 1, "bit ({r}, {c})");
            }
        }
        transpose64(&mut m);
        assert_eq!(m, original);
    }
}

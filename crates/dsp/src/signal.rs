//! Deterministic test-signal generation.
//!
//! ADC characterization (paper §3.1) drives the converter with a sine wave
//! through the modulator's auxiliary differential voltage input. These
//! helpers generate the stimulus and controlled impairments; all noise is
//! seeded so every experiment in the repository is reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Samples `amplitude * sin(2π f t + phase)` at rate `fs` for `n` samples.
pub fn sine_wave(fs: f64, f: f64, amplitude: f64, phase: f64, n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| amplitude * (2.0 * std::f64::consts::PI * f * i as f64 / fs + phase).sin())
        .collect()
}

/// Sums several `(frequency, amplitude, phase)` tones at rate `fs`.
pub fn multi_tone(fs: f64, tones: &[(f64, f64, f64)], n: usize) -> Vec<f64> {
    let mut out = vec![0.0; n];
    for &(f, a, p) in tones {
        for (i, v) in out.iter_mut().enumerate() {
            *v += a * (2.0 * std::f64::consts::PI * f * i as f64 / fs + p).sin();
        }
    }
    out
}

/// Adds zero-mean uniform white noise of the given peak amplitude,
/// deterministically from `seed`.
pub fn add_white_noise(signal: &mut [f64], peak: f64, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    for v in signal.iter_mut() {
        *v += rng.gen_range(-peak..=peak);
    }
}

/// A linear ramp from `start` to `end` over `n` samples (inclusive ends).
pub fn ramp(start: f64, end: f64, n: usize) -> Vec<f64> {
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![start];
    }
    (0..n)
        .map(|i| start + (end - start) * i as f64 / (n - 1) as f64)
        .collect()
}

/// A constant (DC) signal.
pub fn dc(level: f64, n: usize) -> Vec<f64> {
    vec![level; n]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sine_has_requested_amplitude_and_period() {
        let fs = 1000.0;
        let x = sine_wave(fs, 250.0, 0.7, 0.0, 8);
        // 250 Hz at 1 kS/s: period of 4 samples: 0, A, 0, -A, ...
        assert!(x[0].abs() < 1e-12);
        assert!((x[1] - 0.7).abs() < 1e-12);
        assert!(x[2].abs() < 1e-9);
        assert!((x[3] + 0.7).abs() < 1e-12);
    }

    #[test]
    fn phase_shifts_the_waveform() {
        let x = sine_wave(1000.0, 100.0, 1.0, std::f64::consts::FRAC_PI_2, 4);
        assert!((x[0] - 1.0).abs() < 1e-12, "sin(pi/2) = 1");
    }

    #[test]
    fn multi_tone_is_superposition() {
        let fs = 1000.0;
        let n = 64;
        let a = sine_wave(fs, 100.0, 0.5, 0.1, n);
        let b = sine_wave(fs, 200.0, 0.25, 0.2, n);
        let m = multi_tone(fs, &[(100.0, 0.5, 0.1), (200.0, 0.25, 0.2)], n);
        for i in 0..n {
            assert!((m[i] - a[i] - b[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn white_noise_is_seeded_and_bounded() {
        let mut a = vec![0.0; 1000];
        let mut b = vec![0.0; 1000];
        add_white_noise(&mut a, 0.1, 42);
        add_white_noise(&mut b, 0.1, 42);
        assert_eq!(a, b, "same seed, same noise");
        let mut c = vec![0.0; 1000];
        add_white_noise(&mut c, 0.1, 43);
        assert_ne!(a, c, "different seed, different noise");
        assert!(a.iter().all(|v| v.abs() <= 0.1));
        let mean: f64 = a.iter().sum::<f64>() / a.len() as f64;
        assert!(mean.abs() < 0.02, "mean {mean} not near zero");
    }

    #[test]
    fn ramp_hits_both_ends() {
        let r = ramp(-1.0, 1.0, 5);
        assert_eq!(r, vec![-1.0, -0.5, 0.0, 0.5, 1.0]);
        assert_eq!(ramp(3.0, 9.0, 1), vec![3.0]);
        assert!(ramp(0.0, 1.0, 0).is_empty());
    }

    #[test]
    fn dc_is_constant() {
        let d = dc(0.25, 10);
        assert_eq!(d.len(), 10);
        assert!(d.iter().all(|&v| v == 0.25));
    }
}

//! Windowed-sinc FIR design and streaming decimation — the second stage of
//! the paper's chain ("a 32 tap FIR-filter as second stage … cutoff
//! frequency … 500 Hz", §3.1).
//!
//! The FIR stage cleans up the CIC's passband droop region and performs
//! the final ÷4 decimation from 4 kS/s to the 1 kS/s output rate, with the
//! 500 Hz cutoff placed exactly at the output Nyquist frequency.

use crate::window::Window;
use crate::DspError;

/// Designs a linear-phase low-pass FIR by the windowed-sinc method.
///
/// `cutoff` is normalized to the *input* sample rate (0 < cutoff < 0.5).
/// The taps are normalized to exactly unity DC gain. A **symmetric**
/// window (length `n−1` denominator) is used so the filter is exactly
/// linear-phase.
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] for `taps < 2` or a cutoff
/// outside `(0, 0.5)`.
pub fn design_lowpass(taps: usize, cutoff: f64, window: Window) -> Result<Vec<f64>, DspError> {
    if taps < 2 {
        return Err(DspError::InvalidParameter(
            "FIR needs at least 2 taps".into(),
        ));
    }
    if !(cutoff > 0.0 && cutoff < 0.5) {
        return Err(DspError::InvalidParameter(format!(
            "normalized cutoff {cutoff} must be in (0, 0.5)"
        )));
    }
    let center = (taps - 1) as f64 / 2.0;
    let win = symmetric_window(window, taps)?;
    // Compute each mirror pair ONCE and assign it to both ends, so the
    // taps are *exactly* symmetric in floating point (libm's sin/cos at
    // mirrored arguments are only symmetric to rounding). Exact symmetry
    // is what lets [`FirDecimator`] fold the convolution to half the
    // multiplies without any numerical gate.
    let mut h = vec![0.0; taps];
    for i in 0..taps.div_ceil(2) {
        let t = i as f64 - center;
        let sinc = if t.abs() < 1e-12 {
            2.0 * cutoff
        } else {
            (2.0 * std::f64::consts::PI * cutoff * t).sin() / (std::f64::consts::PI * t)
        };
        let v = sinc * win[i];
        h[i] = v;
        h[taps - 1 - i] = v;
    }
    let sum: f64 = h.iter().sum();
    for v in &mut h {
        *v /= sum;
    }
    Ok(h)
}

/// Symmetric (filter-design) variant of the analysis windows: denominator
/// `n − 1` so the window is exactly even about the center tap.
fn symmetric_window(window: Window, n: usize) -> Result<Vec<f64>, DspError> {
    if n < 2 {
        return Err(DspError::InvalidParameter(
            "symmetric window needs n >= 2".into(),
        ));
    }
    let m = (n - 1) as f64;
    let tau = 2.0 * std::f64::consts::PI;
    let cosine_sum = |a: &[f64]| -> Vec<f64> {
        (0..n)
            .map(|i| {
                let x = i as f64 / m;
                a.iter()
                    .enumerate()
                    .map(|(k, &c)| {
                        let s = if k % 2 == 0 { 1.0 } else { -1.0 };
                        s * c * (tau * k as f64 * x).cos()
                    })
                    .sum()
            })
            .collect()
    };
    Ok(match window {
        Window::Rectangular => vec![1.0; n],
        Window::Hann => cosine_sum(&[0.5, 0.5]),
        Window::Hamming => cosine_sum(&[0.54, 0.46]),
        Window::Blackman => cosine_sum(&[0.42, 0.5, 0.08]),
        Window::BlackmanHarris => cosine_sum(&[0.358_75, 0.488_29, 0.141_28, 0.011_68]),
    })
}

/// Complex-free magnitude response of a real FIR at a normalized
/// frequency (cycles/sample).
pub fn magnitude_at(taps: &[f64], normalized_freq: f64) -> f64 {
    let omega = 2.0 * std::f64::consts::PI * normalized_freq;
    let (mut re, mut im) = (0.0, 0.0);
    for (k, &h) in taps.iter().enumerate() {
        re += h * (omega * k as f64).cos();
        im -= h * (omega * k as f64).sin();
    }
    (re * re + im * im).sqrt()
}

/// Streaming decimating FIR filter.
///
/// The delay line is a **shadow ring**: each input is written at two
/// positions `n` apart in a `2n` buffer, so the most recent `n` samples
/// are always available as one contiguous oldest-to-newest slice and the
/// inner product needs no modular indexing — a plain dot product the
/// compiler autovectorizes.
///
/// Exactly-symmetric taps (every linear-phase design from
/// [`design_lowpass`]) are detected at construction and the convolution
/// **folds**: `h[k] == h[n−1−k]` pairs share one multiply, so the
/// paper's 32-tap stage runs 16 multiplies per output instead of 32.
/// Folding changes only the association of the sum, never the operands;
/// the `fir_folding` proptests bound it against the direct form.
#[derive(Debug, Clone, PartialEq)]
pub struct FirDecimator {
    taps: Vec<f64>,
    ratio: usize,
    /// Shadow delay line of length `2n`; sample at ring position `p` is
    /// stored at both `p` and `p + n`.
    delay: Vec<f64>,
    /// Ring position of the newest sample, in `0..n`.
    head: usize,
    phase: usize,
    /// Taps are exactly symmetric — use the folded inner product.
    folded: bool,
}

impl FirDecimator {
    /// Creates a decimator from designed taps and a ratio.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] for empty taps or
    /// `ratio == 0`.
    pub fn new(taps: Vec<f64>, ratio: usize) -> Result<Self, DspError> {
        if taps.is_empty() {
            return Err(DspError::InvalidParameter("FIR taps are empty".into()));
        }
        if ratio == 0 {
            return Err(DspError::InvalidParameter(
                "decimation ratio must be >= 1".into(),
            ));
        }
        let len = taps.len();
        let folded = taps
            .iter()
            .zip(taps.iter().rev())
            .all(|(a, b)| a.to_bits() == b.to_bits());
        Ok(FirDecimator {
            taps,
            ratio,
            delay: vec![0.0; 2 * len],
            head: 0,
            phase: 0,
            folded,
        })
    }

    /// The paper's second stage: 32 taps, 500 Hz cutoff at the 4 kS/s
    /// intermediate rate (normalized 0.125), decimating by 4, Hamming
    /// design window.
    pub fn paper_default() -> Self {
        let taps =
            design_lowpass(32, 500.0 / 4000.0, Window::Hamming).expect("paper design is valid");
        FirDecimator::new(taps, 4).expect("paper parameters are valid")
    }

    /// The filter taps.
    pub fn taps(&self) -> &[f64] {
        &self.taps
    }

    /// Decimation ratio.
    pub fn ratio(&self) -> usize {
        self.ratio
    }

    /// Pushes one input sample; returns an output every `ratio`-th call.
    pub fn push(&mut self, x: f64) -> Option<f64> {
        let n = self.taps.len();
        self.head += 1;
        if self.head == n {
            self.head = 0;
        }
        self.delay[self.head] = x;
        self.delay[self.head + n] = x;
        self.phase += 1;
        if self.phase < self.ratio {
            return None;
        }
        self.phase = 0;
        // Contiguous window, oldest first: window[j] is the sample j−n+1
        // clocks ago, window[n−1] is the newest.
        let window = &self.delay[self.head + 1..self.head + 1 + n];
        let acc = if self.folded {
            folded_dot(&self.taps, window)
        } else {
            // h[k] pairs with the sample k clocks ago = window[n−1−k].
            self.taps
                .iter()
                .zip(window.iter().rev())
                .map(|(&h, &s)| h * s)
                .sum()
        };
        Some(acc)
    }

    /// Processes a block, returning all decimated outputs.
    pub fn process(&mut self, xs: &[f64]) -> Vec<f64> {
        xs.iter().filter_map(|&x| self.push(x)).collect()
    }

    /// Clears the delay line.
    pub fn reset(&mut self) {
        self.delay.iter_mut().for_each(|v| *v = 0.0);
        self.head = 0;
        self.phase = 0;
    }
}

/// Folded linear-phase inner product: for exactly-symmetric taps,
/// `Σ h[k]·s[n−1−k] = Σ_{j<n/2} h[j]·(s[j] + s[n−1−j])` (+ the lone
/// center term for odd `n`) — half the multiplies. Runs in chunks of
/// four independent accumulators so the compiler can keep the sums in
/// vector registers.
fn folded_dot(taps: &[f64], window: &[f64]) -> f64 {
    let n = taps.len();
    let half = n / 2;
    let mut acc = [0.0f64; 4];
    let mut j = 0;
    while j + 4 <= half {
        for (l, a) in acc.iter_mut().enumerate() {
            let p = j + l;
            *a += taps[p] * (window[p] + window[n - 1 - p]);
        }
        j += 4;
    }
    let mut tail = 0.0;
    while j < half {
        tail += taps[j] * (window[j] + window[n - 1 - j]);
        j += 1;
    }
    if n % 2 == 1 {
        tail += taps[half] * window[half];
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn design_is_linear_phase_and_unity_dc() {
        let h = design_lowpass(32, 0.125, Window::Hamming).unwrap();
        assert_eq!(h.len(), 32);
        let sum: f64 = h.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        for i in 0..16 {
            assert!(
                (h[i] - h[31 - i]).abs() < 1e-12,
                "tap {i} asymmetric: {} vs {}",
                h[i],
                h[31 - i]
            );
        }
    }

    #[test]
    fn magnitude_response_has_correct_shape() {
        let h = design_lowpass(32, 0.125, Window::Hamming).unwrap();
        assert!((magnitude_at(&h, 0.0) - 1.0).abs() < 1e-12);
        // Passband: ripple only.
        assert!(magnitude_at(&h, 0.05) > 0.95);
        // Transition: roughly half power near cutoff.
        let at_fc = magnitude_at(&h, 0.125);
        assert!((0.3..0.7).contains(&at_fc), "|H(fc)| = {at_fc}");
        // Stopband: > 40 dB down well past cutoff (Hamming sidelobes).
        assert!(magnitude_at(&h, 0.25) < 0.01);
        assert!(magnitude_at(&h, 0.4) < 0.01);
    }

    #[test]
    fn paper_default_matches_spec() {
        let fir = FirDecimator::paper_default();
        assert_eq!(fir.taps().len(), 32);
        assert_eq!(fir.ratio(), 4);
        // 500 Hz cutoff at 4 kS/s.
        let at_dc = magnitude_at(fir.taps(), 0.0);
        assert!((at_dc - 1.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_design_parameters_are_rejected() {
        assert!(design_lowpass(1, 0.125, Window::Hamming).is_err());
        assert!(design_lowpass(32, 0.0, Window::Hamming).is_err());
        assert!(design_lowpass(32, 0.5, Window::Hamming).is_err());
        assert!(design_lowpass(32, -0.1, Window::Hamming).is_err());
        assert!(FirDecimator::new(vec![], 4).is_err());
        assert!(FirDecimator::new(vec![1.0], 0).is_err());
    }

    #[test]
    fn impulse_response_replays_taps() {
        let taps = vec![0.5, 0.25, 0.125, 0.0625];
        let mut fir = FirDecimator::new(taps.clone(), 1).unwrap();
        let mut input = vec![0.0; 8];
        input[0] = 1.0;
        let out = fir.process(&input);
        for (i, &t) in taps.iter().enumerate() {
            assert!((out[i] - t).abs() < 1e-15, "tap {i}");
        }
        for &v in &out[taps.len()..] {
            assert!(v.abs() < 1e-15);
        }
    }

    #[test]
    fn decimation_keeps_every_rth_output() {
        let taps = design_lowpass(16, 0.1, Window::Hann).unwrap();
        let mut full = FirDecimator::new(taps.clone(), 1).unwrap();
        let mut deci = FirDecimator::new(taps, 4).unwrap();
        let input: Vec<f64> = (0..256).map(|i| ((i as f64) * 0.05).sin()).collect();
        let all = full.process(&input);
        let some = deci.process(&input);
        assert_eq!(some.len(), 64);
        for (j, &v) in some.iter().enumerate() {
            // Output j of the decimator corresponds to input index 4j+3.
            assert!((v - all[4 * j + 3]).abs() < 1e-12, "output {j}");
        }
    }

    #[test]
    fn dc_passes_exactly_after_settling() {
        let mut fir = FirDecimator::paper_default();
        let out = fir.process(&vec![0.75; 400]);
        let settled = out.last().unwrap();
        assert!((settled - 0.75).abs() < 1e-9);
    }

    #[test]
    fn stopband_tone_is_rejected_in_streaming_mode() {
        // A 1.5 kHz tone at 4 kS/s input is deep in the stopband of the
        // 500 Hz filter; the decimated output must be tiny.
        let fs = 4000.0;
        let f = 1500.0;
        let n = 4096;
        let tone: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * f * i as f64 / fs).sin())
            .collect();
        let mut fir = FirDecimator::paper_default();
        let out = fir.process(&tone);
        let settled = &out[16..];
        let rms = (settled.iter().map(|v| v * v).sum::<f64>() / settled.len() as f64).sqrt();
        assert!(rms < 0.01, "stopband rms {rms}");
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut fir = FirDecimator::paper_default();
        let fresh = fir.clone();
        let _ = fir.process(&[1.0; 40]);
        assert_ne!(fir, fresh);
        fir.reset();
        assert_eq!(fir, fresh);
    }

    #[test]
    fn all_windows_produce_valid_designs() {
        for w in [
            Window::Rectangular,
            Window::Hann,
            Window::Hamming,
            Window::Blackman,
            Window::BlackmanHarris,
        ] {
            let h = design_lowpass(33, 0.2, w).unwrap();
            assert!((h.iter().sum::<f64>() - 1.0).abs() < 1e-12, "{w:?}");
            // Center tap dominates for a lowpass.
            let center = h[16];
            assert!(h.iter().all(|&v| v <= center + 1e-12), "{w:?}");
        }
    }
}

//! Error type for the DSP substrate.

use std::error::Error;
use std::fmt;

/// Errors produced by the decimation / spectral-analysis chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DspError {
    /// An FFT or spectrum was requested on a length that is not a power
    /// of two (the radix-2 implementation requirement).
    LengthNotPowerOfTwo {
        /// Offending length.
        len: usize,
    },
    /// The input was too short for the requested operation.
    InputTooShort {
        /// Samples provided.
        len: usize,
        /// Samples required.
        required: usize,
    },
    /// A filter or quantizer parameter was out of range.
    InvalidParameter(String),
    /// No signal component could be located (all-zero spectrum).
    NoSignal,
}

impl fmt::Display for DspError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DspError::LengthNotPowerOfTwo { len } => {
                write!(f, "length {len} is not a power of two")
            }
            DspError::InputTooShort { len, required } => {
                write!(
                    f,
                    "input of {len} samples is shorter than required {required}"
                )
            }
            DspError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            DspError::NoSignal => write!(f, "spectrum contains no signal component"),
        }
    }
}

impl Error for DspError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        assert!(DspError::LengthNotPowerOfTwo { len: 100 }
            .to_string()
            .contains("100"));
        assert!(DspError::InputTooShort {
            len: 3,
            required: 64
        }
        .to_string()
        .contains("64"));
        assert!(DspError::InvalidParameter("cutoff".into())
            .to_string()
            .contains("cutoff"));
        assert!(DspError::NoSignal.to_string().contains("no signal"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DspError>();
    }
}

//! Bit-exact integer model of the FPGA decimation filter.
//!
//! The paper's decimation filter "is implemented in an FPGA" (§2.2) —
//! i.e. entirely in fixed-point arithmetic.
//! [`TwoStageDecimator`](crate::decimator::TwoStageDecimator) already
//! runs its CIC stage in integers but keeps
//! the FIR and output scaling in `f64`; this module goes all the way: a
//! [`FixedPointDecimator`] whose every intermediate value is an integer a
//! synthesizable design would hold in registers:
//!
//! ```text
//! ±1 bits → CIC (i64, wrapping)      16-bit words (R³ = 2¹⁵ gain ≙ Q15)
//!         → FIR MAC (i64)            coefficients Qc, accumulator Q(15+c)
//!         → rounding shift           12-bit output code
//! ```
//!
//! The harness experiments use it for the word-length ablation (A4) and
//! to verify the behavioral `f64` chain against the "hardware" it
//! stands in for.

use crate::cic::CicDecimator;
use crate::decimator::{DecimatorConfig, OutputQuantizer};
use crate::fir::design_lowpass;
use crate::window::Window;
use crate::DspError;

/// Fractional interpretation of the CIC output word: with a ±1 input and
/// the paper's `R = 32`, the CIC gain is `32³ = 2¹⁵`, so the 16-bit CIC
/// word is naturally a Q15 fraction.
const CIC_FRAC_BITS: u32 = 15;

/// Configuration of the bit-exact decimator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixedPointConfig {
    /// CIC order (paper: 3).
    pub cic_order: usize,
    /// CIC decimation ratio (paper: 32; must make `ratio^order` a power
    /// of two so the CIC word maps onto a clean Q format).
    pub cic_ratio: usize,
    /// FIR tap count (paper: 32).
    pub fir_taps: usize,
    /// FIR coefficient fractional bits (word length − 1; paper-class
    /// FPGA: 14).
    pub coeff_frac_bits: u32,
    /// Output word length in bits (paper: 12).
    pub output_bits: u32,
    /// Normalized FIR cutoff at the intermediate rate (paper: 0.125).
    pub cutoff: f64,
}

impl FixedPointConfig {
    /// The paper's FPGA: SINC³÷32 + 32-tap Q14 FIR ÷4 + 12-bit output.
    pub fn paper_default() -> Self {
        FixedPointConfig {
            cic_order: 3,
            cic_ratio: 32,
            fir_taps: 32,
            coeff_frac_bits: 14,
            output_bits: 12,
            cutoff: 0.125,
        }
    }
}

impl Default for FixedPointConfig {
    fn default() -> Self {
        FixedPointConfig::paper_default()
    }
}

/// Fully integer two-stage decimator (see module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct FixedPointDecimator {
    config: FixedPointConfig,
    cic: CicDecimator,
    /// Quantized FIR coefficients (raw integers, Q`coeff_frac_bits`).
    coeff_raw: Vec<i64>,
    /// FIR delay line of CIC output words.
    delay: Vec<i64>,
    head: usize,
    phase: usize,
}

impl FixedPointDecimator {
    /// Builds the integer datapath.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] when `ratio^order` is not a
    /// power of two, word lengths are out of range, or the FIR design
    /// parameters are invalid.
    pub fn new(config: FixedPointConfig) -> Result<Self, DspError> {
        let cic = CicDecimator::new(config.cic_order, config.cic_ratio)?;
        let gain = cic.gain();
        if gain <= 0 || (gain as u64).count_ones() != 1 {
            return Err(DspError::InvalidParameter(format!(
                "CIC gain {gain} must be a power of two for a clean Q mapping"
            )));
        }
        if !(2..=30).contains(&config.coeff_frac_bits) {
            return Err(DspError::InvalidParameter(format!(
                "coefficient fractional bits {} out of 2..=30",
                config.coeff_frac_bits
            )));
        }
        if !(2..=24).contains(&config.output_bits) {
            return Err(DspError::InvalidParameter(format!(
                "output bits {} out of 2..=24",
                config.output_bits
            )));
        }
        let ideal = design_lowpass(config.fir_taps, config.cutoff, Window::Hamming)?;
        let scale = (1_i64 << config.coeff_frac_bits) as f64;
        let coeff_raw: Vec<i64> = ideal.iter().map(|&c| (c * scale).round() as i64).collect();
        Ok(FixedPointDecimator {
            config,
            cic,
            delay: vec![0; config.fir_taps],
            coeff_raw,
            head: 0,
            phase: 0,
        })
    }

    /// The paper's FPGA decimator.
    pub fn paper_default() -> Self {
        FixedPointDecimator::new(FixedPointConfig::paper_default())
            .expect("paper configuration is valid")
    }

    /// The configuration.
    pub fn config(&self) -> &FixedPointConfig {
        &self.config
    }

    /// The quantized coefficients as raw integers.
    pub fn coefficients_raw(&self) -> &[i64] {
        &self.coeff_raw
    }

    /// Total decimation ratio.
    pub fn ratio(&self) -> usize {
        self.cic.ratio() * 4
    }

    /// Effective DC gain of the quantized FIR (≈ 1; the residue is the
    /// coefficient-rounding gain error a real FPGA design also has).
    pub fn dc_gain(&self) -> f64 {
        self.coeff_raw.iter().sum::<i64>() as f64 / (1_i64 << self.config.coeff_frac_bits) as f64
    }

    /// Pushes one modulator bit (+1/−1); returns an output code every
    /// `ratio()`-th call.
    pub fn push(&mut self, bit: i8) -> Option<i32> {
        debug_assert!(bit == 1 || bit == -1, "single-bit stream expected");
        // Scale the CIC's natural Q mapping to Q15 regardless of gain.
        let cic_word = self.cic.push(i64::from(bit))?;
        let gain_bits = (self.cic.gain() as u64).trailing_zeros();
        let mid = if gain_bits >= CIC_FRAC_BITS {
            cic_word >> (gain_bits - CIC_FRAC_BITS)
        } else {
            cic_word << (CIC_FRAC_BITS - gain_bits)
        };
        // FIR stage at the intermediate rate, decimating by 4.
        let n = self.delay.len();
        self.head = (self.head + 1) % n;
        self.delay[self.head] = mid;
        self.phase += 1;
        if self.phase < 4 {
            return None;
        }
        self.phase = 0;
        let mut acc: i64 = 0;
        for (k, &c) in self.coeff_raw.iter().enumerate() {
            let idx = (self.head + n - k) % n;
            acc += c * self.delay[idx];
        }
        // Accumulator fraction: Q(15 + coeff_frac); shift (with rounding)
        // down to the output word and saturate.
        let out_frac = self.config.output_bits - 1;
        let shift = CIC_FRAC_BITS + self.config.coeff_frac_bits - out_frac;
        let rounded = (acc + (1_i64 << (shift - 1))) >> shift;
        let max = (1_i64 << out_frac) - 1;
        let min = -(1_i64 << out_frac);
        Some(rounded.clamp(min, max) as i32)
    }

    /// Processes a block of bits.
    pub fn process(&mut self, bits: &[i8]) -> Vec<i32> {
        bits.iter().filter_map(|&b| self.push(b)).collect()
    }

    /// Converts an output code back to a ±1.0 full-scale value (what the
    /// host computer does after the USB link).
    pub fn dequantize(&self, code: i32) -> f64 {
        code as f64 / (1_i64 << (self.config.output_bits - 1)) as f64
    }

    /// Clears all state.
    pub fn reset(&mut self) {
        self.cic.reset();
        self.delay.iter_mut().for_each(|v| *v = 0);
        self.head = 0;
        self.phase = 0;
    }
}

/// Runs the behavioral (`f64`) and bit-exact chains side by side and
/// returns the worst output disagreement in output LSB.
///
/// # Errors
///
/// Propagates construction failures of either chain.
pub fn cross_check_against_behavioral(bits: &[i8]) -> Result<f64, DspError> {
    let mut hw = FixedPointDecimator::paper_default();
    let mut sw = DecimatorConfig::paper_default().build()?;
    let q = OutputQuantizer::new(12)?;
    let hw_codes: Vec<i32> = bits.iter().filter_map(|&b| hw.push(b)).collect();
    let hw_out: Vec<f64> = hw_codes.iter().map(|&c| hw.dequantize(c)).collect();
    let sw_out: Vec<f64> = bits.iter().filter_map(|&b| sw.push(f64::from(b))).collect();
    let mut worst = 0.0_f64;
    for (a, b) in hw_out.iter().zip(&sw_out) {
        worst = worst.max((a - b).abs() / q.lsb());
    }
    Ok(worst)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bitstream(n: usize) -> Vec<i8> {
        // A deterministic pseudo-random ±1 stream with a positive bias.
        (0..n)
            .map(|i| {
                let h = i.wrapping_mul(2654435761) >> 7;
                if h % 16 < 9 {
                    1
                } else {
                    -1
                }
            })
            .collect()
    }

    #[test]
    fn paper_configuration_builds_and_decimates() {
        let mut d = FixedPointDecimator::paper_default();
        assert_eq!(d.ratio(), 128);
        let out = d.process(&bitstream(128 * 50));
        assert_eq!(out.len(), 50);
        // DC gain of the quantized FIR is within 0.2 % of unity.
        assert!((d.dc_gain() - 1.0).abs() < 2e-3, "dc gain {}", d.dc_gain());
    }

    #[test]
    fn dc_bitstream_converges_to_its_mean() {
        // All +1 bits → the output should settle to (nearly) +full scale.
        let mut d = FixedPointDecimator::paper_default();
        let out = d.process(&vec![1_i8; 128 * 60]);
        let settled = d.dequantize(*out.last().unwrap());
        assert!((settled - 1.0).abs() < 3.0 / 2048.0, "settled to {settled}");
    }

    #[test]
    fn agrees_with_the_behavioral_chain_within_one_lsb() {
        let worst = cross_check_against_behavioral(&bitstream(128 * 200)).unwrap();
        assert!(worst <= 1.5, "hardware/behavioral disagreement {worst} LSB");
    }

    #[test]
    fn is_bit_exactly_deterministic() {
        let bits = bitstream(128 * 30);
        let a = FixedPointDecimator::paper_default().process(&bits);
        let b = FixedPointDecimator::paper_default().process(&bits);
        assert_eq!(a, b);
    }

    #[test]
    fn output_saturates_cleanly() {
        let mut d = FixedPointDecimator::paper_default();
        let out = d.process(&vec![1_i8; 128 * 80]);
        for &code in &out {
            assert!((-2048..=2047).contains(&code));
        }
        assert_eq!(
            *out.last().unwrap(),
            2047,
            "sustained +FS pins the top code"
        );
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let mut cfg = FixedPointConfig::paper_default();
        cfg.cic_ratio = 24; // 24^3 not a power of two
        assert!(FixedPointDecimator::new(cfg).is_err());
        let mut cfg = FixedPointConfig::paper_default();
        cfg.coeff_frac_bits = 1;
        assert!(FixedPointDecimator::new(cfg).is_err());
        let mut cfg = FixedPointConfig::paper_default();
        cfg.output_bits = 30;
        assert!(FixedPointDecimator::new(cfg).is_err());
        let mut cfg = FixedPointConfig::paper_default();
        cfg.cutoff = 0.6;
        assert!(FixedPointDecimator::new(cfg).is_err());
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut d = FixedPointDecimator::paper_default();
        let fresh = d.clone();
        let _ = d.process(&bitstream(1000));
        assert_ne!(d, fresh);
        d.reset();
        assert_eq!(d, fresh);
    }

    #[test]
    fn non_paper_ratios_with_power_of_two_gain_work() {
        // R = 16, order 3 → gain 2^12: the Q mapping shifts up.
        let cfg = FixedPointConfig {
            cic_ratio: 16,
            ..FixedPointConfig::paper_default()
        };
        let mut d = FixedPointDecimator::new(cfg).unwrap();
        assert_eq!(d.ratio(), 64);
        let out = d.process(&vec![1_i8; 64 * 60]);
        let settled = d.dequantize(*out.last().unwrap());
        assert!((settled - 1.0).abs() < 3.0 / 2048.0, "settled to {settled}");
    }
}

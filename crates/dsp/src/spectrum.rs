//! Power spectra in dBFS — the representation of paper Fig. 7.
//!
//! [`Spectrum`] holds the one-sided power spectrum of a real signal,
//! normalized so that a **full-scale sine** (amplitude 1.0 after the
//! caller's own full-scale normalization) reads 0 dBFS at its bin,
//! independent of the analysis window. That is exactly the axis of the
//! paper's measured ADC spectrum.

use crate::fft::fft_real;
use crate::window::Window;
use crate::DspError;

/// One-sided power spectrum of a real signal.
#[derive(Debug, Clone, PartialEq)]
pub struct Spectrum {
    /// One-sided linear power per bin, normalized so a full-scale sine
    /// integrates to 1.0 at its bin cluster.
    power: Vec<f64>,
    /// Sample rate of the analyzed signal in Hz.
    sample_rate: f64,
    /// FFT length used.
    fft_len: usize,
    /// Window applied before the FFT.
    window: Window,
}

impl Spectrum {
    /// Computes the one-sided power spectrum of `signal` (whose full scale
    /// is ±1.0) using the given window.
    ///
    /// # Errors
    ///
    /// * [`DspError::LengthNotPowerOfTwo`] — radix-2 FFT requirement.
    /// * [`DspError::InputTooShort`] — fewer than 8 samples.
    pub fn from_signal(signal: &[f64], sample_rate: f64, window: Window) -> Result<Self, DspError> {
        if signal.len() < 8 {
            return Err(DspError::InputTooShort {
                len: signal.len(),
                required: 8,
            });
        }
        let n = signal.len();
        let coeffs = window.coefficients(n)?;
        let windowed: Vec<f64> = signal.iter().zip(&coeffs).map(|(&x, &w)| x * w).collect();
        let spec = fft_real(&windowed)?;
        // Power normalization via Parseval with the window's energy Σw²:
        // the *integrated* power of a tone cluster and of broadband noise
        // are then both exact, independent of the window (the property the
        // SNR metrics rely on). The extra factor of 2 references powers to
        // a full-scale sine (power A²/2 with A = 1), so a FS sine's
        // cluster integrates to exactly 1.0 → 0 dBFS.
        let window_energy: f64 = coeffs.iter().map(|w| w * w).sum();
        let scale = 4.0 / (n as f64 * window_energy);
        let half = n / 2;
        let mut power = Vec::with_capacity(half + 1);
        for (k, v) in spec.iter().take(half + 1).enumerate() {
            let mut p = v.norm_sqr() * scale;
            // DC and Nyquist bins are not doubled by the one-sided fold.
            if k == 0 || k == half {
                p /= 2.0;
            }
            power.push(p);
        }
        Ok(Spectrum {
            power,
            sample_rate,
            fft_len: n,
            window,
        })
    }

    /// Linear power per bin (full-scale-sine–normalized).
    pub fn power(&self) -> &[f64] {
        &self.power
    }

    /// Number of one-sided bins (`N/2 + 1`).
    pub fn len(&self) -> usize {
        self.power.len()
    }

    /// True if the spectrum has no bins (never for constructed spectra).
    pub fn is_empty(&self) -> bool {
        self.power.is_empty()
    }

    /// The FFT length used for analysis.
    pub fn fft_len(&self) -> usize {
        self.fft_len
    }

    /// Analyzed sample rate in Hz.
    pub fn sample_rate(&self) -> f64 {
        self.sample_rate
    }

    /// The window used.
    pub fn window(&self) -> Window {
        self.window
    }

    /// Center frequency of a bin in Hz.
    pub fn bin_frequency(&self, bin: usize) -> f64 {
        bin as f64 * self.sample_rate / self.fft_len as f64
    }

    /// The bin nearest a frequency.
    pub fn frequency_bin(&self, hz: f64) -> usize {
        ((hz * self.fft_len as f64 / self.sample_rate).round() as usize).min(self.power.len() - 1)
    }

    /// Per-bin level in dBFS (0 dBFS = full-scale sine), floored at
    /// -200 dBFS to keep plots finite.
    pub fn to_dbfs(&self) -> Vec<f64> {
        self.power
            .iter()
            .map(|&p| 10.0 * p.max(1e-20).log10())
            .collect()
    }

    /// Index of the strongest non-DC bin.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::NoSignal`] when every non-DC bin is zero.
    pub fn peak_bin(&self) -> Result<usize, DspError> {
        let mut best = None;
        let mut best_p = 0.0;
        // Skip DC and its window leakage.
        let skip = self.window.leakage_bins() + 1;
        for (i, &p) in self.power.iter().enumerate().skip(skip) {
            if p > best_p {
                best_p = p;
                best = Some(i);
            }
        }
        best.ok_or(DspError::NoSignal)
    }

    /// Total power in a closed bin range, clamped to the spectrum.
    pub fn band_power(&self, lo_bin: usize, hi_bin: usize) -> f64 {
        let hi = hi_bin.min(self.power.len() - 1);
        if lo_bin > hi {
            return 0.0;
        }
        self.power[lo_bin..=hi].iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::sine_wave;

    #[test]
    fn full_scale_sine_reads_zero_dbfs() {
        let fs = 1000.0;
        let n = 1024;
        let f = Window::coherent_frequency(fs, n, 100.0);
        for w in [Window::Rectangular, Window::Hann, Window::Blackman] {
            let x = sine_wave(fs, f, 1.0, 0.3, n);
            let s = Spectrum::from_signal(&x, fs, w).unwrap();
            let peak = s.peak_bin().unwrap();
            let tone: f64 = s.band_power(
                peak.saturating_sub(w.leakage_bins()),
                peak + w.leakage_bins(),
            );
            let db = 10.0 * tone.log10();
            assert!(db.abs() < 0.05, "{w:?}: {db} dBFS");
        }
    }

    #[test]
    fn half_scale_sine_reads_minus_six_dbfs() {
        let fs = 1000.0;
        let n = 2048;
        let f = Window::coherent_frequency(fs, n, 50.0);
        let x = sine_wave(fs, f, 0.5, 0.0, n);
        let s = Spectrum::from_signal(&x, fs, Window::Hann).unwrap();
        let peak = s.peak_bin().unwrap();
        let tone = s.band_power(peak - 2, peak + 2);
        let db = 10.0 * tone.log10();
        assert!((db + 6.02).abs() < 0.05, "{db} dBFS");
    }

    #[test]
    fn peak_bin_finds_the_tone() {
        let fs = 1000.0;
        let n = 1024;
        let f = Window::coherent_frequency(fs, n, 123.0);
        let x = sine_wave(fs, f, 0.8, 0.0, n);
        let s = Spectrum::from_signal(&x, fs, Window::Hann).unwrap();
        let peak = s.peak_bin().unwrap();
        assert_eq!(peak, s.frequency_bin(f));
        assert!((s.bin_frequency(peak) - f).abs() < fs / n as f64 / 2.0);
    }

    #[test]
    fn dc_is_not_reported_as_signal() {
        let fs = 1000.0;
        let n = 1024;
        let f = Window::coherent_frequency(fs, n, 200.0);
        let mut x = sine_wave(fs, f, 0.1, 0.0, n);
        for v in &mut x {
            *v += 0.9; // huge DC offset
        }
        let s = Spectrum::from_signal(&x, fs, Window::Hann).unwrap();
        let peak = s.peak_bin().unwrap();
        assert_eq!(peak, s.frequency_bin(f), "peak must skip DC leakage");
    }

    #[test]
    fn silence_has_no_signal() {
        let x = vec![0.0; 256];
        let s = Spectrum::from_signal(&x, 1000.0, Window::Hann).unwrap();
        assert_eq!(s.peak_bin(), Err(DspError::NoSignal));
    }

    #[test]
    fn dbfs_floor_keeps_values_finite() {
        let x = vec![0.0; 256];
        let s = Spectrum::from_signal(&x, 1000.0, Window::Hann).unwrap();
        for v in s.to_dbfs() {
            assert!(v.is_finite());
            assert!(v <= -190.0);
        }
    }

    #[test]
    fn short_and_odd_inputs_are_rejected() {
        assert!(matches!(
            Spectrum::from_signal(&[0.0; 4], 1000.0, Window::Hann),
            Err(DspError::InputTooShort { .. })
        ));
        assert!(matches!(
            Spectrum::from_signal(&[0.0; 100], 1000.0, Window::Hann),
            Err(DspError::LengthNotPowerOfTwo { .. })
        ));
    }

    #[test]
    fn band_power_clamps_and_orders() {
        let x = sine_wave(1000.0, 100.0, 1.0, 0.0, 256);
        let s = Spectrum::from_signal(&x, 1000.0, Window::Hann).unwrap();
        let total = s.band_power(0, 10_000);
        assert!(total > 0.0);
        assert_eq!(s.band_power(10, 5), 0.0);
    }

    #[test]
    fn accessors_report_analysis_parameters() {
        let x = sine_wave(1000.0, 100.0, 1.0, 0.0, 512);
        let s = Spectrum::from_signal(&x, 1000.0, Window::Blackman).unwrap();
        assert_eq!(s.fft_len(), 512);
        assert_eq!(s.len(), 257);
        assert!(!s.is_empty());
        assert_eq!(s.sample_rate(), 1000.0);
        assert_eq!(s.window(), Window::Blackman);
        assert_eq!(s.power().len(), 257);
        assert!((s.bin_frequency(256) - 500.0).abs() < 1e-9);
    }
}

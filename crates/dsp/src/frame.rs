//! Self-delimiting link frames: the wire/file format of the host link.
//!
//! The paper's chip streams its ΣΔ bitstream "over USB to a computer
//! system" (§2.2). This module defines the byte-level frame that crosses
//! that boundary — used both by the live transport (`tonos-link`) and by
//! the binary session recorder (`tonos_core::export`), so recorded
//! sessions and link traffic share one format.
//!
//! ```text
//! offset  size  field
//! 0       4     sync word  5A DC B1 7E
//! 4       1     version (high nibble) | kind (low nibble)
//! 5       2     element id          (u16 LE)
//! 7       4     sequence number     (u32 LE)
//! 11      8     clock index         (u64 LE)
//! 19      4     payload length, BITS (u32 LE)
//! 23      n     payload, n = bits.div_ceil(8), LSB-first per byte
//! 23+n    4     CRC-32 (IEEE) over bytes 4..23+n   (u32 LE)
//! ```
//!
//! Design rules that make the stream recoverable after corruption:
//!
//! * **Self-delimiting.** A receiver that lost its place scans for the
//!   4-byte sync word and re-parses from there; a false sync inside
//!   payload bytes is rejected by the CRC with probability `1 − 2⁻³²`.
//! * **Bounded length.** `payload_bits` above [`MAX_PAYLOAD_BITS`] is
//!   corruption by definition ([`CorruptReason::Length`]) — a flipped
//!   length bit can never convince the parser to buffer gigabytes.
//! * **Versioned.** The version nibble must match [`VERSION`]; anything
//!   else is treated as corruption, not as a future format.
//!
//! The streaming decoder with resynchronization and sequence-gap
//! tracking lives in `tonos-link`; this module provides the frame type,
//! the one-shot parser it is built on, and [`crc32`].

use crate::bits::PackedBits;
use crate::DspError;

/// The frame sync word. Chosen to avoid runs likely in ΣΔ payloads
/// (alternating-heavy bytes) while staying cheap to scan for.
pub const SYNC: [u8; 4] = [0x5A, 0xDC, 0xB1, 0x7E];

/// Bytes before the payload, sync word included.
pub const HEADER_LEN: usize = 23;

/// Trailing CRC-32 bytes.
pub const CRC_LEN: usize = 4;

/// Wire-format version carried in the high nibble of byte 4.
pub const VERSION: u8 = 1;

/// Hard ceiling on `payload_bits`; larger values are corruption.
pub const MAX_PAYLOAD_BITS: u32 = 1 << 20;

/// Frame kind: a packed ΣΔ bitstream chunk (the live link payload).
pub const KIND_BITSTREAM: u8 = 0;
/// Frame kind: session-record metadata (`tonos_core::export`).
pub const KIND_SESSION_META: u8 = 1;
/// Frame kind: session-record sample data (`tonos_core::export`).
pub const KIND_SESSION_DATA: u8 = 2;
/// Control frame kind: device→host session handshake carrying a keyed
/// MAC ([`Hello`]).
pub const KIND_HELLO: u8 = 3;
/// Control frame kind: host→device handshake verdict ([`HelloAck`]).
pub const KIND_HELLO_ACK: u8 = 4;
/// Control frame kind: host→device negative acknowledgement listing
/// missing sequence ranges ([`Nak`]).
pub const KIND_NAK: u8 = 5;

/// Whether a frame kind is a control frame (handshake / NAK traffic).
///
/// Control frames are *not* part of the data sequence space: their
/// `seq`/`clock` header fields are advisory (senders write 0) and a
/// streaming decoder must exclude them from gap and duplicate tracking.
pub fn is_control_kind(kind: u8) -> bool {
    matches!(kind, KIND_HELLO | KIND_HELLO_ACK | KIND_NAK)
}

/// Hard ceiling on ranges inside one [`Nak`]; more is corruption.
pub const NAK_MAX_RANGES: usize = 64;

/// The `KIND_HELLO` payload: a device introducing itself with a keyed
/// 64-bit MAC tag, so stream provenance stops riding on CRC-32 (which
/// is integrity only — anyone can compute it).
///
/// The tag algorithm (SipHash-2-4 over `device_id ‖ nonce`, see
/// `tonos-link`'s `LinkKey`) is part of the wire contract; this type is
/// only the byte layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hello {
    /// Device-chosen stable identity.
    pub device_id: u64,
    /// Device-chosen fresh value, mixed into the tag.
    pub nonce: u64,
    /// Keyed MAC over `device_id ‖ nonce` (little-endian).
    pub tag: u64,
}

impl Hello {
    /// Payload length in bytes.
    pub const LEN: usize = 24;

    /// Serializes to the 24-byte `KIND_HELLO` payload.
    pub fn to_payload(self) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::LEN);
        out.extend_from_slice(&self.device_id.to_le_bytes());
        out.extend_from_slice(&self.nonce.to_le_bytes());
        out.extend_from_slice(&self.tag.to_le_bytes());
        out
    }

    /// Parses a `KIND_HELLO` payload; `None` if the length is wrong.
    pub fn from_payload(payload: &[u8]) -> Option<Self> {
        if payload.len() != Self::LEN {
            return None;
        }
        Some(Hello {
            device_id: u64::from_le_bytes(payload[0..8].try_into().ok()?),
            nonce: u64::from_le_bytes(payload[8..16].try_into().ok()?),
            tag: u64::from_le_bytes(payload[16..24].try_into().ok()?),
        })
    }

    /// Wraps the payload in a `KIND_HELLO` frame (seq/clock 0 — control
    /// frames sit outside the data sequence space).
    pub fn to_frame(self) -> Frame {
        Frame::bytes(KIND_HELLO, 0, 0, 0, self.to_payload())
            .expect("hello payload is well within frame limits")
    }
}

/// The `KIND_HELLO_ACK` payload: the host's one-byte handshake verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HelloAck {
    /// Whether the host accepted the handshake.
    pub accepted: bool,
}

impl HelloAck {
    /// Payload length in bytes.
    pub const LEN: usize = 1;

    /// Serializes to the 1-byte `KIND_HELLO_ACK` payload.
    pub fn to_payload(self) -> Vec<u8> {
        vec![u8::from(self.accepted)]
    }

    /// Parses a `KIND_HELLO_ACK` payload; `None` on a wrong length or a
    /// byte other than 0/1.
    pub fn from_payload(payload: &[u8]) -> Option<Self> {
        match payload {
            [0] => Some(HelloAck { accepted: false }),
            [1] => Some(HelloAck { accepted: true }),
            _ => None,
        }
    }

    /// Wraps the payload in a `KIND_HELLO_ACK` frame.
    pub fn to_frame(self) -> Frame {
        Frame::bytes(KIND_HELLO_ACK, 0, 0, 0, self.to_payload())
            .expect("ack payload is well within frame limits")
    }
}

/// One missing-sequence range inside a [`Nak`]: `count` frames starting
/// at `first` (sequence arithmetic is mod 2³²).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeqRange {
    /// First missing sequence number.
    pub first: u32,
    /// Number of consecutive missing frames (≥ 1).
    pub count: u32,
}

/// The `KIND_NAK` payload: the host telling the device which data
/// frames never arrived, so the device can retransmit them from its
/// bounded window before gap concealment has to invent samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Nak {
    /// Missing ranges, at most [`NAK_MAX_RANGES`].
    pub ranges: Vec<SeqRange>,
}

impl Nak {
    /// Serializes to the `KIND_NAK` payload:
    /// `count:u16 LE` then `count × (first:u32 LE, count:u32 LE)`.
    pub fn to_payload(&self) -> Vec<u8> {
        let n = self.ranges.len().min(NAK_MAX_RANGES);
        let mut out = Vec::with_capacity(2 + n * 8);
        out.extend_from_slice(&(n as u16).to_le_bytes());
        for r in &self.ranges[..n] {
            out.extend_from_slice(&r.first.to_le_bytes());
            out.extend_from_slice(&r.count.to_le_bytes());
        }
        out
    }

    /// Parses a `KIND_NAK` payload; `None` on a malformed length, a
    /// range count over [`NAK_MAX_RANGES`], or a zero-length range.
    pub fn from_payload(payload: &[u8]) -> Option<Self> {
        let n = u16::from_le_bytes(payload.get(0..2)?.try_into().ok()?) as usize;
        if n > NAK_MAX_RANGES || payload.len() != 2 + n * 8 {
            return None;
        }
        let mut ranges = Vec::with_capacity(n);
        for i in 0..n {
            let at = 2 + i * 8;
            let range = SeqRange {
                first: u32::from_le_bytes(payload[at..at + 4].try_into().ok()?),
                count: u32::from_le_bytes(payload[at + 4..at + 8].try_into().ok()?),
            };
            if range.count == 0 {
                return None;
            }
            ranges.push(range);
        }
        Some(Nak { ranges })
    }

    /// Wraps the payload in a `KIND_NAK` frame.
    pub fn to_frame(&self) -> Frame {
        Frame::bytes(KIND_NAK, 0, 0, 0, self.to_payload())
            .expect("nak payload is well within frame limits")
    }
}

/// CRC-32 (IEEE 802.3, reflected, init/xorout `0xFFFF_FFFF`) — the
/// polynomial every USB/Ethernet-adjacent link layer uses, table-driven.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = TABLE[((crc ^ u32::from(b)) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

/// One decoded (or to-be-encoded) frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Frame kind (low nibble of byte 4): [`KIND_BITSTREAM`] and friends.
    pub kind: u8,
    /// Source element/channel id.
    pub element: u16,
    /// Per-stream sequence number (wraps at `u32::MAX`).
    pub seq: u32,
    /// Modulator clock index of the payload's first bit (bitstream
    /// frames) or an application-defined cursor (record frames).
    pub clock: u64,
    payload_bits: u32,
    payload: Vec<u8>,
}

/// Outcome of [`Frame::parse`] on a buffer positioned at a candidate
/// frame start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseOutcome {
    /// The buffer holds a valid prefix of a frame; feed more bytes.
    NeedMore,
    /// A complete, CRC-verified frame occupying `consumed` bytes.
    Parsed {
        /// The decoded frame.
        frame: Frame,
        /// Bytes of the buffer the frame occupied.
        consumed: usize,
    },
    /// The bytes at the buffer start are not a valid frame.
    Corrupt {
        /// What check failed.
        reason: CorruptReason,
    },
}

/// Why a candidate frame was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptReason {
    /// The buffer does not start with [`SYNC`].
    Sync,
    /// The version nibble does not match [`VERSION`].
    Version,
    /// `payload_bits` exceeds [`MAX_PAYLOAD_BITS`].
    Length,
    /// The CRC-32 check failed.
    Crc,
}

impl Frame {
    /// A bitstream frame carrying a packed ΣΔ chunk.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] when the chunk exceeds
    /// [`MAX_PAYLOAD_BITS`] bits.
    pub fn bitstream(
        element: u16,
        seq: u32,
        clock: u64,
        bits: &PackedBits,
    ) -> Result<Self, DspError> {
        Frame::new(
            KIND_BITSTREAM,
            element,
            seq,
            clock,
            bits.to_bytes(),
            bits.len() as u32,
        )
    }

    /// A frame over an opaque byte payload (record kinds).
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] when the payload exceeds
    /// [`MAX_PAYLOAD_BITS`] bits or the kind does not fit its nibble.
    pub fn bytes(
        kind: u8,
        element: u16,
        seq: u32,
        clock: u64,
        payload: Vec<u8>,
    ) -> Result<Self, DspError> {
        let bits = (payload.len() as u32).saturating_mul(8);
        Frame::new(kind, element, seq, clock, payload, bits)
    }

    fn new(
        kind: u8,
        element: u16,
        seq: u32,
        clock: u64,
        payload: Vec<u8>,
        payload_bits: u32,
    ) -> Result<Self, DspError> {
        if kind > 0x0F {
            return Err(DspError::InvalidParameter(format!(
                "frame kind {kind} does not fit the kind nibble"
            )));
        }
        if payload_bits > MAX_PAYLOAD_BITS {
            return Err(DspError::InvalidParameter(format!(
                "payload of {payload_bits} bits exceeds the {MAX_PAYLOAD_BITS}-bit frame limit"
            )));
        }
        debug_assert_eq!(payload.len(), (payload_bits as usize).div_ceil(8));
        Ok(Frame {
            kind,
            element,
            seq,
            clock,
            payload_bits,
            payload,
        })
    }

    /// Number of valid payload bits.
    pub fn payload_bits(&self) -> usize {
        self.payload_bits as usize
    }

    /// The raw payload bytes (`payload_bits().div_ceil(8)` of them).
    pub fn payload_bytes(&self) -> &[u8] {
        &self.payload
    }

    /// The payload as a packed ΣΔ stream (bitstream frames).
    pub fn to_packed_bits(&self) -> PackedBits {
        PackedBits::from_bytes(&self.payload, self.payload_bits as usize)
    }

    /// Encoded size in bytes (sync + header + payload + CRC).
    pub fn encoded_len(&self) -> usize {
        HEADER_LEN + self.payload.len() + CRC_LEN
    }

    /// Appends the encoded frame to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.reserve(self.encoded_len());
        let body_start = out.len() + SYNC.len();
        out.extend_from_slice(&SYNC);
        out.push((VERSION << 4) | self.kind);
        out.extend_from_slice(&self.element.to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.clock.to_le_bytes());
        out.extend_from_slice(&self.payload_bits.to_le_bytes());
        out.extend_from_slice(&self.payload);
        let crc = crc32(&out[body_start..]);
        out.extend_from_slice(&crc.to_le_bytes());
    }

    /// The encoded frame as a fresh byte vector.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        self.encode_into(&mut out);
        out
    }

    /// Parses one frame from the start of `buf`.
    ///
    /// `buf` must be positioned at a candidate frame start (the caller
    /// scans for [`SYNC`]); anything else comes back as
    /// [`ParseOutcome::Corrupt`] so streaming decoders can advance one
    /// byte and rescan.
    pub fn parse(buf: &[u8]) -> ParseOutcome {
        if buf.len() < SYNC.len() {
            return if SYNC.starts_with(buf) {
                ParseOutcome::NeedMore
            } else {
                ParseOutcome::Corrupt {
                    reason: CorruptReason::Sync,
                }
            };
        }
        if buf[..SYNC.len()] != SYNC {
            return ParseOutcome::Corrupt {
                reason: CorruptReason::Sync,
            };
        }
        if buf.len() < HEADER_LEN {
            return ParseOutcome::NeedMore;
        }
        if buf[4] >> 4 != VERSION {
            return ParseOutcome::Corrupt {
                reason: CorruptReason::Version,
            };
        }
        let payload_bits = u32::from_le_bytes(buf[19..23].try_into().expect("4 bytes"));
        if payload_bits > MAX_PAYLOAD_BITS {
            return ParseOutcome::Corrupt {
                reason: CorruptReason::Length,
            };
        }
        let payload_len = (payload_bits as usize).div_ceil(8);
        let total = HEADER_LEN + payload_len + CRC_LEN;
        if buf.len() < total {
            return ParseOutcome::NeedMore;
        }
        let crc_stored =
            u32::from_le_bytes(buf[total - CRC_LEN..total].try_into().expect("4 bytes"));
        if crc32(&buf[SYNC.len()..total - CRC_LEN]) != crc_stored {
            return ParseOutcome::Corrupt {
                reason: CorruptReason::Crc,
            };
        }
        let frame = Frame {
            kind: buf[4] & 0x0F,
            element: u16::from_le_bytes(buf[5..7].try_into().expect("2 bytes")),
            seq: u32::from_le_bytes(buf[7..11].try_into().expect("4 bytes")),
            clock: u64::from_le_bytes(buf[11..19].try_into().expect("8 bytes")),
            payload_bits,
            payload: buf[HEADER_LEN..HEADER_LEN + payload_len].to_vec(),
        };
        ParseOutcome::Parsed {
            frame,
            consumed: total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bits(n: usize) -> PackedBits {
        (0..n).map(|i| i % 3 == 0 || i % 7 == 2).collect()
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The two universally published IEEE CRC-32 check values.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn encode_parse_round_trip() {
        for n in [0usize, 1, 7, 8, 63, 64, 65, 128, 1000] {
            let bits = sample_bits(n);
            let frame = Frame::bitstream(3, 42, 9999, &bits).unwrap();
            let encoded = frame.encode();
            assert_eq!(encoded.len(), frame.encoded_len());
            match Frame::parse(&encoded) {
                ParseOutcome::Parsed {
                    frame: back,
                    consumed,
                } => {
                    assert_eq!(consumed, encoded.len());
                    assert_eq!(back, frame);
                    assert_eq!(back.to_packed_bits(), bits, "{n} bits");
                }
                other => panic!("parse failed for {n} bits: {other:?}"),
            }
        }
    }

    #[test]
    fn truncated_frames_ask_for_more() {
        let frame = Frame::bitstream(0, 0, 0, &sample_bits(100)).unwrap();
        let encoded = frame.encode();
        for cut in 0..encoded.len() {
            assert_eq!(
                Frame::parse(&encoded[..cut]),
                ParseOutcome::NeedMore,
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn every_corruption_class_is_rejected() {
        let frame = Frame::bitstream(1, 2, 3, &sample_bits(64)).unwrap();
        let good = frame.encode();

        let mut bad = good.clone();
        bad[0] ^= 0xFF; // sync
        assert_eq!(
            Frame::parse(&bad),
            ParseOutcome::Corrupt {
                reason: CorruptReason::Sync
            }
        );

        let mut bad = good.clone();
        bad[4] ^= 0xF0; // version nibble
        assert_eq!(
            Frame::parse(&bad),
            ParseOutcome::Corrupt {
                reason: CorruptReason::Version
            }
        );

        let mut bad = good.clone();
        bad[22] = 0xFF; // length high byte -> over MAX_PAYLOAD_BITS
        assert_eq!(
            Frame::parse(&bad),
            ParseOutcome::Corrupt {
                reason: CorruptReason::Length
            }
        );

        // A flip anywhere in the CRC-covered region must fail the CRC.
        for i in [4usize, 6, 9, 15, 21, 25, good.len() - 1] {
            let mut bad = good.clone();
            bad[i] ^= 0x10;
            let outcome = Frame::parse(&bad);
            assert!(
                matches!(outcome, ParseOutcome::Corrupt { .. }),
                "flip at {i}: {outcome:?}"
            );
        }
    }

    #[test]
    fn oversized_payloads_are_rejected_at_construction() {
        let too_big: PackedBits = (0..(MAX_PAYLOAD_BITS as usize + 1)).map(|_| true).collect();
        assert!(Frame::bitstream(0, 0, 0, &too_big).is_err());
        assert!(Frame::bytes(0x10, 0, 0, 0, Vec::new()).is_err());
        assert!(Frame::bytes(KIND_SESSION_DATA, 0, 0, 0, vec![0; 8]).is_ok());
    }
}

//! Property-based tests of the DSP substrate invariants.

use proptest::prelude::*;
use tonos_dsp::bits::PackedBits;
use tonos_dsp::cic::{CicDecimator, CicDecimatorF64};
use tonos_dsp::decimator::{DecimatorConfig, OutputQuantizer};
use tonos_dsp::fft::{fft, ifft, Complex};
use tonos_dsp::fir::{design_lowpass, magnitude_at, FirDecimator};
use tonos_dsp::fixed::{Fixed, QFormat};
use tonos_dsp::fpga::FixedPointDecimator;
use tonos_dsp::window::Window;

proptest! {
    /// FFT → IFFT is the identity for arbitrary complex signals.
    #[test]
    fn fft_round_trips(values in prop::collection::vec(-1e3_f64..1e3, 128)) {
        let signal: Vec<Complex> = values
            .chunks(2)
            .map(|c| Complex::new(c[0], c[1]))
            .collect();
        let mut buf = signal.clone();
        fft(&mut buf).unwrap();
        ifft(&mut buf).unwrap();
        for (a, b) in buf.iter().zip(&signal) {
            prop_assert!((a.re - b.re).abs() < 1e-8);
            prop_assert!((a.im - b.im).abs() < 1e-8);
        }
    }

    /// Parseval holds for arbitrary real signals.
    #[test]
    fn parseval_holds(values in prop::collection::vec(-10.0_f64..10.0, 256)) {
        let time: f64 = values.iter().map(|v| v * v).sum();
        let spec = tonos_dsp::fft::fft_real(&values).unwrap();
        let freq: f64 = spec.iter().map(|v| v.norm_sqr()).sum::<f64>() / 256.0;
        prop_assert!((time - freq).abs() <= 1e-9 * time.max(1.0));
    }

    /// Integer and float CIC agree exactly on integer streams.
    #[test]
    fn cic_integer_float_equivalence(
        bits in prop::collection::vec(prop::bool::ANY, 256),
        order in 1_usize..4,
        ratio in 2_usize..17,
    ) {
        let xs_i: Vec<i64> = bits.iter().map(|&b| if b { 1 } else { -1 }).collect();
        let xs_f: Vec<f64> = xs_i.iter().map(|&v| v as f64).collect();
        let mut ci = CicDecimator::new(order, ratio).unwrap();
        let mut cf = CicDecimatorF64::new(order, ratio).unwrap();
        let oi = ci.process(&xs_i);
        let of = cf.process(&xs_f);
        let gain = ci.gain() as f64;
        prop_assert_eq!(oi.len(), of.len());
        for (a, b) in oi.iter().zip(&of) {
            prop_assert!((*a as f64 / gain - b).abs() < 1e-9);
        }
    }

    /// The CIC is linear: cic(a·x + b·y) = a·cic(x) + b·cic(y).
    #[test]
    fn cic_is_linear(
        xs in prop::collection::vec(-5_i64..=5, 128),
        ys in prop::collection::vec(-5_i64..=5, 128),
        a in 1_i64..4,
        b in 1_i64..4,
    ) {
        let combined: Vec<i64> = xs.iter().zip(&ys).map(|(x, y)| a * x + b * y).collect();
        let mut c1 = CicDecimator::new(3, 8).unwrap();
        let mut c2 = CicDecimator::new(3, 8).unwrap();
        let mut c3 = CicDecimator::new(3, 8).unwrap();
        let ox = c1.process(&xs);
        let oy = c2.process(&ys);
        let oc = c3.process(&combined);
        for ((x, y), c) in ox.iter().zip(&oy).zip(&oc) {
            prop_assert_eq!(a * x + b * y, *c);
        }
    }

    /// Windowed-sinc designs are always linear-phase (symmetric) with
    /// unity DC gain, for any tap count and cutoff.
    #[test]
    fn fir_designs_are_linear_phase(taps in 4_usize..96, cutoff in 0.01_f64..0.49) {
        let h = design_lowpass(taps, cutoff, Window::Hamming).unwrap();
        prop_assert!((h.iter().sum::<f64>() - 1.0).abs() < 1e-10);
        for i in 0..taps / 2 {
            prop_assert!((h[i] - h[taps - 1 - i]).abs() < 1e-12, "tap {i}");
        }
        prop_assert!((magnitude_at(&h, 0.0) - 1.0).abs() < 1e-9);
    }

    /// Decimating by R keeps exactly every R-th full-rate output.
    #[test]
    fn fir_decimation_is_subsampling(
        input in prop::collection::vec(-1.0_f64..1.0, 128),
        ratio in 1_usize..9,
    ) {
        let taps = design_lowpass(16, 0.2, Window::Hann).unwrap();
        let mut full = FirDecimator::new(taps.clone(), 1).unwrap();
        let mut deci = FirDecimator::new(taps, ratio).unwrap();
        let all = full.process(&input);
        let some = deci.process(&input);
        for (j, &v) in some.iter().enumerate() {
            prop_assert!((v - all[ratio * (j + 1) - 1]).abs() < 1e-12);
        }
    }

    /// Output quantization error is bounded by half an LSB inside range;
    /// the mid-tread top code sits one LSB below +FS, so values above
    /// `1 − LSB` may saturate with up to one LSB of error.
    #[test]
    fn quantizer_error_is_bounded(x in -1.0_f64..0.999, bits in 4_u32..16) {
        let q = OutputQuantizer::new(bits).unwrap();
        let err = (q.round_trip(x) - x).abs();
        let bound = if x <= 1.0 - q.lsb() { q.lsb() / 2.0 } else { q.lsb() };
        prop_assert!(err <= bound + 1e-12, "error {err} vs bound {bound}");
    }

    /// Fixed-point round trips are within half an LSB and saturate
    /// cleanly outside the range.
    #[test]
    fn fixed_point_round_trip(x in -4.0_f64..4.0, frac in 4_u32..20) {
        let fmt = QFormat::new(frac + 4, frac).unwrap();
        let f = Fixed::from_f64(x, fmt);
        if x >= fmt.min_value() && x <= fmt.max_value() {
            prop_assert!((f.to_f64() - x).abs() <= fmt.lsb() / 2.0 + 1e-12);
        } else {
            prop_assert!(f.raw() == fmt.max_raw() || f.raw() == fmt.min_raw());
        }
    }

    /// The paper decimator is time-invariant for DC: any DC level within
    /// range settles to itself (within the CIC input quantization).
    #[test]
    fn decimator_settles_to_dc(level in -0.95_f64..0.95) {
        let mut d = DecimatorConfig {
            output_bits: None,
            ..DecimatorConfig::paper_default()
        }
        .build()
        .unwrap();
        let out = d.process(&vec![level; 128 * 40]);
        let last = *out.last().unwrap();
        prop_assert!((last - level).abs() < 1e-6, "settled to {last} for {level}");
    }

    /// The bit-exact FPGA datapath agrees with the behavioral f64 chain
    /// within 1.5 output LSB for arbitrary bitstreams.
    #[test]
    fn fpga_agrees_with_behavioral_chain(bits in prop::collection::vec(prop::bool::ANY, 128 * 40)) {
        let stream: Vec<i8> = bits.iter().map(|&b| if b { 1 } else { -1 }).collect();
        let mut hw = FixedPointDecimator::paper_default();
        let mut sw = DecimatorConfig::paper_default().build().unwrap();
        let hw_codes: Vec<i32> = stream.iter().filter_map(|&b| hw.push(b)).collect();
        let sw_out: Vec<f64> = stream
            .iter()
            .filter_map(|&b| sw.push(f64::from(b)))
            .collect();
        prop_assert_eq!(hw_codes.len(), sw_out.len());
        for (c, s) in hw_codes.iter().zip(&sw_out) {
            let hw_v = hw.dequantize(*c);
            prop_assert!((hw_v - s).abs() <= 1.5 / 2048.0, "{hw_v} vs {s}");
        }
    }

    /// CIC magnitude formula stays within [0, 1] and hits its nulls.
    #[test]
    fn cic_magnitude_bounds(order in 1_usize..5, ratio in 2_usize..64, f in 0.0_f64..0.5) {
        let cic = CicDecimatorF64::new(order, ratio).unwrap();
        let m = cic.magnitude_at(f);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&m), "|H({f})| = {m}");
        // Null at k/R for k = 1..R/2.
        let null = cic.magnitude_at(1.0 / ratio as f64);
        prop_assert!(null < 1e-9, "null leakage {null}");
    }

    /// Coherent-frequency snapping always yields an odd in-band bin.
    #[test]
    fn coherent_bins_are_odd_and_in_band(
        target in 0.0_f64..10_000.0,
        n_pow in 6_u32..14,
    ) {
        let n = 1_usize << n_pow;
        let fs = 1000.0;
        let f = Window::coherent_frequency(fs, n, target);
        let bin = f * n as f64 / fs;
        prop_assert!((bin - bin.round()).abs() < 1e-9);
        prop_assert_eq!(bin.round() as i64 % 2, 1);
        prop_assert!(f > 0.0 && f < fs / 2.0);
    }

    /// PackedBits is a lossless container: pack → unpack is the identity
    /// for arbitrary bit sequences, across word boundaries.
    #[test]
    fn packed_bits_round_trip(bools in prop::collection::vec(prop::bool::ANY, 0..300)) {
        let packed: PackedBits = bools.iter().copied().collect();
        prop_assert_eq!(packed.len(), bools.len());
        let back: Vec<bool> = packed.iter().collect();
        prop_assert_eq!(&back, &bools);
        let ones = bools.iter().filter(|&&b| b).count() as u64;
        prop_assert_eq!(packed.ones(), ones);
    }

    /// The word-parallel CIC kernel is **bit-identical** to the scalar
    /// `CicDecimator::push` path for arbitrary bitstreams, scales, and
    /// word-unaligned lengths (the `128·n + r` frame-tail case included
    /// via the length strategy), leaving identical filter state behind.
    #[test]
    fn word_parallel_cic_matches_scalar_push(
        n_frames in 0_usize..4,
        tail in 0_usize..128,
        order in 1_usize..5,
        ratio in 2_usize..65,
        scale_sel in 0_usize..3,
        seed in 0_u64..u64::MAX,
    ) {
        let len = 128 * n_frames + tail;
        // Cheap deterministic bit soup from the seed.
        let bools: Vec<bool> = (0..len)
            .map(|i| (seed.wrapping_mul(i as u64 * 2 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40) & 1 == 1)
            .collect();
        let scale = [1_i64, 1 << 20, i64::MAX / 5][scale_sel];
        let packed: PackedBits = bools.iter().copied().collect();
        let mut scalar = CicDecimator::new(order, ratio).unwrap();
        let mut word = CicDecimator::new(order, ratio).unwrap();
        let expect: Vec<i64> = bools
            .iter()
            .filter_map(|&b| scalar.push(if b { scale } else { -scale }))
            .collect();
        let mut got = Vec::new();
        word.process_packed_into(&packed, scale, &mut got);
        prop_assert_eq!(got, expect);
        // Not just the emitted outputs: the full internal state matches,
        // so the two feeding styles stay interchangeable mid-stream.
        prop_assert_eq!(&word, &scalar);
        // And reset() restores the kernel to the pristine state.
        let fresh = CicDecimator::new(order, ratio).unwrap();
        word.reset();
        prop_assert_eq!(&word, &fresh);
    }

    /// Packed-bit decimation is **bit-identical** to the ±1.0 `f64`
    /// path through the full two-stage chain — the property that lets
    /// the readout hot path switch representations with zero behavioral
    /// change. Checked across OSR variants and with/without the output
    /// quantizer.
    #[test]
    fn packed_decimation_is_bit_identical_to_f64(
        bools in prop::collection::vec(prop::bool::ANY, 0..2048),
        osr_sel in 0_usize..3,
        quantized in prop::bool::ANY,
    ) {
        let osr = [8, 32, 128][osr_sel];
        let cfg = DecimatorConfig {
            osr,
            cutoff_hz: (128_000.0 / osr as f64) / 2.2,
            output_bits: if quantized { Some(12) } else { None },
            ..DecimatorConfig::paper_default()
        };
        let mut d_packed = cfg.build().unwrap();
        let mut d_float = cfg.build().unwrap();
        let packed: PackedBits = bools.iter().copied().collect();
        let floats: Vec<f64> = bools.iter().map(|&b| if b { 1.0 } else { -1.0 }).collect();
        let a = d_packed.process_packed(&packed);
        let b = d_float.process(&floats);
        // assert_eq on f64: identical bits, not approximately equal.
        prop_assert_eq!(a, b);
        prop_assert_eq!(d_packed.samples_in(), d_float.samples_in());
        prop_assert_eq!(d_packed.samples_out(), d_float.samples_out());
    }
}

proptest! {
    /// The folded (16-multiply) linear-phase inner product agrees with
    /// the direct 32-multiply form to a forward-error bound of a few
    /// ulps of the term-magnitude sum `Σ|h·x|` — the natural yardstick
    /// for a reassociated dot product (measured worst case ≈ 2.8 ε; the
    /// asserted slack is 8 ε). Exact equality cannot hold in general
    /// because folding changes the association of the sum.
    #[test]
    fn folded_fir_matches_direct_form(
        size_idx in 0usize..6,
        cutoff in 0.05_f64..0.45,
        xs in prop::collection::vec(-2.0_f64..2.0, 64..256),
    ) {
        // Even, odd, and the paper's 32-tap size.
        let ntaps = [8usize, 16, 31, 32, 33, 48][size_idx];
        let taps = design_lowpass(ntaps, cutoff, Window::Hamming).unwrap();
        // design_lowpass must give *exactly* symmetric taps, or the
        // decimator won't take the folded path at all.
        for i in 0..ntaps / 2 {
            prop_assert_eq!(taps[i].to_bits(), taps[ntaps - 1 - i].to_bits(), "tap {}", i);
        }
        let mut fir = FirDecimator::new(taps.clone(), 1).unwrap();
        let mut hist = vec![0.0_f64; ntaps];
        for &x in &xs {
            hist.rotate_right(1);
            hist[0] = x;
            let direct: f64 = taps.iter().zip(hist.iter()).map(|(&h, &s)| h * s).sum();
            let mag: f64 = taps.iter().zip(hist.iter()).map(|(&h, &s)| (h * s).abs()).sum();
            let got = fir.push(x).unwrap();
            let bound = 8.0 * f64::EPSILON * mag + f64::MIN_POSITIVE;
            prop_assert!(
                (got - direct).abs() <= bound,
                "folded {} vs direct {} (bound {})",
                got,
                direct,
                bound
            );
        }
    }

    /// Asymmetric taps fall back to the unfolded path and reproduce the
    /// plain convolution exactly (same operand order, no reassociation).
    #[test]
    fn asymmetric_fir_is_exactly_the_direct_form(
        taps in prop::collection::vec(-1.0_f64..1.0, 3..24),
        xs in prop::collection::vec(-2.0_f64..2.0, 32..128),
    ) {
        let asymmetric = taps
            .iter()
            .zip(taps.iter().rev())
            .any(|(a, b)| a.to_bits() != b.to_bits());
        prop_assume!(asymmetric);
        let n = taps.len();
        let mut fir = FirDecimator::new(taps.clone(), 1).unwrap();
        let mut hist = vec![0.0_f64; n];
        for &x in &xs {
            hist.rotate_right(1);
            hist[0] = x;
            let direct: f64 = taps.iter().zip(hist.iter()).map(|(&h, &s)| h * s).sum();
            prop_assert_eq!(fir.push(x).unwrap(), direct);
        }
    }
}

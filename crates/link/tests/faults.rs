//! The no-silent-corruption property, under a thousand-plus randomly
//! seeded lossy transports.
//!
//! For every fault cocktail the transport can brew — bit flips, chunk
//! drops, truncation, duplication, reordering, stalls — the pipeline
//! must never emit a wrong value labelled clean. Samples are either
//! bit-identical to the lossless reference at the same device-clock
//! index, or flagged (`Concealed`/`Invalid`) and accounted for in the
//! stream's health counters.

use proptest::prelude::*;
use tonos_dsp::bits::PackedBits;
use tonos_dsp::decimator::DecimatorConfig;
use tonos_link::{
    FaultConfig, FaultyTransport, FrameEncoder, GapPolicy, HostPipeline, HostSample,
    LinkCalibration, SampleFlag,
};
use tonos_telemetry::{names, Registry};

/// Deterministic pseudo-random bit at position `i` of stream `seed`.
fn bit(seed: u64, i: u64) -> bool {
    let mut z = seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z & 1 == 1
}

const FRAMES: usize = 48;
const BITS_PER_FRAME: usize = 128;

/// Lossless reference: the decimated stream with no transport at all.
fn reference(seed: u64) -> Vec<f64> {
    let mut dec = DecimatorConfig::paper_default().build().unwrap();
    let mut out = Vec::new();
    for f in 0..FRAMES as u64 {
        let chunk: PackedBits = (0..BITS_PER_FRAME as u64)
            .map(|k| bit(seed, f * BITS_PER_FRAME as u64 + k))
            .collect();
        dec.process_packed_into(&chunk, &mut out);
    }
    out
}

/// Runs one seeded lossy session; returns the pipeline and its output.
fn lossy_session(
    seed: u64,
    faults: FaultConfig,
    policy: GapPolicy,
) -> (HostPipeline, Vec<HostSample>) {
    let mut enc = FrameEncoder::new(0);
    let mut transport = FaultyTransport::new(faults, seed);
    let mut pipe = HostPipeline::new(
        &DecimatorConfig::paper_default(),
        LinkCalibration::identity(),
        policy,
    )
    .unwrap();
    let mut out = Vec::new();
    for f in 0..FRAMES as u64 {
        let chunk: PackedBits = (0..BITS_PER_FRAME as u64)
            .map(|k| bit(seed, f * BITS_PER_FRAME as u64 + k))
            .collect();
        let packet = enc.encode(&chunk).unwrap();
        let delivered = transport.transmit(&packet);
        pipe.push_bytes(&delivered, &mut out);
    }
    let tail = transport.flush();
    pipe.push_bytes(&tail, &mut out);
    (pipe, out)
}

/// The invariant itself, checked for one session.
fn assert_no_silent_corruption(seed: u64, reference: &[f64], samples: &[HostSample]) {
    // Indices are gapless and start at the device's clock zero.
    for (i, s) in samples.iter().enumerate() {
        assert_eq!(s.index, i as u64, "seed {seed:#x}: index hole at {i}");
    }
    assert!(
        samples.len() <= reference.len(),
        "seed {seed:#x}: more samples than the device produced"
    );
    for s in samples {
        match s.flag {
            SampleFlag::Clean => {
                let expect = reference[s.index as usize];
                assert_eq!(
                    s.value_mmhg.to_bits(),
                    expect.to_bits(),
                    "seed {seed:#x}: clean sample {} is {} but the device produced {}",
                    s.index,
                    s.value_mmhg,
                    expect
                );
            }
            SampleFlag::Concealed => assert!(s.value_mmhg.is_finite()),
            SampleFlag::Invalid => assert!(s.value_mmhg.is_nan()),
        }
    }
}

proptest! {
    // 1024 randomly seeded corruption sessions, plus the explicit
    // fault-class sweeps below: well past the thousand-case bar.
    #![proptest_config(ProptestConfig::with_cases(1024))]

    /// Random fault cocktails never produce a wrong clean sample.
    #[test]
    fn no_silent_corruption_under_random_faults(
        seed in any::<u64>(),
        flips in 0.0_f64..0.003,
        drops in 0.0_f64..0.15,
        trunc in 0.0_f64..0.08,
        dup in 0.0_f64..0.08,
        reorder in 0.0_f64..0.08,
        stall in 0.0_f64..0.10,
        hold in prop::bool::ANY,
    ) {
        let faults = FaultConfig {
            bit_flip_per_byte: flips,
            drop_chunk: drops,
            truncate_chunk: trunc,
            duplicate_chunk: dup,
            reorder_chunk: reorder,
            stall_chunk: stall,
        };
        let policy = if hold { GapPolicy::HoldLast } else { GapPolicy::MarkInvalid };
        let reference = reference(seed);
        let (pipe, samples) = lossy_session(seed, faults, policy);
        assert_no_silent_corruption(seed, &reference, &samples);

        // Accounting: the health counters add up to what was emitted,
        // and a session that lost anything says so somewhere.
        let health = pipe.health();
        prop_assert_eq!(health.samples(), samples.len() as u64);
        let flagged = samples.iter().filter(|s| s.flag != SampleFlag::Clean).count();
        prop_assert_eq!(health.concealed_samples + health.invalid_samples, flagged as u64);
        if samples.len() == reference.len() && flagged == 0 {
            // Nothing concealed and full length: the stream must be
            // perfect *and* the decoder must agree nothing went wrong
            // mid-stream (trailing losses are legitimately invisible).
            prop_assert_eq!(health.decoder.gap_events, 0);
        }
    }
}

/// Each fault class in isolation, across many seeds — so a regression
/// in one class cannot hide inside the cocktail distribution.
#[test]
fn every_fault_class_alone_is_survivable() {
    let classes: [(&str, FaultConfig); 6] = [
        (
            "flips",
            FaultConfig {
                bit_flip_per_byte: 0.002,
                ..FaultConfig::clean()
            },
        ),
        (
            "drops",
            FaultConfig {
                drop_chunk: 0.2,
                ..FaultConfig::clean()
            },
        ),
        (
            "trunc",
            FaultConfig {
                truncate_chunk: 0.2,
                ..FaultConfig::clean()
            },
        ),
        (
            "dup",
            FaultConfig {
                duplicate_chunk: 0.3,
                ..FaultConfig::clean()
            },
        ),
        (
            "reorder",
            FaultConfig {
                reorder_chunk: 0.3,
                ..FaultConfig::clean()
            },
        ),
        (
            "stall",
            FaultConfig {
                stall_chunk: 0.4,
                ..FaultConfig::clean()
            },
        ),
    ];
    for (name, faults) in classes {
        for seed in 0..24u64 {
            let reference = reference(seed);
            let (_, samples) = lossy_session(seed, faults, GapPolicy::HoldLast);
            assert!(
                !samples.is_empty() || faults.drop_chunk > 0.0,
                "{name}/{seed}"
            );
            assert_no_silent_corruption(seed, &reference, &samples);
        }
    }
}

/// The telemetry view of a lossy session matches the decoder's own
/// statistics — operators see the same truth the tests assert on.
#[test]
fn telemetry_counters_match_decoder_statistics() {
    let registry = Registry::new();
    let seed = 0xBAD_CAB1E;
    let mut enc = FrameEncoder::new(0).with_telemetry(&registry.telemetry());
    let mut transport = FaultyTransport::new(FaultConfig::noisy(), seed);
    let mut pipe = HostPipeline::new(
        &DecimatorConfig::paper_default(),
        LinkCalibration::identity(),
        GapPolicy::HoldLast,
    )
    .unwrap()
    .with_telemetry(&registry.telemetry());

    let mut out = Vec::new();
    for f in 0..200u64 {
        let chunk: PackedBits = (0..128u64).map(|k| bit(seed, f * 128 + k)).collect();
        let packet = enc.encode(&chunk).unwrap();
        let delivered = transport.transmit(&packet);
        pipe.push_bytes(&delivered, &mut out);
    }
    pipe.push_bytes(&transport.flush(), &mut out);

    let stats = pipe.health();
    let snapshot = registry.snapshot();
    let counter = |name: &str| -> u64 {
        snapshot
            .counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value)
    };
    assert_eq!(counter(names::LINK_FRAMES_TX), 200);
    assert_eq!(counter(names::LINK_FRAMES_RX), stats.decoder.frames);
    assert_eq!(counter(names::LINK_CRC_FAIL), stats.decoder.crc_failures);
    assert_eq!(counter(names::LINK_RESYNCS), stats.decoder.resyncs);
    assert_eq!(counter(names::LINK_GAP_EVENTS), stats.decoder.gap_events);
    assert_eq!(counter(names::LINK_GAP_FRAMES), stats.decoder.lost_frames);
    assert_eq!(
        counter(names::LINK_STALE_FRAMES),
        stats.decoder.stale_frames
    );
    assert_eq!(counter(names::LINK_SAMPLES_CLEAN), stats.clean_samples);
    assert_eq!(counter(names::LINK_GAPS_CONCEALED), stats.concealed_samples);
    assert_eq!(counter(names::LINK_SAMPLES_INVALID), stats.invalid_samples);
    // The transport really did damage this stream.
    assert!(stats.decoder.gap_events > 0);
    assert!(stats.decoder.crc_failures > 0);
}

//! Loopback ingest at scale: eight concurrent device sessions over real
//! TCP sockets, each matching the in-process signal path exactly on a
//! fault-free transport — plus live `/links`-style queries mid-ingest
//! on a faulty one.

use std::io::Write;
use std::net::TcpStream;
use std::sync::mpsc;
use std::thread;
use std::time::Duration;

use tonos_core::config::SystemConfig;
use tonos_core::stream::AlarmLimits;
use tonos_link::{
    DeviceSimulator, FaultConfig, FaultyTransport, FrameEncoder, GapPolicy, HostPipeline,
    LinkCalibration, LinkServer, LinkServerConfig, LinkStatus,
};
use tonos_physio::patient::PatientProfile;
use tonos_telemetry::names;

const SESSIONS: usize = 8;
const DURATION_S: f64 = 1.0;

/// What one session should look like when the link is invisible:
/// computed by running the identical device stream straight into an
/// in-process [`HostPipeline`].
struct Expected {
    samples: u64,
    beats: u64,
    alarms: u64,
}

fn patient_for(i: usize) -> PatientProfile {
    let base = match i % 3 {
        0 => PatientProfile::normotensive(),
        1 => PatientProfile::hypertensive(),
        _ => PatientProfile::hypotensive(),
    };
    base.with_seed(0xC0FFEE + i as u64)
}

fn expected_for(config: &SystemConfig, patient: &PatientProfile) -> Expected {
    let mut device = DeviceSimulator::new(config, patient, DURATION_S).unwrap();
    let mut pipe = HostPipeline::new(
        &config.decimator,
        LinkCalibration::identity(),
        GapPolicy::HoldLast,
    )
    .unwrap()
    .with_analyzer(AlarmLimits::adult())
    .unwrap();
    let mut out = Vec::new();
    while let Some(packet) = device.next_packet().unwrap() {
        pipe.push_bytes(&packet, &mut out);
    }
    let health = pipe.health();
    Expected {
        samples: health.samples(),
        beats: health.beats,
        alarms: health.alarms,
    }
}

#[test]
fn eight_concurrent_sessions_match_the_in_process_path() {
    let config = SystemConfig::paper_default();
    let server = LinkServer::bind(
        "127.0.0.1:0",
        LinkServerConfig {
            workers: 4,
            decimator: config.decimator,
            ..LinkServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    // Eight devices stream concurrently, each its own patient.
    let clients: Vec<_> = (0..SESSIONS)
        .map(|i| {
            thread::spawn(move || {
                let mut device =
                    DeviceSimulator::new(&config, &patient_for(i), DURATION_S).unwrap();
                let mut stream = TcpStream::connect(addr).unwrap();
                let mut frames = 0u64;
                while let Some(packet) = device.next_packet().unwrap() {
                    stream.write_all(&packet).unwrap();
                    frames += 1;
                }
                stream.flush().unwrap();
                frames
            })
        })
        .collect();
    let frames_sent: u64 = clients.into_iter().map(|c| c.join().unwrap()).sum();

    // All eight connections must have been accepted before we stop.
    let mut waited = 0;
    while server.connections() < SESSIONS && waited < 5_000 {
        thread::sleep(Duration::from_millis(10));
        waited += 10;
    }
    assert_eq!(server.connections(), SESSIONS, "not all sessions accepted");
    // Let the readers drain the already-closed sockets to EOF.
    thread::sleep(Duration::from_millis(300));

    let (report, snapshot) = server.shutdown();
    assert_eq!(report.len(), SESSIONS);
    assert!(
        report.failures().is_empty(),
        "sessions failed: {:?}",
        report.failures()
    );

    // Every session matches the in-process path — same sample count,
    // same beats, same alarms, on a fault-free wire. Sessions complete
    // in accept order, not client order, so compare as multisets.
    let mut expected: Vec<(u64, u64, u64)> = (0..SESSIONS)
        .map(|i| {
            let e = expected_for(&config, &patient_for(i));
            (e.samples, e.beats, e.alarms)
        })
        .collect();
    let mut actual: Vec<(u64, u64, u64)> = report
        .completed()
        .map(|(_, s)| (s.samples as u64, s.beats as u64, s.alarms as u64))
        .collect();
    expected.sort_unstable();
    actual.sort_unstable();
    assert_eq!(actual, expected, "wire sessions diverged from in-process");

    // The rolled-up telemetry saw every frame and no corruption.
    let counter = |name: &str| -> u64 {
        snapshot
            .counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value)
    };
    assert_eq!(counter(names::LINK_CONNECTIONS), SESSIONS as u64);
    assert_eq!(counter(names::LINK_FRAMES_RX), frames_sent);
    assert_eq!(counter(names::LINK_CRC_FAIL), 0);
    assert_eq!(counter(names::LINK_GAP_EVENTS), 0);
    assert_eq!(counter(names::LINK_SLOW_CONSUMER_DISCONNECTS), 0);
}

#[test]
fn more_live_connections_than_workers_are_not_evicted() {
    // Four devices stream simultaneously into a server seeded with a
    // single fleet worker and a tiny 2-chunk queue. Each session
    // occupies its worker for its whole lifetime, so without on-demand
    // pool growth three of the four ingest tasks would never run: their
    // queues fill, and the readers evict perfectly healthy devices as
    // "slow consumers" once the grace window expires.
    const CONNS: usize = 4;
    const FRAMES: u64 = 200;
    let server = LinkServer::bind(
        "127.0.0.1:0",
        LinkServerConfig {
            workers: 1,
            queue_chunks: 2,
            slow_consumer_grace_ms: 100,
            ..LinkServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let clients: Vec<_> = (0..CONNS)
        .map(|i| {
            thread::spawn(move || -> u64 {
                let bits: tonos_dsp::bits::PackedBits = (0..2048).map(|j| j % 3 == 0).collect();
                let mut enc = FrameEncoder::new(i as u16);
                let mut wire = Vec::new();
                if i == 0 {
                    // The holder: one frame, then an open, idle
                    // connection — its ingest task occupies the lone
                    // worker for this entire span.
                    let mut stream = TcpStream::connect(addr).unwrap();
                    enc.encode_into(&bits, &mut wire).unwrap();
                    stream.write_all(&wire).unwrap();
                    thread::sleep(Duration::from_millis(800));
                    1
                } else {
                    // The blasters: connect once the holder owns the
                    // worker, then send several times the queue
                    // capacity in one burst.
                    thread::sleep(Duration::from_millis(200));
                    let mut stream = TcpStream::connect(addr).unwrap();
                    for _ in 0..FRAMES {
                        enc.encode_into(&bits, &mut wire).unwrap();
                    }
                    // ~56 KiB against a 2 × 8 KiB chunk queue.
                    stream.write_all(&wire).unwrap();
                    stream.flush().unwrap();
                    FRAMES
                }
            })
        })
        .collect();
    let frames_sent: u64 = clients.into_iter().map(|c| c.join().unwrap()).sum();
    // Let the readers drain the closed sockets to EOF.
    let mut waited = 0;
    while server.connections() < CONNS && waited < 5_000 {
        thread::sleep(Duration::from_millis(10));
        waited += 10;
    }
    thread::sleep(Duration::from_millis(300));

    let (report, snapshot) = server.shutdown();
    assert_eq!(report.len(), CONNS);
    assert!(
        report.failures().is_empty(),
        "sessions failed: {:?}",
        report.failures()
    );
    let counter = |name: &str| -> u64 {
        snapshot
            .counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value)
    };
    assert_eq!(
        counter(names::LINK_SLOW_CONSUMER_DISCONNECTS),
        0,
        "healthy devices were evicted for lack of a worker"
    );
    assert_eq!(counter(names::LINK_FRAMES_RX), frames_sent);
    assert_eq!(counter(names::LINK_GAP_EVENTS), 0);
}

#[test]
fn authenticated_session_with_control_writeback_over_tcp() {
    // The wire is bidirectional through the real server: the device's
    // hello rides ahead of its data, the server's ack comes back on the
    // same socket, and with `require_auth` the session still ingests
    // everything — proving the gate opens before the first data frame
    // is dropped.
    use std::io::Read;
    let config = SystemConfig::paper_default();
    let key = tonos_link::LinkKey::from_bytes(*b"ward-shared-key!");
    let server = LinkServer::bind(
        "127.0.0.1:0",
        LinkServerConfig {
            workers: 2,
            decimator: config.decimator,
            auth_key: Some(key),
            require_auth: true,
            ..LinkServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let patient = PatientProfile::normotensive();
    let expected = expected_for(&config, &patient);
    let mut device = DeviceSimulator::new(&config, &patient, DURATION_S)
        .unwrap()
        .with_auth(key, 42, 7);
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_millis(20)))
        .unwrap();
    let mut buf = [0u8; 4096];
    let mut retx = Vec::new();
    while let Some(packet) = device.next_packet().unwrap() {
        stream.write_all(&packet).unwrap();
        // Pick up any acks the server has written back so far.
        if let Ok(n) = stream.read(&mut buf) {
            device.handle_host_bytes(&buf[..n], &mut retx);
        }
    }
    stream.flush().unwrap();
    // Drain the control channel until the ack lands.
    for _ in 0..250 {
        if device.hello_acked().is_some() {
            break;
        }
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                device.handle_host_bytes(&buf[..n], &mut retx);
            }
            Err(_) => {}
        }
    }
    assert_eq!(device.hello_acked(), Some(true), "hello never acked");
    assert!(retx.is_empty(), "clean TCP must not trigger retransmits");
    drop(stream);

    thread::sleep(Duration::from_millis(200));
    let (report, snapshot) = server.shutdown();
    assert_eq!(report.len(), 1);
    assert!(report.failures().is_empty());
    let summary = report.completed().next().unwrap().1;
    assert_eq!(summary.samples as u64, expected.samples);
    let counter = |name: &str| -> u64 {
        snapshot
            .counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value)
    };
    assert_eq!(counter(names::LINK_HANDSHAKES_OK), 1);
    assert_eq!(counter(names::LINK_HANDSHAKES_REJECTED), 0);
    assert_eq!(counter(names::LINK_UNAUTH_FRAMES), 0);
}

/// Polls `server.links()` until `pred` holds for every entry, panicking
/// with the last observed state after ~10 s.
fn wait_links(
    server: &LinkServer,
    what: &str,
    pred: impl Fn(&LinkStatus) -> bool,
) -> Vec<LinkStatus> {
    let mut last = Vec::new();
    for _ in 0..1_000 {
        last = server.links();
        if !last.is_empty() && last.iter().all(&pred) {
            return last;
        }
        thread::sleep(Duration::from_millis(10));
    }
    panic!("timed out waiting for {what}; last directory state: {last:#?}");
}

#[test]
fn links_query_sees_counters_move_mid_ingest() {
    // Regression: the loopback tests above only assert *final* fleet
    // reports, which would pass even if live queries were broken. Here
    // eight devices stream over a faulty transport, pause mid-stream,
    // and the directory must show per-connection `stream_resets` /
    // `gap_skipped_samples` moving while every connection is still live.
    const DEVICES: usize = 8;
    const FRAME_BITS: usize = 1024;
    const PHASE1_FRAMES: u32 = 20;
    const PHASE2_FRAMES: u32 = 30;

    let server = LinkServer::bind(
        "127.0.0.1:0",
        LinkServerConfig {
            workers: 2, // fewer than DEVICES: exercises pool growth too
            ..LinkServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    // Each client is gated by a channel so the main thread controls
    // when the faulty phase starts and when the connection closes —
    // every query below is guaranteed to be truly mid-ingest.
    let mut gates = Vec::new();
    let clients: Vec<_> = (0..DEVICES)
        .map(|i| {
            let (tx, rx) = mpsc::channel::<()>();
            gates.push(tx);
            thread::spawn(move || {
                let bits: tonos_dsp::bits::PackedBits =
                    (0..FRAME_BITS).map(|i| i % 3 == 0).collect();
                let frame = |seq: u32, clock: u64| -> Vec<u8> {
                    tonos_dsp::frame::Frame::bitstream(0, seq, clock, &bits)
                        .unwrap()
                        .encode()
                };
                let mut stream = TcpStream::connect(addr).unwrap();
                // Phase 1: clean frames, contiguous clocks.
                let mut clock = 0u64;
                for seq in 0..PHASE1_FRAMES {
                    stream.write_all(&frame(seq, clock)).unwrap();
                    clock += FRAME_BITS as u64;
                }
                stream.flush().unwrap();
                rx.recv().unwrap();
                // Phase 2: a forged outage — sequence AND clock jump
                // far past the concealment clamp (a stream reset by
                // construction; gaps key on the seq jump, the clock
                // delta sizes them), then frames mangled by a lossy
                // transport.
                clock += 100_000_000;
                let seq_base = PHASE1_FRAMES + 1_000;
                let mut transport =
                    FaultyTransport::new(FaultConfig::noisy(), 0xBAD5EED + i as u64);
                for seq in seq_base..(seq_base + PHASE2_FRAMES) {
                    let wire = frame(seq, clock);
                    clock += FRAME_BITS as u64;
                    let mangled = if seq == seq_base {
                        wire // the reset frame itself arrives intact
                    } else {
                        transport.transmit(&wire)
                    };
                    stream.write_all(&mangled).unwrap();
                }
                stream.write_all(&transport.flush()).unwrap();
                stream.flush().unwrap();
                // Hold the connection open until the main thread has
                // seen the counters move on a *live* link.
                rx.recv().unwrap();
            })
        })
        .collect();

    // Phase 1 visible: every connection live, frames flowing, no resets.
    let baseline = wait_links(&server, "phase-1 frames on live links", |s| {
        s.live && s.health.decoder.frames >= PHASE1_FRAMES as u64
    });
    assert_eq!(baseline.len(), DEVICES);
    for s in &baseline {
        assert_eq!(s.health.stream_resets, 0, "premature reset: {s:?}");
        assert_eq!(s.health.skipped_samples, 0);
    }

    // Release phase 2 and watch the fault counters move mid-ingest.
    for gate in &gates {
        gate.send(()).unwrap();
    }
    let mid = wait_links(&server, "stream resets on live links", |s| {
        s.live && s.health.stream_resets >= 1 && s.health.skipped_samples > 0
    });
    for s in &mid {
        assert!(s.live, "connection closed before the query: {s:?}");
        assert!(s.health.stream_resets >= 1);
        assert!(s.health.skipped_samples > 0);
    }
    // The JSON view carries the same live counters.
    let json = server.directory().to_json();
    assert_eq!(json.matches("\"live\":true").count(), DEVICES);
    assert!(!json.contains("\"stream_resets\":0"));

    // Let the clients hang up; entries flip to closed but stay listed.
    for gate in &gates {
        gate.send(()).unwrap();
    }
    for client in clients {
        client.join().unwrap();
    }
    let closed = wait_links(&server, "entries marked closed", |s| !s.live);
    assert_eq!(closed.len(), DEVICES);

    let (report, snapshot) = server.shutdown();
    assert_eq!(report.len(), DEVICES);
    let resets = snapshot
        .counters
        .iter()
        .find(|c| c.name == names::LINK_STREAM_RESETS)
        .map_or(0, |c| c.value);
    assert!(
        resets >= DEVICES as u64,
        "rolled-up stream resets {resets} < {DEVICES}"
    );
}

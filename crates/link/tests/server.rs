//! Loopback ingest at scale: eight concurrent device sessions over real
//! TCP sockets, each matching the in-process signal path exactly on a
//! fault-free transport.

use std::io::Write;
use std::net::TcpStream;
use std::thread;
use std::time::Duration;

use tonos_core::config::SystemConfig;
use tonos_core::stream::AlarmLimits;
use tonos_link::{
    DeviceSimulator, FrameEncoder, GapPolicy, HostPipeline, LinkCalibration, LinkServer,
    LinkServerConfig,
};
use tonos_physio::patient::PatientProfile;
use tonos_telemetry::names;

const SESSIONS: usize = 8;
const DURATION_S: f64 = 1.0;

/// What one session should look like when the link is invisible:
/// computed by running the identical device stream straight into an
/// in-process [`HostPipeline`].
struct Expected {
    samples: u64,
    beats: u64,
    alarms: u64,
}

fn patient_for(i: usize) -> PatientProfile {
    let base = match i % 3 {
        0 => PatientProfile::normotensive(),
        1 => PatientProfile::hypertensive(),
        _ => PatientProfile::hypotensive(),
    };
    base.with_seed(0xC0FFEE + i as u64)
}

fn expected_for(config: &SystemConfig, patient: &PatientProfile) -> Expected {
    let mut device = DeviceSimulator::new(config, patient, DURATION_S).unwrap();
    let mut pipe = HostPipeline::new(
        &config.decimator,
        LinkCalibration::identity(),
        GapPolicy::HoldLast,
    )
    .unwrap()
    .with_analyzer(AlarmLimits::adult())
    .unwrap();
    let mut out = Vec::new();
    while let Some(packet) = device.next_packet().unwrap() {
        pipe.push_bytes(&packet, &mut out);
    }
    let health = pipe.health();
    Expected {
        samples: health.samples(),
        beats: health.beats,
        alarms: health.alarms,
    }
}

#[test]
fn eight_concurrent_sessions_match_the_in_process_path() {
    let config = SystemConfig::paper_default();
    let server = LinkServer::bind(
        "127.0.0.1:0",
        LinkServerConfig {
            workers: 4,
            decimator: config.decimator,
            ..LinkServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    // Eight devices stream concurrently, each its own patient.
    let clients: Vec<_> = (0..SESSIONS)
        .map(|i| {
            thread::spawn(move || {
                let mut device =
                    DeviceSimulator::new(&config, &patient_for(i), DURATION_S).unwrap();
                let mut stream = TcpStream::connect(addr).unwrap();
                let mut frames = 0u64;
                while let Some(packet) = device.next_packet().unwrap() {
                    stream.write_all(&packet).unwrap();
                    frames += 1;
                }
                stream.flush().unwrap();
                frames
            })
        })
        .collect();
    let frames_sent: u64 = clients.into_iter().map(|c| c.join().unwrap()).sum();

    // All eight connections must have been accepted before we stop.
    let mut waited = 0;
    while server.connections() < SESSIONS && waited < 5_000 {
        thread::sleep(Duration::from_millis(10));
        waited += 10;
    }
    assert_eq!(server.connections(), SESSIONS, "not all sessions accepted");
    // Let the readers drain the already-closed sockets to EOF.
    thread::sleep(Duration::from_millis(300));

    let (report, snapshot) = server.shutdown();
    assert_eq!(report.len(), SESSIONS);
    assert!(
        report.failures().is_empty(),
        "sessions failed: {:?}",
        report.failures()
    );

    // Every session matches the in-process path — same sample count,
    // same beats, same alarms, on a fault-free wire. Sessions complete
    // in accept order, not client order, so compare as multisets.
    let mut expected: Vec<(u64, u64, u64)> = (0..SESSIONS)
        .map(|i| {
            let e = expected_for(&config, &patient_for(i));
            (e.samples, e.beats, e.alarms)
        })
        .collect();
    let mut actual: Vec<(u64, u64, u64)> = report
        .completed()
        .map(|(_, s)| (s.samples as u64, s.beats as u64, s.alarms as u64))
        .collect();
    expected.sort_unstable();
    actual.sort_unstable();
    assert_eq!(actual, expected, "wire sessions diverged from in-process");

    // The rolled-up telemetry saw every frame and no corruption.
    let counter = |name: &str| -> u64 {
        snapshot
            .counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value)
    };
    assert_eq!(counter(names::LINK_CONNECTIONS), SESSIONS as u64);
    assert_eq!(counter(names::LINK_FRAMES_RX), frames_sent);
    assert_eq!(counter(names::LINK_CRC_FAIL), 0);
    assert_eq!(counter(names::LINK_GAP_EVENTS), 0);
    assert_eq!(counter(names::LINK_SLOW_CONSUMER_DISCONNECTS), 0);
}

#[test]
fn more_live_connections_than_workers_are_not_evicted() {
    // Four devices stream simultaneously into a server seeded with a
    // single fleet worker and a tiny 2-chunk queue. Each session
    // occupies its worker for its whole lifetime, so without on-demand
    // pool growth three of the four ingest tasks would never run: their
    // queues fill, and the readers evict perfectly healthy devices as
    // "slow consumers" once the grace window expires.
    const CONNS: usize = 4;
    const FRAMES: u64 = 200;
    let server = LinkServer::bind(
        "127.0.0.1:0",
        LinkServerConfig {
            workers: 1,
            queue_chunks: 2,
            slow_consumer_grace_ms: 100,
            ..LinkServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let clients: Vec<_> = (0..CONNS)
        .map(|i| {
            thread::spawn(move || -> u64 {
                let bits: tonos_dsp::bits::PackedBits = (0..2048).map(|j| j % 3 == 0).collect();
                let mut enc = FrameEncoder::new(i as u16);
                let mut wire = Vec::new();
                if i == 0 {
                    // The holder: one frame, then an open, idle
                    // connection — its ingest task occupies the lone
                    // worker for this entire span.
                    let mut stream = TcpStream::connect(addr).unwrap();
                    enc.encode_into(&bits, &mut wire).unwrap();
                    stream.write_all(&wire).unwrap();
                    thread::sleep(Duration::from_millis(800));
                    1
                } else {
                    // The blasters: connect once the holder owns the
                    // worker, then send several times the queue
                    // capacity in one burst.
                    thread::sleep(Duration::from_millis(200));
                    let mut stream = TcpStream::connect(addr).unwrap();
                    for _ in 0..FRAMES {
                        enc.encode_into(&bits, &mut wire).unwrap();
                    }
                    // ~56 KiB against a 2 × 8 KiB chunk queue.
                    stream.write_all(&wire).unwrap();
                    stream.flush().unwrap();
                    FRAMES
                }
            })
        })
        .collect();
    let frames_sent: u64 = clients.into_iter().map(|c| c.join().unwrap()).sum();
    // Let the readers drain the closed sockets to EOF.
    let mut waited = 0;
    while server.connections() < CONNS && waited < 5_000 {
        thread::sleep(Duration::from_millis(10));
        waited += 10;
    }
    thread::sleep(Duration::from_millis(300));

    let (report, snapshot) = server.shutdown();
    assert_eq!(report.len(), CONNS);
    assert!(
        report.failures().is_empty(),
        "sessions failed: {:?}",
        report.failures()
    );
    let counter = |name: &str| -> u64 {
        snapshot
            .counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value)
    };
    assert_eq!(
        counter(names::LINK_SLOW_CONSUMER_DISCONNECTS),
        0,
        "healthy devices were evicted for lack of a worker"
    );
    assert_eq!(counter(names::LINK_FRAMES_RX), frames_sent);
    assert_eq!(counter(names::LINK_GAP_EVENTS), 0);
}

//! Golden-transcript verification of `PROTOCOL.md`.
//!
//! The spec's §8 worked examples are normative: this test re-generates
//! each frame from the implementation and compares **byte-for-byte**
//! against the hex dumps in the document, then decodes the document's
//! own bytes and checks every field. Editing either side without the
//! other fails the build — the spec cannot drift from the code.

use std::collections::BTreeMap;

use tonos_dsp::bits::PackedBits;
use tonos_dsp::frame::{
    Frame, Hello, HelloAck, Nak, ParseOutcome, SeqRange, KIND_BITSTREAM, KIND_HELLO,
    KIND_HELLO_ACK, KIND_NAK, VERSION,
};
use tonos_link::LinkKey;

const PROTOCOL_MD: &str = include_str!("../../../PROTOCOL.md");

/// Extracts every ```text block starting with `# wire-example: <name>`
/// into name → bytes.
fn wire_examples() -> BTreeMap<String, Vec<u8>> {
    let mut examples = BTreeMap::new();
    let mut lines = PROTOCOL_MD.lines().peekable();
    while let Some(line) = lines.next() {
        if !line.trim_start().starts_with("```") {
            continue;
        }
        let Some(tag) = lines
            .peek()
            .and_then(|l| l.strip_prefix("# wire-example: "))
        else {
            // A fenced block that is not a wire example (diagrams,
            // layout tables); skip to its closing fence.
            for l in lines.by_ref() {
                if l.trim_start().starts_with("```") {
                    break;
                }
            }
            continue;
        };
        let name = tag.trim().to_string();
        lines.next();
        let mut bytes = Vec::new();
        for l in lines.by_ref() {
            if l.trim_start().starts_with("```") {
                break;
            }
            for tok in l.split_whitespace() {
                let b = u8::from_str_radix(tok, 16)
                    .unwrap_or_else(|_| panic!("bad hex token {tok:?} in example {name}"));
                bytes.push(b);
            }
        }
        assert!(
            examples.insert(name.clone(), bytes).is_none(),
            "duplicate wire example {name}"
        );
    }
    examples
}

/// Parses a documented frame, requiring an exact, complete frame.
fn parse(bytes: &[u8]) -> Frame {
    match Frame::parse(bytes) {
        ParseOutcome::Parsed { frame, consumed } => {
            assert_eq!(consumed, bytes.len(), "trailing bytes in example");
            frame
        }
        other => panic!("example failed to parse: {other:?}"),
    }
}

/// The doc's fixed handshake inputs (§8.2).
fn doc_key() -> LinkKey {
    LinkKey::from_bytes(*b"0123456789abcdef")
}
const DOC_DEVICE_ID: u64 = 0x1122_3344_5566_7788;
const DOC_NONCE: u64 = 0xA5A5_0001;

#[test]
fn all_four_examples_are_present() {
    let examples = wire_examples();
    let names: Vec<&str> = examples.keys().map(String::as_str).collect();
    assert_eq!(names, vec!["bitstream", "hello", "hello_ack", "nak"]);
}

#[test]
fn bitstream_example_matches_the_codec_bit_for_bit() {
    let doc = &wire_examples()["bitstream"];
    let bits: PackedBits = (0..16u32).map(|i| i % 3 == 0).collect();
    let frame = Frame::bitstream(3, 7, 896, &bits).unwrap();
    assert_eq!(&frame.encode(), doc, "PROTOCOL.md §8.1 drifted from code");

    let parsed = parse(doc);
    assert_eq!(parsed.kind, KIND_BITSTREAM);
    assert_eq!(parsed.element, 3);
    assert_eq!(parsed.seq, 7);
    assert_eq!(parsed.clock, 896);
    assert_eq!(parsed.payload_bits(), 16);
    assert_eq!(parsed.to_packed_bits(), bits);
    // The layout facts the prose states.
    assert_eq!(&doc[..4], &[0x5A, 0xDC, 0xB1, 0x7E]);
    assert_eq!(doc[4] >> 4, VERSION);
    assert_eq!(doc[4] & 0x0F, KIND_BITSTREAM);
}

#[test]
fn hello_example_matches_key_and_tag() {
    let doc = &wire_examples()["hello"];
    let hello = doc_key().hello(DOC_DEVICE_ID, DOC_NONCE);
    assert_eq!(
        hello.tag, 0x6f8f_01f3_fc0d_5648,
        "documented SipHash-2-4 tag drifted"
    );
    assert_eq!(
        &hello.to_frame().encode(),
        doc,
        "PROTOCOL.md §8.2 drifted from code"
    );

    let parsed = parse(doc);
    assert_eq!(parsed.kind, KIND_HELLO);
    assert_eq!((parsed.element, parsed.seq, parsed.clock), (0, 0, 0));
    let decoded = Hello::from_payload(parsed.payload_bytes()).unwrap();
    assert_eq!(decoded.device_id, DOC_DEVICE_ID);
    assert_eq!(decoded.nonce, DOC_NONCE);
    assert!(doc_key().verify(&decoded), "doc hello must verify");
    assert!(
        !LinkKey::from_bytes([0u8; 16]).verify(&decoded),
        "doc hello must not verify under a different key"
    );
}

#[test]
fn hello_ack_example_is_an_acceptance() {
    let doc = &wire_examples()["hello_ack"];
    let ack = Frame::bytes(KIND_HELLO_ACK, 0, 0, 0, vec![1]).unwrap();
    assert_eq!(&ack.encode(), doc, "PROTOCOL.md §8.3 drifted from code");

    let parsed = parse(doc);
    assert_eq!(parsed.kind, KIND_HELLO_ACK);
    let decoded = HelloAck::from_payload(parsed.payload_bytes()).unwrap();
    assert!(decoded.accepted);
}

#[test]
fn nak_example_requests_frames_7_and_8() {
    let doc = &wire_examples()["nak"];
    let nak = Nak {
        ranges: vec![SeqRange { first: 7, count: 2 }],
    };
    let frame = Frame::bytes(KIND_NAK, 0, 0, 0, nak.to_payload()).unwrap();
    assert_eq!(&frame.encode(), doc, "PROTOCOL.md §8.4 drifted from code");

    let parsed = parse(doc);
    assert_eq!(parsed.kind, KIND_NAK);
    let decoded = Nak::from_payload(parsed.payload_bytes()).unwrap();
    assert_eq!(decoded.ranges.len(), 1);
    assert_eq!(decoded.ranges[0].first, 7);
    assert_eq!(decoded.ranges[0].count, 2);
}

#[test]
fn examples_survive_the_streaming_decoder_interleaved() {
    // The §2 rule, end to end: control frames interleave anywhere in a
    // data stream without disturbing its sequencing.
    use tonos_link::{FrameDecoder, LinkEvent};
    let examples = wire_examples();
    let mut wire = Vec::new();
    wire.extend_from_slice(&examples["hello"]);
    // A seq-0 data frame so the bitstream example (seq 7) evidences a
    // documented §3 gap of exactly 7 frames.
    let bits: PackedBits = (0..16u32).map(|i| i % 3 == 0).collect();
    wire.extend_from_slice(&Frame::bitstream(3, 0, 0, &bits).unwrap().encode());
    wire.extend_from_slice(&examples["nak"]);
    wire.extend_from_slice(&examples["bitstream"]);
    wire.extend_from_slice(&examples["hello_ack"]);

    let mut dec = FrameDecoder::new();
    let mut events = Vec::new();
    dec.push(&wire, &mut events);
    let kinds: Vec<String> = events
        .iter()
        .map(|e| match e {
            LinkEvent::Frame(f) => format!("data:{}", f.seq),
            LinkEvent::Gap { lost_frames, .. } => format!("gap:{lost_frames}"),
            LinkEvent::Control(f) => format!("ctl:{}", f.kind),
        })
        .collect();
    assert_eq!(
        kinds,
        vec!["ctl:3", "data:0", "ctl:5", "gap:6", "data:7", "ctl:4"]
    );
    assert_eq!(dec.stats().control_frames, 3);
    assert_eq!(dec.stats().crc_failures, 0);
    assert_eq!(dec.stats().resyncs, 0);
}

//! The bidirectional wire: NAK-driven retransmit, reorder healing, and
//! the keyed-MAC handshake, exercised end to end.
//!
//! The tentpole invariant extends PR 5's "no silent corruption" to
//! recovery: a frame recovered by retransmit or healed by the reorder
//! window produces samples **bit-identical** to a lossless stream — the
//! host must not be able to tell, after the fact, that the wire ever
//! misbehaved within the recovery window.

use proptest::prelude::*;
use tonos_core::config::SystemConfig;
use tonos_link::{
    DeviceSimulator, FaultConfig, FaultyTransport, GapPolicy, HostPipeline, HostSample,
    LinkCalibration, LinkKey, SampleFlag,
};
use tonos_physio::patient::PatientProfile;
use tonos_telemetry::Registry;

const KEY: [u8; 16] = *b"tonos-test-key-0";

fn test_key() -> LinkKey {
    LinkKey::from_bytes(KEY)
}

/// The lossless reference: an identical device decoded by a clean
/// pipeline. `(config, patient, duration)` fully determines the
/// bitstream, so this is exactly what the lossy run must reproduce.
fn reference_samples(config: &SystemConfig, duration_s: f64) -> Vec<HostSample> {
    let patient = PatientProfile::normotensive();
    let mut device = DeviceSimulator::new(config, &patient, duration_s).unwrap();
    let mut pipe = HostPipeline::new(
        &config.decimator,
        LinkCalibration::identity(),
        GapPolicy::HoldLast,
    )
    .unwrap();
    let mut samples = Vec::new();
    while let Some(packet) = device.next_packet().unwrap() {
        pipe.push_bytes(&packet, &mut samples);
    }
    samples
}

/// Pumps one device through a lossy transport into an authenticated,
/// reorder-window pipeline, with the host→device control channel (acks
/// and NAKs) and the retransmit path delivered cleanly — the recovery
/// machinery under test, not re-mangled.
///
/// The first packet (carrying the hello) and the final packet bypass
/// the faults: the handshake precedes the lossy window, and a trailing
/// drop leaves no later frame to evidence it — NAK recovery is
/// explicitly a *within-window* guarantee.
fn pump_lossy(
    config: &SystemConfig,
    duration_s: f64,
    faults: FaultConfig,
    seed: u64,
) -> (
    Vec<HostSample>,
    tonos_link::LinkHealth,
    DeviceSimulator,
    u64,
) {
    let patient = PatientProfile::normotensive();
    let mut device = DeviceSimulator::new(config, &patient, duration_s)
        .unwrap()
        .with_retransmit_window(64)
        .with_auth(test_key(), 0xD0_0D, seed);
    let mut pipe = HostPipeline::new(
        &config.decimator,
        LinkCalibration::identity(),
        GapPolicy::HoldLast,
    )
    .unwrap()
    .with_reorder_window(64)
    .with_auth(test_key(), true);
    let mut transport = FaultyTransport::new(faults, seed);

    let mut samples = Vec::new();
    let mut ctl = Vec::new();
    let mut retx = Vec::new();
    let mut nak_rounds =
        |pipe: &mut HostPipeline, device: &mut DeviceSimulator, samples: &mut Vec<HostSample>| {
            for _ in 0..4 {
                ctl.clear();
                if !pipe.drain_control_into(&mut ctl) {
                    break;
                }
                retx.clear();
                device.handle_host_bytes(&ctl, &mut retx);
                if !retx.is_empty() {
                    pipe.push_bytes(&retx, samples);
                }
            }
        };

    // Deliver with one packet of lookahead so the final packet can skip
    // the transport; every in-between packet is fair game.
    let mut prev: Option<Vec<u8>> = None;
    let mut first = true;
    loop {
        let next = device.next_packet().unwrap();
        if let Some(packet) = prev.take() {
            let delivered = if first || next.is_none() {
                first = false;
                packet
            } else {
                transport.transmit(&packet)
            };
            if next.is_none() {
                // Anything stalled or held for reordering lands before
                // the final packet; the reorder window sorts it out.
                pipe.push_bytes(&transport.flush(), &mut samples);
            }
            pipe.push_bytes(&delivered, &mut samples);
            nak_rounds(&mut pipe, &mut device, &mut samples);
        }
        match next {
            Some(p) => prev = Some(p),
            None => break,
        }
    }
    // Let any still-outstanding NAKs settle.
    for _ in 0..8 {
        ctl.clear();
        if !pipe.drain_control_into(&mut ctl) {
            break;
        }
        retx.clear();
        device.handle_host_bytes(&ctl, &mut retx);
        if !retx.is_empty() {
            pipe.push_bytes(&retx, &mut samples);
        }
    }
    let dropped = transport.chunks_dropped();
    (samples, pipe.health(), device, dropped)
}

fn assert_bit_identical(wire: &[HostSample], reference: &[HostSample]) {
    assert_eq!(wire.len(), reference.len(), "sample counts differ");
    for (w, r) in wire.iter().zip(reference) {
        assert_eq!(w.index, r.index, "sample index diverged");
        assert_eq!(w.flag, SampleFlag::Clean, "non-clean sample at {}", w.index);
        assert!(
            w.value_mmhg == r.value_mmhg,
            "sample {} diverged: wire {} vs reference {}",
            w.index,
            w.value_mmhg,
            r.value_mmhg,
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The headline property: random drop, duplication, reordering,
    /// stalls, truncation, and bit flips — with retransmit enabled —
    /// conceal **zero** samples inside the recovery window, and every
    /// delivered sample is bit-identical to the lossless stream.
    #[test]
    fn lossy_wire_with_retransmit_is_bit_identical(seed in any::<u64>()) {
        let config = SystemConfig::paper_default();
        let faults = FaultConfig {
            bit_flip_per_byte: 1e-4,
            drop_chunk: 0.10,
            truncate_chunk: 0.05,
            duplicate_chunk: 0.10,
            reorder_chunk: 0.15,
            stall_chunk: 0.10,
        };
        let reference = reference_samples(&config, 0.4);
        let (wire, health, device, dropped) = pump_lossy(&config, 0.4, faults, seed);

        prop_assert_eq!(wire.len(), reference.len());
        for (w, r) in wire.iter().zip(&reference) {
            prop_assert_eq!(w.flag, SampleFlag::Clean);
            prop_assert_eq!(w.index, r.index);
            prop_assert!(w.value_mmhg == r.value_mmhg, "sample {} diverged", w.index);
        }
        prop_assert_eq!(health.concealed_samples, 0);
        prop_assert_eq!(health.invalid_samples, 0);
        prop_assert_eq!(health.skipped_samples, 0);
        prop_assert_eq!(health.stream_resets, 0);
        prop_assert_eq!(health.decoder.gap_events, 0);
        prop_assert!(health.handshakes_ok >= 1);
        prop_assert_eq!(health.unauth_frames, 0);
        prop_assert_eq!(device.hello_acked(), Some(true));
        // If the transport actually dropped chunks, recovery must have
        // gone through the NAK path, not around it.
        if dropped > 0 {
            prop_assert!(health.naks_tx >= 1);
            prop_assert!(health.decoder.retransmits_rx >= 1);
        }
    }
}

/// One dropped packet, recovered by a single NAK round: no gap, no
/// concealment, bit-identical output.
#[test]
fn single_dropped_packet_recovers_bit_identically() {
    let config = SystemConfig::paper_default();
    let reference = reference_samples(&config, 0.5);
    let (wire, health, device, _) = pump_lossy(
        &config,
        0.5,
        FaultConfig {
            drop_chunk: 0.08,
            ..FaultConfig::clean()
        },
        7,
    );
    assert_bit_identical(&wire, &reference);
    assert_eq!(health.decoder.gap_events, 0);
    assert_eq!(health.concealed_samples, 0);
    assert!(health.naks_tx >= 1, "drop must trigger a NAK");
    assert!(health.decoder.retransmits_rx >= 1);
    assert_eq!(device.hello_acked(), Some(true));
}

/// Pairwise reordering heals inside the window without any retransmit
/// traffic at all: the decoder buffers the early frame and releases it
/// in order.
#[test]
fn swapped_packets_heal_without_retransmit() {
    let config = SystemConfig::paper_default();
    let patient = PatientProfile::normotensive();
    let mut device = DeviceSimulator::new(&config, &patient, 0.5).unwrap();
    let mut packets = Vec::new();
    while let Some(p) = device.next_packet().unwrap() {
        packets.push(p);
    }
    packets.swap(4, 5);

    let mut pipe = HostPipeline::new(
        &config.decimator,
        LinkCalibration::identity(),
        GapPolicy::HoldLast,
    )
    .unwrap()
    .with_reorder_window(8);
    let mut wire = Vec::new();
    for p in &packets {
        pipe.push_bytes(p, &mut wire);
    }

    let reference = reference_samples(&config, 0.5);
    assert_bit_identical(&wire, &reference);
    let health = pipe.health();
    assert_eq!(health.decoder.gap_events, 0);
    assert!(health.decoder.reordered_frames >= 1);
    assert_eq!(health.decoder.retransmits_rx, 0);
    assert_eq!(health.naks_tx, 0);
}

/// Regression: a forged (wrong-key) handshake is rejected, journaled,
/// counted, NACK'd back to the device, and — with `require_auth` — the
/// data behind it never reaches the pipeline.
#[test]
fn forged_handshake_is_rejected_and_journaled() {
    let config = SystemConfig::paper_default();
    let patient = PatientProfile::normotensive();
    let registry = Registry::new();
    let forged = LinkKey::from_bytes(*b"not-the-ward-key");
    let mut device = DeviceSimulator::new(&config, &patient, 0.2)
        .unwrap()
        .with_auth(forged, 0xBAD, 99);
    let mut pipe = HostPipeline::new(
        &config.decimator,
        LinkCalibration::identity(),
        GapPolicy::HoldLast,
    )
    .unwrap()
    .with_auth(test_key(), true)
    .with_telemetry(&registry.telemetry());

    let mut samples = Vec::new();
    while let Some(packet) = device.next_packet().unwrap() {
        pipe.push_bytes(&packet, &mut samples);
    }
    assert!(samples.is_empty(), "unauthenticated data must not decode");
    let health = pipe.health();
    assert_eq!(health.handshakes_ok, 0);
    assert_eq!(health.handshakes_rejected, 1);
    assert!(health.unauth_frames > 0);
    assert_eq!(health.samples(), 0);

    // The rejection is journaled for the ops plane...
    let snapshot = registry.snapshot();
    assert!(
        snapshot
            .events
            .iter()
            .any(|e| e.source == "link.auth" && e.message.contains("handshake rejected")),
        "rejection must land in the journal",
    );
    // ...and NACK'd back to the device.
    let mut ctl = Vec::new();
    assert!(pipe.drain_control_into(&mut ctl));
    let mut retx = Vec::new();
    device.handle_host_bytes(&ctl, &mut retx);
    assert_eq!(device.hello_acked(), Some(false));
}

/// The matching positive case: the genuine key opens the gate and the
/// stream is bit-identical to an unauthenticated lossless run.
#[test]
fn genuine_handshake_opens_the_gate() {
    let config = SystemConfig::paper_default();
    let reference = reference_samples(&config, 0.3);
    let (wire, health, device, _) = pump_lossy(&config, 0.3, FaultConfig::clean(), 11);
    assert_bit_identical(&wire, &reference);
    assert_eq!(health.handshakes_ok, 1);
    assert_eq!(health.handshakes_rejected, 0);
    assert_eq!(health.unauth_frames, 0);
    assert_eq!(device.hello_acked(), Some(true));
}

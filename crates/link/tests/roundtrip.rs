//! Fault-free round-trip properties: whatever the chunking, whatever
//! the fragmentation, a clean transport is bit-invisible.

use proptest::prelude::*;
use tonos_core::config::SystemConfig;
use tonos_dsp::bits::PackedBits;
use tonos_dsp::decimator::DecimatorConfig;
use tonos_link::{
    DeviceSimulator, FaultConfig, FaultyTransport, FrameDecoder, FrameEncoder, GapPolicy,
    HostPipeline, LinkCalibration, LinkEvent, SampleFlag,
};
use tonos_physio::patient::PatientProfile;

/// Deterministic pseudo-random bit at position `i` of stream `seed`.
fn bit(seed: u64, i: u64) -> bool {
    let mut z = seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z & 1 == 1
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Word-unaligned chunk lengths and arbitrary transport
    /// fragmentation decode to the exact bit sequence that was encoded.
    #[test]
    fn any_chunking_and_fragmentation_round_trips(
        seed in any::<u64>(),
        lens in prop::collection::vec(1_usize..400, 1..20),
        frag in 1_usize..64,
    ) {
        // Encode chunks of word-unaligned lengths.
        let mut enc = FrameEncoder::new(3);
        let mut wire = Vec::new();
        let mut sent = PackedBits::new();
        let mut cursor = 0u64;
        for &len in &lens {
            let chunk: PackedBits = (0..len as u64).map(|i| bit(seed, cursor + i)).collect();
            for b in chunk.iter() {
                sent.push(b);
            }
            cursor += len as u64;
            enc.encode_into(&chunk, &mut wire).unwrap();
        }

        // Deliver in arbitrary fragment sizes.
        let mut dec = FrameDecoder::new();
        let mut events = Vec::new();
        for piece in wire.chunks(frag) {
            dec.push(piece, &mut events);
        }

        let mut got = PackedBits::new();
        for event in &events {
            match event {
                LinkEvent::Frame(f) => {
                    for b in f.to_packed_bits().iter() {
                        got.push(b);
                    }
                }
                LinkEvent::Gap { .. } => prop_assert!(false, "gap on a clean link"),
                LinkEvent::Control(_) => {
                    prop_assert!(false, "control frame on a data-only link")
                }
            }
        }
        prop_assert_eq!(got, sent);
        prop_assert_eq!(dec.stats().frames, lens.len() as u64);
        prop_assert_eq!(dec.stats().resyncs, 0);
        prop_assert_eq!(dec.stats().crc_failures, 0);
        prop_assert_eq!(dec.buffered(), 0);
    }

    /// A clean [`FaultyTransport`] is also bit-invisible end to end.
    #[test]
    fn clean_transport_is_transparent(seed in any::<u64>(), n in 1_usize..30) {
        let mut enc = FrameEncoder::new(0);
        let mut transport = FaultyTransport::new(FaultConfig::clean(), seed);
        let mut dec = FrameDecoder::new();
        let mut events = Vec::new();
        for i in 0..n {
            let chunk: PackedBits = (0..128u64).map(|k| bit(seed, i as u64 * 128 + k)).collect();
            let packet = enc.encode(&chunk).unwrap();
            let delivered = transport.transmit(&packet);
            dec.push(&delivered, &mut events);
        }
        dec.push(&transport.flush(), &mut events);
        let frames = events.iter().filter(|e| matches!(e, LinkEvent::Frame(_))).count();
        prop_assert_eq!(frames, n);
        prop_assert_eq!(dec.stats().gap_events, 0);
    }
}

/// A mid-stream reconnect: the device keeps encoding while the
/// transport is down, the host decoder survives the torn frame, flags
/// exactly the lost span, and delivers everything after reconnect
/// bit-identically.
#[test]
fn mid_stream_reconnect_resyncs_and_accounts_the_loss() {
    let seed = 0xDEC0DE;
    let chunks: Vec<PackedBits> = (0..30)
        .map(|i| (0..128u64).map(|k| bit(seed, i * 128 + k)).collect())
        .collect();
    let mut enc = FrameEncoder::new(0);
    let packets: Vec<Vec<u8>> = chunks.iter().map(|c| enc.encode(c).unwrap()).collect();

    let mut dec = FrameDecoder::new();
    let mut events = Vec::new();
    // Frames 0..10 delivered, frame 10 torn mid-frame, 11..15 lost
    // entirely, connection resumes at frame 15.
    for p in &packets[..10] {
        dec.push(p, &mut events);
    }
    dec.push(&packets[10][..15], &mut events);
    for p in &packets[15..] {
        dec.push(p, &mut events);
    }

    let delivered: Vec<u32> = events
        .iter()
        .filter_map(|e| match e {
            LinkEvent::Frame(f) => Some(f.seq),
            LinkEvent::Gap { .. } | LinkEvent::Control(_) => None,
        })
        .collect();
    let expect: Vec<u32> = (0..10).chain(15..30).collect();
    assert_eq!(delivered, expect);

    // The whole outage is one gap: frames 10..=14, 5 × 128 clocks.
    let gaps: Vec<(u32, u32, u32, u64)> = events
        .iter()
        .filter_map(|e| match e {
            LinkEvent::Gap {
                expected_seq,
                got_seq,
                lost_frames,
                lost_clocks,
            } => Some((*expected_seq, *got_seq, *lost_frames, *lost_clocks)),
            LinkEvent::Frame(_) | LinkEvent::Control(_) => None,
        })
        .collect();
    assert_eq!(gaps, vec![(10, 15, 5, 5 * 128)]);
    assert_eq!(dec.stats().resyncs, 1);

    // Delivered payloads are bit-identical to what was encoded.
    let mut iter = events.iter().filter_map(|e| match e {
        LinkEvent::Frame(f) => Some(f),
        LinkEvent::Gap { .. } | LinkEvent::Control(_) => None,
    });
    for seq in expect {
        let frame = iter.next().unwrap();
        assert_eq!(frame.to_packed_bits(), chunks[seq as usize], "frame {seq}");
    }
}

/// A host attaching to an already-running stream conceals everything
/// before its first frame, keeping sample indices on the device clock.
#[test]
fn late_attach_aligns_to_device_clock() {
    let seed = 0xA77AC4;
    let mut enc = FrameEncoder::new(0);
    let packets: Vec<Vec<u8>> = (0..12)
        .map(|i| {
            let c: PackedBits = (0..128u64).map(|k| bit(seed, i * 128 + k)).collect();
            enc.encode(&c).unwrap()
        })
        .collect();
    let mut pipe = HostPipeline::new(
        &DecimatorConfig::paper_default(),
        LinkCalibration::identity(),
        GapPolicy::MarkInvalid,
    )
    .unwrap();
    let mut out = Vec::new();
    for p in &packets[4..] {
        pipe.push_bytes(p, &mut out);
    }
    assert_eq!(out.len(), 12);
    assert!(out[..4].iter().all(|s| s.flag == SampleFlag::Invalid));
    assert_eq!(out[4].index, 4);
    assert_eq!(pipe.health().decoder.gap_events, 1);
    assert_eq!(pipe.health().decoder.lost_frames, 4);
}

/// The tentpole equivalence: device → wire → host pipeline on a
/// fault-free link produces the *bit-identical* decimated stream to
/// feeding the same payload straight into an in-process decimator.
#[test]
fn wire_path_matches_in_process_path_bit_for_bit() {
    let config = SystemConfig::paper_default();
    let patient = PatientProfile::normotensive();
    let mut device = DeviceSimulator::new(&config, &patient, 2.0).unwrap();

    let mut pipe = HostPipeline::new(
        &config.decimator,
        LinkCalibration::identity(),
        GapPolicy::HoldLast,
    )
    .unwrap();
    let mut direct = config.decimator.build().unwrap();

    let mut wire_samples = Vec::new();
    let mut direct_samples = Vec::new();
    while let Some(packet) = device.next_packet().unwrap() {
        // Tee the identical payload into the in-process decimator...
        direct.process_packed_into(device.last_packet_bits(), &mut direct_samples);
        // ...and push the wire bytes through the link, split awkwardly.
        let (a, b) = packet.split_at(packet.len() / 3);
        pipe.push_bytes(a, &mut wire_samples);
        pipe.push_bytes(b, &mut wire_samples);
    }

    assert_eq!(wire_samples.len(), direct_samples.len());
    assert_eq!(wire_samples.len(), 2000); // 2 s at 1 kS/s
    for (w, d) in wire_samples.iter().zip(&direct_samples) {
        assert_eq!(w.flag, SampleFlag::Clean);
        assert_eq!(w.value_mmhg.to_bits(), d.to_bits());
    }
    let health = pipe.health();
    assert_eq!(health.clean_samples, 2000);
    assert_eq!(health.concealed_samples, 0);
    assert_eq!(health.decoder.crc_failures, 0);
}

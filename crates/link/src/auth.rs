//! Keyed-MAC session handshake: provenance for the wire.
//!
//! CRC-32 proves a frame survived the transport intact; it proves
//! nothing about who sent it, because anyone can compute a CRC. The
//! handshake closes that gap with a 128-bit pre-shared key and a
//! SipHash-2-4 tag over the device's identity and a fresh nonce: a
//! device that does not hold the key cannot produce a [`Hello`] the
//! host will accept.
//!
//! SipHash-2-4 is implemented here directly (it is ~40 lines of ARX
//! rounds) so the crate stays dependency-free. It is the same PRF the
//! Rust standard library uses for hashing, chosen for exactly this
//! short-input keyed-MAC role.
//!
//! # Example
//!
//! ```
//! use tonos_link::auth::LinkKey;
//!
//! let key = LinkKey::from_bytes([7u8; 16]);
//! // Device side: introduce yourself.
//! let hello = key.hello(0xD00D, 42);
//! // Host side: verify provenance before trusting the stream.
//! assert!(key.verify(&hello));
//!
//! // A forged hello (wrong key) is rejected.
//! let other = LinkKey::from_bytes([8u8; 16]);
//! assert!(!key.verify(&other.hello(0xD00D, 42)));
//! ```

use tonos_dsp::frame::Hello;

/// A 128-bit pre-shared link key. Both ends of a link hold the same
/// key; the device tags its [`Hello`] with it and the host verifies.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct LinkKey {
    k0: u64,
    k1: u64,
}

impl std::fmt::Debug for LinkKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.write_str("LinkKey(..)")
    }
}

impl LinkKey {
    /// Builds a key from 16 raw bytes (interpreted as two
    /// little-endian u64 words, SipHash convention).
    pub fn from_bytes(bytes: [u8; 16]) -> Self {
        LinkKey {
            k0: u64::from_le_bytes(bytes[0..8].try_into().unwrap()),
            k1: u64::from_le_bytes(bytes[8..16].try_into().unwrap()),
        }
    }

    /// Computes the handshake tag for `(device_id, nonce)`:
    /// SipHash-2-4 over `device_id ‖ nonce`, both little-endian.
    pub fn tag(&self, device_id: u64, nonce: u64) -> u64 {
        let mut msg = [0u8; 16];
        msg[0..8].copy_from_slice(&device_id.to_le_bytes());
        msg[8..16].copy_from_slice(&nonce.to_le_bytes());
        siphash24(self.k0, self.k1, &msg)
    }

    /// Builds a correctly-tagged [`Hello`] for this key.
    pub fn hello(&self, device_id: u64, nonce: u64) -> Hello {
        Hello {
            device_id,
            nonce,
            tag: self.tag(device_id, nonce),
        }
    }

    /// Verifies a received [`Hello`] against this key.
    pub fn verify(&self, hello: &Hello) -> bool {
        // Constant-time-ish compare: XOR then reduce. For a 64-bit tag
        // over a loopback link this is hygiene, not a hard requirement.
        (self.tag(hello.device_id, hello.nonce) ^ hello.tag) == 0
    }
}

#[inline]
fn sipround(v: &mut [u64; 4]) {
    v[0] = v[0].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(13);
    v[1] ^= v[0];
    v[0] = v[0].rotate_left(32);
    v[2] = v[2].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(16);
    v[3] ^= v[2];
    v[0] = v[0].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(21);
    v[3] ^= v[0];
    v[2] = v[2].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(17);
    v[1] ^= v[2];
    v[2] = v[2].rotate_left(32);
}

/// SipHash-2-4 (Aumasson & Bernstein), 64-bit output.
fn siphash24(k0: u64, k1: u64, msg: &[u8]) -> u64 {
    let mut v = [
        k0 ^ 0x736f_6d65_7073_6575,
        k1 ^ 0x646f_7261_6e64_6f6d,
        k0 ^ 0x6c79_6765_6e65_7261,
        k1 ^ 0x7465_6462_7974_6573,
    ];
    let mut chunks = msg.chunks_exact(8);
    for chunk in &mut chunks {
        let m = u64::from_le_bytes(chunk.try_into().unwrap());
        v[3] ^= m;
        sipround(&mut v);
        sipround(&mut v);
        v[0] ^= m;
    }
    // Final block: remaining bytes plus the message length in the top
    // byte.
    let rest = chunks.remainder();
    let mut last = [0u8; 8];
    last[..rest.len()].copy_from_slice(rest);
    last[7] = msg.len() as u8;
    let m = u64::from_le_bytes(last);
    v[3] ^= m;
    sipround(&mut v);
    sipround(&mut v);
    v[0] ^= m;
    v[2] ^= 0xff;
    for _ in 0..4 {
        sipround(&mut v);
    }
    v[0] ^ v[1] ^ v[2] ^ v[3]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vector from the SipHash paper (Appendix A):
    /// key = 00..0f, message = 00..0e (15 bytes).
    #[test]
    fn siphash24_matches_reference_vector() {
        let k0 = u64::from_le_bytes([0, 1, 2, 3, 4, 5, 6, 7]);
        let k1 = u64::from_le_bytes([8, 9, 10, 11, 12, 13, 14, 15]);
        let msg: Vec<u8> = (0u8..15).collect();
        assert_eq!(siphash24(k0, k1, &msg), 0xa129ca6149be45e5);
    }

    #[test]
    fn tag_depends_on_every_input() {
        let key = LinkKey::from_bytes([3u8; 16]);
        let base = key.tag(1, 2);
        assert_ne!(base, key.tag(2, 2));
        assert_ne!(base, key.tag(1, 3));
        assert_ne!(base, LinkKey::from_bytes([4u8; 16]).tag(1, 2));
    }

    #[test]
    fn verify_roundtrip_and_forgery() {
        let key = LinkKey::from_bytes(*b"0123456789abcdef");
        let hello = key.hello(77, 1001);
        assert!(key.verify(&hello));
        let mut forged = hello;
        forged.tag ^= 1;
        assert!(!key.verify(&forged));
    }
}

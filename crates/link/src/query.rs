//! Live per-connection health queries.
//!
//! The fleet engine isolates every ingest session behind its own
//! registry, which is right for accounting but leaves an operator blind
//! *while a connection is alive*: session counters only reach the fleet
//! registry at rollup, i.e. after disconnect. The [`LinkDirectory`]
//! closes that window. The server registers a [`LinkEntry`] per
//! accepted connection; the ingest task publishes its pipeline's
//! [`LinkHealth`] into the entry after every transport chunk (the
//! struct is `Copy`, so publication is one short mutex hold); query
//! paths — `LinkServer::links`, the scope endpoint's `/links` — read a
//! consistent [`LinkStatus`] snapshot at any moment, mid-ingest
//! included.
//!
//! Entries outlive their connections (marked disconnected, never
//! removed), so a query shortly after a device drops still explains
//! what happened — a directory that forgets dead links would hide
//! exactly the sessions an operator is paging about.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::pipeline::LinkHealth;

/// One connection's live state inside the [`LinkDirectory`].
#[derive(Debug)]
pub struct LinkEntry {
    id: u64,
    peer: String,
    connected_at: Duration,
    state: Mutex<EntryState>,
}

#[derive(Debug, Default)]
struct EntryState {
    health: LinkHealth,
    disconnected: bool,
}

impl LinkEntry {
    /// Publishes the latest pipeline health. Called by the ingest task
    /// after each chunk; `LinkHealth` is `Copy`, so this is one store
    /// under a short lock.
    pub fn publish(&self, health: LinkHealth) {
        self.state.lock().expect("link entry lock poisoned").health = health;
    }

    /// The peer address this entry was registered under.
    pub fn peer(&self) -> &str {
        &self.peer
    }

    /// Marks the connection closed (the entry remains queryable).
    pub fn disconnect(&self) {
        self.state
            .lock()
            .expect("link entry lock poisoned")
            .disconnected = true;
    }

    /// A point-in-time view of this connection.
    pub fn status(&self) -> LinkStatus {
        let state = self.state.lock().expect("link entry lock poisoned");
        LinkStatus {
            id: self.id,
            peer: self.peer.clone(),
            connected_at: self.connected_at,
            live: !state.disconnected,
            health: state.health,
        }
    }
}

/// Point-in-time view of one connection, live or closed.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkStatus {
    /// Directory-assigned connection id (0-based accept order).
    pub id: u64,
    /// Peer address as accepted.
    pub peer: String,
    /// Server-clock time at accept.
    pub connected_at: Duration,
    /// Whether the connection is still ingesting.
    pub live: bool,
    /// Latest published pipeline health.
    pub health: LinkHealth,
}

impl LinkStatus {
    /// Hand-rolled JSON object, one per connection, served by `/links`.
    pub fn to_json(&self) -> String {
        let d = &self.health.decoder;
        format!(
            concat!(
                "{{\"id\":{},\"peer\":\"{}\",\"connected_at_s\":{},\"live\":{},",
                "\"frames\":{},\"bytes\":{},\"crc_failures\":{},\"resyncs\":{},",
                "\"gap_events\":{},\"lost_frames\":{},\"stale_frames\":{},",
                "\"reordered_frames\":{},\"retransmits_rx\":{},\"naks_tx\":{},",
                "\"handshakes_ok\":{},\"handshakes_rejected\":{},\"unauth_frames\":{},",
                "\"clean_samples\":{},\"concealed_samples\":{},\"invalid_samples\":{},",
                "\"skipped_samples\":{},\"stream_resets\":{},",
                "\"beats\":{},\"alarms\":{},\"pulse_rate_bpm\":{}}}"
            ),
            self.id,
            json_escape(&self.peer),
            self.connected_at.as_secs_f64(),
            self.live,
            d.frames,
            d.bytes,
            d.crc_failures,
            d.resyncs,
            d.gap_events,
            d.lost_frames,
            d.stale_frames,
            d.reordered_frames,
            d.retransmits_rx,
            self.health.naks_tx,
            self.health.handshakes_ok,
            self.health.handshakes_rejected,
            self.health.unauth_frames,
            self.health.clean_samples,
            self.health.concealed_samples,
            self.health.invalid_samples,
            self.health.skipped_samples,
            self.health.stream_resets,
            self.health.beats,
            self.health.alarms,
            json_number(self.health.pulse_rate_bpm),
        )
    }
}

/// Summed counters across every directory entry, live and closed — what
/// a fleet-level `/metrics` scrape reports while sessions are still
/// in flight (their isolated registries roll up only on completion).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkAggregate {
    /// Entries still ingesting.
    pub live: u64,
    /// Entries that have disconnected.
    pub closed: u64,
    /// CRC-verified frames across all entries.
    pub frames: u64,
    /// CRC failures across all entries.
    pub crc_failures: u64,
    /// Gap episodes across all entries.
    pub gap_events: u64,
    /// Clean output samples across all entries.
    pub clean_samples: u64,
    /// Concealed + invalid output samples across all entries.
    pub concealed_samples: u64,
    /// Stream resets across all entries.
    pub stream_resets: u64,
    /// Reset-skipped output samples across all entries.
    pub skipped_samples: u64,
    /// Alarms across all entries.
    pub alarms: u64,
    /// Frames healed by the reorder window across all entries.
    pub reordered_frames: u64,
    /// NAK-recovered retransmits accepted across all entries.
    pub retransmits_rx: u64,
    /// NAK frames queued for devices across all entries.
    pub naks_tx: u64,
    /// Verified device handshakes across all entries.
    pub handshakes_ok: u64,
    /// Rejected (forged or malformed) handshakes across all entries.
    pub handshakes_rejected: u64,
    /// Data frames dropped pre-authentication across all entries.
    pub unauth_frames: u64,
}

/// Registry of every connection the server has accepted.
///
/// `register` is called by the accept path, `snapshot`/`aggregate` by
/// query paths; both sides touch the entry list under one mutex held
/// only for the clone of `Arc`s, never while formatting.
#[derive(Debug, Default)]
pub struct LinkDirectory {
    entries: Mutex<Vec<Arc<LinkEntry>>>,
    next_id: AtomicU64,
}

impl LinkDirectory {
    /// An empty directory.
    pub fn new() -> Self {
        LinkDirectory::default()
    }

    /// Registers a new connection and returns its entry for the ingest
    /// task to publish into.
    pub fn register(&self, peer: String, connected_at: Duration) -> Arc<LinkEntry> {
        let entry = Arc::new(LinkEntry {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            peer,
            connected_at,
            state: Mutex::new(EntryState::default()),
        });
        self.entries
            .lock()
            .expect("link directory lock poisoned")
            .push(Arc::clone(&entry));
        entry
    }

    /// Point-in-time status of every known connection, accept order.
    pub fn snapshot(&self) -> Vec<LinkStatus> {
        let entries: Vec<Arc<LinkEntry>> = self
            .entries
            .lock()
            .expect("link directory lock poisoned")
            .clone();
        entries.iter().map(|e| e.status()).collect()
    }

    /// Connections still ingesting.
    pub fn live_count(&self) -> usize {
        self.snapshot().iter().filter(|s| s.live).count()
    }

    /// Sums every entry's counters into one fleet-level view.
    pub fn aggregate(&self) -> LinkAggregate {
        let mut agg = LinkAggregate::default();
        for status in self.snapshot() {
            if status.live {
                agg.live += 1;
            } else {
                agg.closed += 1;
            }
            let h = &status.health;
            agg.frames += h.decoder.frames;
            agg.crc_failures += h.decoder.crc_failures;
            agg.gap_events += h.decoder.gap_events;
            agg.clean_samples += h.clean_samples;
            agg.concealed_samples += h.concealed_samples + h.invalid_samples;
            agg.stream_resets += h.stream_resets;
            agg.skipped_samples += h.skipped_samples;
            agg.alarms += h.alarms;
            agg.reordered_frames += h.decoder.reordered_frames;
            agg.retransmits_rx += h.decoder.retransmits_rx;
            agg.naks_tx += h.naks_tx;
            agg.handshakes_ok += h.handshakes_ok;
            agg.handshakes_rejected += h.handshakes_rejected;
            agg.unauth_frames += h.unauth_frames;
        }
        agg
    }

    /// The `/links` payload: a JSON array of per-connection objects.
    pub fn to_json(&self) -> String {
        let statuses = self.snapshot();
        let mut out = String::with_capacity(64 + statuses.len() * 256);
        out.push('[');
        for (i, s) in statuses.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&s.to_json());
        }
        out.push(']');
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// JSON has no NaN/Infinity literals; non-finite values become `null`.
fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn health(frames: u64, resets: u64) -> LinkHealth {
        LinkHealth {
            decoder: crate::decode::DecoderStats {
                frames,
                ..Default::default()
            },
            stream_resets: resets,
            ..Default::default()
        }
    }

    #[test]
    fn directory_assigns_ids_in_accept_order() {
        let dir = LinkDirectory::new();
        let a = dir.register("10.0.0.1:100".into(), Duration::ZERO);
        let b = dir.register("10.0.0.2:200".into(), Duration::from_secs(1));
        assert_eq!(a.status().id, 0);
        assert_eq!(b.status().id, 1);
        assert_eq!(dir.snapshot().len(), 2);
        assert_eq!(dir.live_count(), 2);
    }

    #[test]
    fn published_health_is_visible_and_survives_disconnect() {
        let dir = LinkDirectory::new();
        let entry = dir.register("dev:1".into(), Duration::ZERO);
        entry.publish(health(7, 2));
        let status = &dir.snapshot()[0];
        assert!(status.live);
        assert_eq!(status.health.decoder.frames, 7);
        assert_eq!(status.health.stream_resets, 2);

        entry.disconnect();
        let status = &dir.snapshot()[0];
        assert!(!status.live);
        // The last published health is still there for post-mortems.
        assert_eq!(status.health.decoder.frames, 7);
    }

    #[test]
    fn aggregate_sums_across_live_and_closed_entries() {
        let dir = LinkDirectory::new();
        let a = dir.register("dev:1".into(), Duration::ZERO);
        let b = dir.register("dev:2".into(), Duration::ZERO);
        a.publish(health(10, 1));
        b.publish(health(5, 0));
        b.disconnect();
        let agg = dir.aggregate();
        assert_eq!(agg.live, 1);
        assert_eq!(agg.closed, 1);
        assert_eq!(agg.frames, 15);
        assert_eq!(agg.stream_resets, 1);
    }

    #[test]
    fn json_is_wellformed_and_escapes_peers() {
        let dir = LinkDirectory::new();
        let entry = dir.register("weird\"peer\\x".into(), Duration::from_millis(1500));
        entry.publish(health(3, 0));
        let json = dir.to_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"peer\":\"weird\\\"peer\\\\x\""));
        assert!(json.contains("\"connected_at_s\":1.5"));
        assert!(json.contains("\"frames\":3"));
        assert!(json.contains("\"live\":true"));
        // Exactly one object per entry.
        assert_eq!(json.matches("\"id\":").count(), 1);
    }

    #[test]
    fn non_finite_pulse_rate_serializes_as_null() {
        let status = LinkStatus {
            id: 0,
            peer: "p".into(),
            connected_at: Duration::ZERO,
            live: true,
            health: LinkHealth {
                pulse_rate_bpm: f64::NAN,
                ..Default::default()
            },
        };
        assert!(status.to_json().contains("\"pulse_rate_bpm\":null"));
    }
}

//! Host-side streaming frame decoder: resynchronization, CRC
//! verification, and sequence-gap detection.
//!
//! The decoder is push-based: feed it whatever bytes the transport
//! delivered — any split, any alignment — and it emits [`LinkEvent`]s.
//! Its contract is the crate's no-silent-corruption invariant:
//!
//! * A damaged frame never comes out as a [`LinkEvent::Frame`]; the
//!   CRC rejects it and the decoder scans forward to the next sync
//!   word (**resync**).
//! * A missing frame never goes unnoticed; the sequence number jump is
//!   reported as a [`LinkEvent::Gap`] carrying the number of lost
//!   modulator clocks (from the clock-index headers), which is what
//!   the pipeline's gap concealment consumes.
//! * A duplicated or reordered-stale frame is dropped, not replayed.

use tonos_dsp::frame::{
    is_control_kind, CorruptReason, Frame, Nak, ParseOutcome, SeqRange, NAK_MAX_RANGES, SYNC,
};
use tonos_telemetry::{names, Counter, Telemetry};

/// Keep at most this much undecodable prefix before compacting the
/// internal buffer.
const COMPACT_THRESHOLD: usize = 16 * 1024;

/// Hard ceiling on the reorder window so the pending buffer stays
/// small; windows are typically 16–64 frames.
pub const MAX_REORDER_WINDOW: u32 = 1024;

/// What the decoder tells the layer above.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkEvent {
    /// A CRC-verified, in-order frame.
    Frame(Frame),
    /// One or more frames were lost between the last delivered frame
    /// and the one that follows this event.
    Gap {
        /// Sequence number that was expected.
        expected_seq: u32,
        /// Sequence number that actually arrived.
        got_seq: u32,
        /// Frames missing (`got_seq - expected_seq`, mod 2³²).
        lost_frames: u32,
        /// Modulator clocks missing, from the clock-index headers.
        lost_clocks: u64,
    },
    /// A CRC-verified control frame (handshake or NAK). Control frames
    /// sit outside the data sequence space: they never trigger gaps,
    /// never count as stale, and carry advisory `seq`/`clock` headers.
    Control(Frame),
}

/// Plain (telemetry-independent) decoder statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecoderStats {
    /// Bytes pushed into the decoder.
    pub bytes: u64,
    /// CRC-verified frames delivered in order.
    pub frames: u64,
    /// CRC check failures (includes false syncs found while scanning).
    pub crc_failures: u64,
    /// Times the decoder lost framing and had to scan for sync.
    pub resyncs: u64,
    /// Sequence-gap events reported.
    pub gap_events: u64,
    /// Total frames lost across all gap events.
    pub lost_frames: u64,
    /// Duplicate or reordered-stale frames dropped.
    pub stale_frames: u64,
    /// Out-of-order frames healed by the reorder buffer (delivered in
    /// order instead of dropped-and-concealed).
    pub reordered_frames: u64,
    /// Previously-NAK'd frames that later arrived (via retransmission
    /// or very late reordering).
    pub retransmits_rx: u64,
    /// Control frames (hello / ack / NAK) delivered.
    pub control_frames: u64,
}

/// Push-based streaming decoder for the link frame format.
///
/// # Example
///
/// The decoder is insensitive to how the transport fragments the byte
/// stream — any split decodes identically:
///
/// ```
/// use tonos_dsp::bits::PackedBits;
/// use tonos_link::{FrameDecoder, FrameEncoder, LinkEvent};
///
/// let mut enc = FrameEncoder::new(0);
/// let chunk: PackedBits = (0..64).map(|i| i % 3 == 0).collect();
/// let mut wire = Vec::new();
/// enc.encode_into(&chunk, &mut wire).unwrap();
///
/// let mut dec = FrameDecoder::new();
/// let mut events = Vec::new();
/// dec.push(&wire[..10], &mut events); // partial frame: buffered
/// assert!(events.is_empty());
/// dec.push(&wire[10..], &mut events); // rest arrives: frame decodes
/// assert!(matches!(events[0], LinkEvent::Frame(_)));
/// ```
#[derive(Debug, Clone)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    pos: usize,
    /// `(seq, clock)` expected for the next in-order frame; `None`
    /// until the first frame of the stream arrives.
    expect: Option<(u32, u64)>,
    in_resync: bool,
    /// Reorder window in frames; 0 disables the reorder buffer (every
    /// forward seq jump becomes an immediate gap, as in PR 5).
    reorder_window: u32,
    /// Out-of-order frames waiting for their predecessors, each at a
    /// forward seq distance `< reorder_window` when buffered.
    pending: Vec<Frame>,
    /// Sequence numbers already reported by [`FrameDecoder::take_nak`],
    /// for retransmit accounting when they eventually arrive.
    nak_sent: Vec<u32>,
    stats: DecoderStats,
    /// Stats as of the last telemetry flush; counters receive the delta
    /// once per [`FrameDecoder::push`], not one atomic op per frame.
    flushed: DecoderStats,
    frames_rx: Counter,
    bytes_rx: Counter,
    crc_fail: Counter,
    resyncs: Counter,
    gap_events: Counter,
    gap_frames: Counter,
    stale_frames: Counter,
    reordered: Counter,
    retransmits: Counter,
    control: Counter,
}

impl Default for FrameDecoder {
    fn default() -> Self {
        FrameDecoder::new()
    }
}

impl FrameDecoder {
    /// A decoder with no telemetry attached.
    pub fn new() -> Self {
        FrameDecoder {
            buf: Vec::new(),
            pos: 0,
            expect: None,
            in_resync: false,
            reorder_window: 0,
            pending: Vec::new(),
            nak_sent: Vec::new(),
            stats: DecoderStats::default(),
            flushed: DecoderStats::default(),
            frames_rx: Counter::disabled(),
            bytes_rx: Counter::disabled(),
            crc_fail: Counter::disabled(),
            resyncs: Counter::disabled(),
            gap_events: Counter::disabled(),
            gap_frames: Counter::disabled(),
            stale_frames: Counter::disabled(),
            reordered: Counter::disabled(),
            retransmits: Counter::disabled(),
            control: Counter::disabled(),
        }
    }

    /// Enables a reorder buffer of `window` frames (clamped to
    /// [`MAX_REORDER_WINDOW`]; 0 disables it).
    ///
    /// With a window, a frame arriving up to `window - 1` sequence
    /// numbers early is buffered rather than gapped: if the missing
    /// predecessors arrive (late, or retransmitted after a NAK), the
    /// stream heals with **no gap at all** and the samples downstream
    /// are bit-identical to a lossless link. Only when a frame would
    /// land at or beyond the window does the decoder give up on the
    /// oldest missing span and report a [`LinkEvent::Gap`].
    #[must_use]
    pub fn with_reorder_window(mut self, window: u32) -> Self {
        self.reorder_window = window.min(MAX_REORDER_WINDOW);
        self
    }

    /// Reports receive-side counters (`link.frames_rx`, `link.crc_fail`,
    /// `link.resyncs`, `link.gap_events`, ...) into the given registry.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: &Telemetry) -> Self {
        self.frames_rx = telemetry.counter(names::LINK_FRAMES_RX);
        self.bytes_rx = telemetry.counter(names::LINK_BYTES_RX);
        self.crc_fail = telemetry.counter(names::LINK_CRC_FAIL);
        self.resyncs = telemetry.counter(names::LINK_RESYNCS);
        self.gap_events = telemetry.counter(names::LINK_GAP_EVENTS);
        self.gap_frames = telemetry.counter(names::LINK_GAP_FRAMES);
        self.stale_frames = telemetry.counter(names::LINK_STALE_FRAMES);
        self.reordered = telemetry.counter(names::LINK_REORDERED_FRAMES);
        self.retransmits = telemetry.counter(names::LINK_RETRANSMITS_RX);
        self.control = telemetry.counter(names::LINK_CONTROL_FRAMES);
        // Counters report activity from attach time on, as before the
        // batched flush: don't credit pre-attach stats to the registry.
        self.flushed = self.stats;
        self
    }

    /// Decoder statistics so far.
    pub fn stats(&self) -> DecoderStats {
        self.stats
    }

    /// Bytes buffered but not yet decodable (partial frame tail).
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Feeds transport bytes in, appending decoded events to `events`.
    ///
    /// Any split of the byte stream decodes identically: the decoder
    /// buffers partial frames internally and is insensitive to where
    /// the transport fragments its reads.
    pub fn push(&mut self, bytes: &[u8], events: &mut Vec<LinkEvent>) {
        self.stats.bytes += bytes.len() as u64;
        self.buf.extend_from_slice(bytes);
        loop {
            let window = &self.buf[self.pos..];
            if window.is_empty() {
                break;
            }
            match Frame::parse(window) {
                ParseOutcome::NeedMore => break,
                ParseOutcome::Parsed { frame, consumed } => {
                    self.pos += consumed;
                    self.in_resync = false;
                    self.accept(frame, events);
                }
                ParseOutcome::Corrupt { reason } => {
                    if !self.in_resync {
                        self.in_resync = true;
                        self.stats.resyncs += 1;
                    }
                    if reason == CorruptReason::Crc {
                        self.stats.crc_failures += 1;
                    }
                    // Scan forward to the next candidate sync byte,
                    // at least one byte ahead of the rejected start.
                    let window = &self.buf[self.pos..];
                    let skip = window[1..]
                        .iter()
                        .position(|&b| b == SYNC[0])
                        .map_or(window.len(), |i| i + 1);
                    self.pos += skip;
                }
            }
        }
        // Reclaim the consumed prefix once it is worth a memmove.
        if self.pos >= COMPACT_THRESHOLD {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        // Batched telemetry flush: one atomic add per counter per chunk
        // instead of one per frame. At reader chunk sizes (~60 frames)
        // the per-frame atomics were the hot path's single biggest
        // telemetry cost; `stats` already holds exact plain-field
        // totals, so the counters just receive the delta.
        self.frames_rx.add(self.stats.frames - self.flushed.frames);
        self.bytes_rx.add(self.stats.bytes - self.flushed.bytes);
        self.crc_fail
            .add(self.stats.crc_failures - self.flushed.crc_failures);
        self.resyncs.add(self.stats.resyncs - self.flushed.resyncs);
        self.gap_events
            .add(self.stats.gap_events - self.flushed.gap_events);
        self.gap_frames
            .add(self.stats.lost_frames - self.flushed.lost_frames);
        self.stale_frames
            .add(self.stats.stale_frames - self.flushed.stale_frames);
        self.reordered
            .add(self.stats.reordered_frames - self.flushed.reordered_frames);
        self.retransmits
            .add(self.stats.retransmits_rx - self.flushed.retransmits_rx);
        self.control
            .add(self.stats.control_frames - self.flushed.control_frames);
        self.flushed = self.stats;
    }

    /// Reports the sequence ranges currently missing inside the reorder
    /// window, as a [`Nak`] ready to send back to the device — or
    /// `None` when nothing is missing (or the reorder buffer is off).
    ///
    /// Every call returns **all** currently-missing ranges, including
    /// ones reported before: the caller paces NAK traffic, and a
    /// retransmission that was itself lost is re-requested on the next
    /// call rather than waited on forever. Duplicate retransmissions
    /// are harmless — they arrive as stale frames and are dropped.
    pub fn take_nak(&mut self) -> Option<Nak> {
        let (expected_seq, _) = self.expect?;
        if self.reorder_window == 0 || self.pending.is_empty() {
            return None;
        }
        // Distances of buffered frames ahead of the next expected seq;
        // everything between them (and before the first) is missing.
        let mut have: Vec<u32> = self
            .pending
            .iter()
            .map(|f| f.seq.wrapping_sub(expected_seq))
            .collect();
        have.sort_unstable();
        let mut ranges = Vec::new();
        let mut cursor = 0u32;
        for &d in &have {
            if d > cursor {
                ranges.push(SeqRange {
                    first: expected_seq.wrapping_add(cursor),
                    count: d - cursor,
                });
            }
            cursor = d + 1;
        }
        ranges.truncate(NAK_MAX_RANGES);
        if ranges.is_empty() {
            return None;
        }
        for r in &ranges {
            for k in 0..r.count {
                let s = r.first.wrapping_add(k);
                if !self.nak_sent.contains(&s) {
                    self.nak_sent.push(s);
                }
            }
        }
        Some(Nak { ranges })
    }

    fn accept(&mut self, frame: Frame, events: &mut Vec<LinkEvent>) {
        if is_control_kind(frame.kind) {
            // Control frames sit outside the data sequence space:
            // surface them and leave gap/stale tracking untouched.
            self.stats.control_frames += 1;
            events.push(LinkEvent::Control(frame));
            return;
        }
        if self.expect.is_none() {
            if frame.seq != 0 || frame.clock != 0 {
                // The stream was already running when we attached (or
                // its head was lost): everything before this frame is a
                // gap, so downstream sample indices stay aligned to the
                // device clock. Encoders start at sequence 0, clock 0.
                self.stats.gap_events += 1;
                self.stats.lost_frames += u64::from(frame.seq);
                events.push(LinkEvent::Gap {
                    expected_seq: 0,
                    got_seq: frame.seq,
                    lost_frames: frame.seq,
                    lost_clocks: frame.clock,
                });
            }
            self.deliver(frame, events);
            return;
        }
        let (expected_seq, expected_clock) = self.expect.unwrap();
        let diff = frame.seq.wrapping_sub(expected_seq);
        if diff == 0 {
            self.deliver(frame, events);
            self.drain_pending(events);
        } else if diff < 0x8000_0000 {
            // Forward jump. With no reorder window this is an immediate
            // gap (PR 5 behavior); with one, the frame is buffered and
            // the decoder waits — up to the window bound — for the
            // missing predecessors to arrive late or be retransmitted.
            if self.reorder_window == 0 {
                let lost_clocks = frame.clock.saturating_sub(expected_clock);
                self.stats.gap_events += 1;
                self.stats.lost_frames += u64::from(diff);
                events.push(LinkEvent::Gap {
                    expected_seq,
                    got_seq: frame.seq,
                    lost_frames: diff,
                    lost_clocks,
                });
                self.deliver(frame, events);
            } else {
                if self.pending.iter().any(|p| p.seq == frame.seq) {
                    self.stats.stale_frames += 1;
                    return;
                }
                self.pending.push(frame);
                // Give up on the oldest missing span(s) while any
                // buffered frame sits at or past the window edge.
                while self.max_pending_diff() >= u64::from(self.reorder_window) {
                    self.force_advance(events);
                }
            }
        } else {
            // Backward jump: a duplicate or a straggler that already
            // fell out of the window (its span was given up on).
            self.stats.stale_frames += 1;
        }
    }

    /// Largest forward distance of any buffered frame from the next
    /// expected seq (0 when the buffer is empty).
    fn max_pending_diff(&self) -> u64 {
        let expected_seq = self.expect.map_or(0, |(s, _)| s);
        self.pending
            .iter()
            .map(|f| u64::from(f.seq.wrapping_sub(expected_seq)))
            .max()
            .unwrap_or(0)
    }

    /// Declares the span up to the earliest buffered frame lost,
    /// delivers that frame, and drains anything now consecutive.
    fn force_advance(&mut self, events: &mut Vec<LinkEvent>) {
        let (expected_seq, expected_clock) = self.expect.expect("force_advance needs a stream");
        let at = self
            .pending
            .iter()
            .enumerate()
            .min_by_key(|(_, f)| f.seq.wrapping_sub(expected_seq))
            .map(|(i, _)| i)
            .expect("force_advance needs pending frames");
        let frame = self.pending.swap_remove(at);
        let diff = frame.seq.wrapping_sub(expected_seq);
        self.stats.gap_events += 1;
        self.stats.lost_frames += u64::from(diff);
        events.push(LinkEvent::Gap {
            expected_seq,
            got_seq: frame.seq,
            lost_frames: diff,
            lost_clocks: frame.clock.saturating_sub(expected_clock),
        });
        // The given-up seqs will never be counted as retransmits.
        let give_up_end = frame.seq;
        self.nak_sent
            .retain(|&s| s.wrapping_sub(give_up_end) < 0x8000_0000);
        self.stats.reordered_frames += 1;
        self.deliver(frame, events);
        self.drain_pending(events);
    }

    /// Delivers every buffered frame that is now consecutive with the
    /// stream head.
    fn drain_pending(&mut self, events: &mut Vec<LinkEvent>) {
        loop {
            let Some((expected_seq, _)) = self.expect else {
                return;
            };
            let Some(at) = self.pending.iter().position(|f| f.seq == expected_seq) else {
                return;
            };
            let frame = self.pending.swap_remove(at);
            self.stats.reordered_frames += 1;
            self.deliver(frame, events);
        }
    }

    /// Emits a frame as the new stream head and advances `expect`.
    fn deliver(&mut self, frame: Frame, events: &mut Vec<LinkEvent>) {
        if let Some(i) = self.nak_sent.iter().position(|&s| s == frame.seq) {
            self.nak_sent.swap_remove(i);
            self.stats.retransmits_rx += 1;
        }
        self.expect = Some((
            frame.seq.wrapping_add(1),
            frame.clock + frame.payload_bits() as u64,
        ));
        self.stats.frames += 1;
        events.push(LinkEvent::Frame(frame));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::FrameEncoder;
    use tonos_dsp::bits::PackedBits;

    fn chunk(n: usize, phase: usize) -> PackedBits {
        (0..n).map(|i| (i + phase).is_multiple_of(3)).collect()
    }

    fn encode_stream(chunks: &[PackedBits]) -> (Vec<u8>, Vec<usize>) {
        let mut enc = FrameEncoder::new(1);
        let mut wire = Vec::new();
        let mut bounds = Vec::new();
        for c in chunks {
            enc.encode_into(c, &mut wire).unwrap();
            bounds.push(wire.len());
        }
        (wire, bounds)
    }

    #[test]
    fn byte_at_a_time_matches_one_shot() {
        let chunks: Vec<PackedBits> = (0..10).map(|i| chunk(100 + i, i)).collect();
        let (wire, _) = encode_stream(&chunks);

        let mut one = Vec::new();
        FrameDecoder::new().push(&wire, &mut one);

        let mut dec = FrameDecoder::new();
        let mut dribble = Vec::new();
        for b in &wire {
            dec.push(std::slice::from_ref(b), &mut dribble);
        }
        assert_eq!(one, dribble);
        assert_eq!(one.len(), 10);
        assert_eq!(dec.stats().frames, 10);
        assert_eq!(dec.stats().resyncs, 0);
    }

    #[test]
    fn corrupted_frame_is_rejected_and_framing_recovers() {
        let chunks: Vec<PackedBits> = (0..5).map(|i| chunk(128, i)).collect();
        let (mut wire, bounds) = encode_stream(&chunks);
        // Flip a payload byte inside frame 2.
        wire[bounds[1] + 30] ^= 0x40;

        let mut events = Vec::new();
        let mut dec = FrameDecoder::new();
        dec.push(&wire, &mut events);

        let frames: Vec<u32> = events
            .iter()
            .filter_map(|e| match e {
                LinkEvent::Frame(f) => Some(f.seq),
                LinkEvent::Gap { .. } | LinkEvent::Control(_) => None,
            })
            .collect();
        assert_eq!(frames, vec![0, 1, 3, 4]);
        let gaps: Vec<(u32, u64)> = events
            .iter()
            .filter_map(|e| match e {
                LinkEvent::Gap {
                    lost_frames,
                    lost_clocks,
                    ..
                } => Some((*lost_frames, *lost_clocks)),
                LinkEvent::Frame(_) | LinkEvent::Control(_) => None,
            })
            .collect();
        assert_eq!(gaps, vec![(1, 128)]);
        assert!(dec.stats().crc_failures >= 1);
        assert_eq!(dec.stats().resyncs, 1);
    }

    #[test]
    fn duplicates_and_stale_frames_are_dropped() {
        let chunks: Vec<PackedBits> = (0..3).map(|i| chunk(64, i)).collect();
        let (wire, bounds) = encode_stream(&chunks);
        // frame0, frame1, frame1 again, frame0 again, frame2.
        let mut replay = wire[..bounds[1]].to_vec();
        replay.extend_from_slice(&wire[bounds[0]..bounds[1]]);
        replay.extend_from_slice(&wire[..bounds[0]]);
        replay.extend_from_slice(&wire[bounds[1]..]);

        let mut events = Vec::new();
        let mut dec = FrameDecoder::new();
        dec.push(&replay, &mut events);
        let seqs: Vec<u32> = events
            .iter()
            .filter_map(|e| match e {
                LinkEvent::Frame(f) => Some(f.seq),
                LinkEvent::Gap { .. } | LinkEvent::Control(_) => None,
            })
            .collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert_eq!(dec.stats().stale_frames, 2);
        assert_eq!(dec.stats().gap_events, 0);
    }

    #[test]
    fn garbage_between_frames_is_skipped() {
        let chunks: Vec<PackedBits> = (0..2).map(|i| chunk(64, i)).collect();
        let (wire, bounds) = encode_stream(&chunks);
        let mut noisy = wire[..bounds[0]].to_vec();
        // Garbage that includes sync-first bytes to force false-sync
        // probes.
        noisy.extend_from_slice(&[0x5A, 0x00, 0x5A, 0xDC, 0x13, 0x37, 0xFF]);
        noisy.extend_from_slice(&wire[bounds[0]..]);

        let mut events = Vec::new();
        let mut dec = FrameDecoder::new();
        dec.push(&noisy, &mut events);
        let frames = events
            .iter()
            .filter(|e| matches!(e, LinkEvent::Frame(_)))
            .count();
        assert_eq!(frames, 2);
        assert_eq!(dec.stats().resyncs, 1);
        assert_eq!(dec.stats().gap_events, 0);
    }

    fn delivered_seqs(events: &[LinkEvent]) -> Vec<u32> {
        events
            .iter()
            .filter_map(|e| match e {
                LinkEvent::Frame(f) => Some(f.seq),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn reorder_window_heals_a_swap_without_a_gap() {
        let chunks: Vec<PackedBits> = (0..4).map(|i| chunk(64, i)).collect();
        let (wire, bounds) = encode_stream(&chunks);
        // Send 0, 2, 1, 3.
        let mut swapped = wire[..bounds[0]].to_vec();
        swapped.extend_from_slice(&wire[bounds[1]..bounds[2]]);
        swapped.extend_from_slice(&wire[bounds[0]..bounds[1]]);
        swapped.extend_from_slice(&wire[bounds[2]..]);

        let mut events = Vec::new();
        let mut dec = FrameDecoder::new().with_reorder_window(8);
        dec.push(&swapped, &mut events);
        assert_eq!(delivered_seqs(&events), vec![0, 1, 2, 3]);
        assert_eq!(dec.stats().gap_events, 0);
        assert_eq!(dec.stats().reordered_frames, 1);
        assert_eq!(dec.stats().stale_frames, 0);
    }

    #[test]
    fn reorder_window_overflow_gives_up_with_a_gap() {
        let chunks: Vec<PackedBits> = (0..6).map(|i| chunk(64, i)).collect();
        let (wire, bounds) = encode_stream(&chunks);
        // Drop frame 1 entirely, then stream 0, 2, 3, 4, 5 with
        // window 3: frame 4 lands at diff 3 ≥ 3, forcing the give-up.
        let mut lossy = wire[..bounds[0]].to_vec();
        lossy.extend_from_slice(&wire[bounds[1]..]);

        let mut events = Vec::new();
        let mut dec = FrameDecoder::new().with_reorder_window(3);
        dec.push(&lossy, &mut events);
        assert_eq!(delivered_seqs(&events), vec![0, 2, 3, 4, 5]);
        assert_eq!(dec.stats().gap_events, 1);
        assert_eq!(dec.stats().lost_frames, 1);
        // The gap is declared before frame 2 is delivered.
        assert!(matches!(
            events[1],
            LinkEvent::Gap {
                expected_seq: 1,
                got_seq: 2,
                lost_frames: 1,
                lost_clocks: 64,
            }
        ));
    }

    #[test]
    fn take_nak_reports_missing_and_counts_retransmits() {
        let chunks: Vec<PackedBits> = (0..4).map(|i| chunk(64, i)).collect();
        let (wire, bounds) = encode_stream(&chunks);
        let mut events = Vec::new();
        let mut dec = FrameDecoder::new().with_reorder_window(8);
        // Deliver 0, then 2 and 3 out of order; 1 is missing.
        dec.push(&wire[..bounds[0]], &mut events);
        dec.push(&wire[bounds[1]..], &mut events);
        let nak = dec.take_nak().expect("frame 1 is missing");
        assert_eq!(nak.ranges.len(), 1);
        assert_eq!((nak.ranges[0].first, nak.ranges[0].count), (1, 1));
        // A second call re-reports the same span (caller-paced re-NAK).
        assert!(dec.take_nak().is_some());

        // The "retransmission" arrives: stream heals, retransmit
        // counted, nothing concealed.
        dec.push(&wire[bounds[0]..bounds[1]], &mut events);
        assert_eq!(delivered_seqs(&events), vec![0, 1, 2, 3]);
        assert_eq!(dec.stats().retransmits_rx, 1);
        assert_eq!(dec.stats().gap_events, 0);
        assert!(dec.take_nak().is_none());
    }

    #[test]
    fn control_frames_bypass_sequence_tracking() {
        use tonos_dsp::frame::{Hello, HelloAck};
        let chunks: Vec<PackedBits> = (0..2).map(|i| chunk(64, i)).collect();
        let (wire, bounds) = encode_stream(&chunks);
        // data0, hello, ack, data1 — control seq=0 must not look stale
        // or gap the data stream.
        let mut mixed = wire[..bounds[0]].to_vec();
        Hello {
            device_id: 9,
            nonce: 1,
            tag: 2,
        }
        .to_frame()
        .encode_into(&mut mixed);
        HelloAck { accepted: true }
            .to_frame()
            .encode_into(&mut mixed);
        mixed.extend_from_slice(&wire[bounds[0]..]);

        let mut events = Vec::new();
        let mut dec = FrameDecoder::new();
        dec.push(&mixed, &mut events);
        assert_eq!(delivered_seqs(&events), vec![0, 1]);
        assert_eq!(dec.stats().control_frames, 2);
        assert_eq!(dec.stats().gap_events, 0);
        assert_eq!(dec.stats().stale_frames, 0);
        let controls = events
            .iter()
            .filter(|e| matches!(e, LinkEvent::Control(_)))
            .count();
        assert_eq!(controls, 2);
    }
}

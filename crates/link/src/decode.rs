//! Host-side streaming frame decoder: resynchronization, CRC
//! verification, and sequence-gap detection.
//!
//! The decoder is push-based: feed it whatever bytes the transport
//! delivered — any split, any alignment — and it emits [`LinkEvent`]s.
//! Its contract is the crate's no-silent-corruption invariant:
//!
//! * A damaged frame never comes out as a [`LinkEvent::Frame`]; the
//!   CRC rejects it and the decoder scans forward to the next sync
//!   word (**resync**).
//! * A missing frame never goes unnoticed; the sequence number jump is
//!   reported as a [`LinkEvent::Gap`] carrying the number of lost
//!   modulator clocks (from the clock-index headers), which is what
//!   the pipeline's gap concealment consumes.
//! * A duplicated or reordered-stale frame is dropped, not replayed.

use tonos_dsp::frame::{CorruptReason, Frame, ParseOutcome, SYNC};
use tonos_telemetry::{names, Counter, Telemetry};

/// Keep at most this much undecodable prefix before compacting the
/// internal buffer.
const COMPACT_THRESHOLD: usize = 16 * 1024;

/// What the decoder tells the layer above.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkEvent {
    /// A CRC-verified, in-order frame.
    Frame(Frame),
    /// One or more frames were lost between the last delivered frame
    /// and the one that follows this event.
    Gap {
        /// Sequence number that was expected.
        expected_seq: u32,
        /// Sequence number that actually arrived.
        got_seq: u32,
        /// Frames missing (`got_seq - expected_seq`, mod 2³²).
        lost_frames: u32,
        /// Modulator clocks missing, from the clock-index headers.
        lost_clocks: u64,
    },
}

/// Plain (telemetry-independent) decoder statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecoderStats {
    /// Bytes pushed into the decoder.
    pub bytes: u64,
    /// CRC-verified frames delivered in order.
    pub frames: u64,
    /// CRC check failures (includes false syncs found while scanning).
    pub crc_failures: u64,
    /// Times the decoder lost framing and had to scan for sync.
    pub resyncs: u64,
    /// Sequence-gap events reported.
    pub gap_events: u64,
    /// Total frames lost across all gap events.
    pub lost_frames: u64,
    /// Duplicate or reordered-stale frames dropped.
    pub stale_frames: u64,
}

/// Push-based streaming decoder for the link frame format.
#[derive(Debug, Clone)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    pos: usize,
    /// `(seq, clock)` expected for the next in-order frame; `None`
    /// until the first frame of the stream arrives.
    expect: Option<(u32, u64)>,
    in_resync: bool,
    stats: DecoderStats,
    /// Stats as of the last telemetry flush; counters receive the delta
    /// once per [`FrameDecoder::push`], not one atomic op per frame.
    flushed: DecoderStats,
    frames_rx: Counter,
    bytes_rx: Counter,
    crc_fail: Counter,
    resyncs: Counter,
    gap_events: Counter,
    gap_frames: Counter,
    stale_frames: Counter,
}

impl Default for FrameDecoder {
    fn default() -> Self {
        FrameDecoder::new()
    }
}

impl FrameDecoder {
    /// A decoder with no telemetry attached.
    pub fn new() -> Self {
        FrameDecoder {
            buf: Vec::new(),
            pos: 0,
            expect: None,
            in_resync: false,
            stats: DecoderStats::default(),
            flushed: DecoderStats::default(),
            frames_rx: Counter::disabled(),
            bytes_rx: Counter::disabled(),
            crc_fail: Counter::disabled(),
            resyncs: Counter::disabled(),
            gap_events: Counter::disabled(),
            gap_frames: Counter::disabled(),
            stale_frames: Counter::disabled(),
        }
    }

    /// Reports receive-side counters (`link.frames_rx`, `link.crc_fail`,
    /// `link.resyncs`, `link.gap_events`, ...) into the given registry.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: &Telemetry) -> Self {
        self.frames_rx = telemetry.counter(names::LINK_FRAMES_RX);
        self.bytes_rx = telemetry.counter(names::LINK_BYTES_RX);
        self.crc_fail = telemetry.counter(names::LINK_CRC_FAIL);
        self.resyncs = telemetry.counter(names::LINK_RESYNCS);
        self.gap_events = telemetry.counter(names::LINK_GAP_EVENTS);
        self.gap_frames = telemetry.counter(names::LINK_GAP_FRAMES);
        self.stale_frames = telemetry.counter(names::LINK_STALE_FRAMES);
        // Counters report activity from attach time on, as before the
        // batched flush: don't credit pre-attach stats to the registry.
        self.flushed = self.stats;
        self
    }

    /// Decoder statistics so far.
    pub fn stats(&self) -> DecoderStats {
        self.stats
    }

    /// Bytes buffered but not yet decodable (partial frame tail).
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Feeds transport bytes in, appending decoded events to `events`.
    ///
    /// Any split of the byte stream decodes identically: the decoder
    /// buffers partial frames internally and is insensitive to where
    /// the transport fragments its reads.
    pub fn push(&mut self, bytes: &[u8], events: &mut Vec<LinkEvent>) {
        self.stats.bytes += bytes.len() as u64;
        self.buf.extend_from_slice(bytes);
        loop {
            let window = &self.buf[self.pos..];
            if window.is_empty() {
                break;
            }
            match Frame::parse(window) {
                ParseOutcome::NeedMore => break,
                ParseOutcome::Parsed { frame, consumed } => {
                    self.pos += consumed;
                    self.in_resync = false;
                    self.accept(frame, events);
                }
                ParseOutcome::Corrupt { reason } => {
                    if !self.in_resync {
                        self.in_resync = true;
                        self.stats.resyncs += 1;
                    }
                    if reason == CorruptReason::Crc {
                        self.stats.crc_failures += 1;
                    }
                    // Scan forward to the next candidate sync byte,
                    // at least one byte ahead of the rejected start.
                    let window = &self.buf[self.pos..];
                    let skip = window[1..]
                        .iter()
                        .position(|&b| b == SYNC[0])
                        .map_or(window.len(), |i| i + 1);
                    self.pos += skip;
                }
            }
        }
        // Reclaim the consumed prefix once it is worth a memmove.
        if self.pos >= COMPACT_THRESHOLD {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        // Batched telemetry flush: one atomic add per counter per chunk
        // instead of one per frame. At reader chunk sizes (~60 frames)
        // the per-frame atomics were the hot path's single biggest
        // telemetry cost; `stats` already holds exact plain-field
        // totals, so the counters just receive the delta.
        self.frames_rx.add(self.stats.frames - self.flushed.frames);
        self.bytes_rx.add(self.stats.bytes - self.flushed.bytes);
        self.crc_fail
            .add(self.stats.crc_failures - self.flushed.crc_failures);
        self.resyncs.add(self.stats.resyncs - self.flushed.resyncs);
        self.gap_events
            .add(self.stats.gap_events - self.flushed.gap_events);
        self.gap_frames
            .add(self.stats.lost_frames - self.flushed.lost_frames);
        self.stale_frames
            .add(self.stats.stale_frames - self.flushed.stale_frames);
        self.flushed = self.stats;
    }

    fn accept(&mut self, frame: Frame, events: &mut Vec<LinkEvent>) {
        if self.expect.is_none() && (frame.seq != 0 || frame.clock != 0) {
            // The stream was already running when we attached (or its
            // head was lost): everything before this frame is a gap, so
            // downstream sample indices stay aligned to the device
            // clock. Encoders start at sequence 0, clock 0.
            self.stats.gap_events += 1;
            self.stats.lost_frames += u64::from(frame.seq);
            events.push(LinkEvent::Gap {
                expected_seq: 0,
                got_seq: frame.seq,
                lost_frames: frame.seq,
                lost_clocks: frame.clock,
            });
        }
        if let Some((expected_seq, expected_clock)) = self.expect {
            let diff = frame.seq.wrapping_sub(expected_seq);
            if diff != 0 {
                // Forward jumps (mod 2³²) are gaps; backward jumps are
                // duplicates or reordered stragglers and are dropped —
                // the link has no reorder buffer (see ROADMAP).
                if diff < 0x8000_0000 {
                    let lost_clocks = frame.clock.saturating_sub(expected_clock);
                    self.stats.gap_events += 1;
                    self.stats.lost_frames += u64::from(diff);
                    events.push(LinkEvent::Gap {
                        expected_seq,
                        got_seq: frame.seq,
                        lost_frames: diff,
                        lost_clocks,
                    });
                } else {
                    self.stats.stale_frames += 1;
                    return;
                }
            }
        }
        self.expect = Some((
            frame.seq.wrapping_add(1),
            frame.clock + frame.payload_bits() as u64,
        ));
        self.stats.frames += 1;
        events.push(LinkEvent::Frame(frame));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::FrameEncoder;
    use tonos_dsp::bits::PackedBits;

    fn chunk(n: usize, phase: usize) -> PackedBits {
        (0..n).map(|i| (i + phase).is_multiple_of(3)).collect()
    }

    fn encode_stream(chunks: &[PackedBits]) -> (Vec<u8>, Vec<usize>) {
        let mut enc = FrameEncoder::new(1);
        let mut wire = Vec::new();
        let mut bounds = Vec::new();
        for c in chunks {
            enc.encode_into(c, &mut wire).unwrap();
            bounds.push(wire.len());
        }
        (wire, bounds)
    }

    #[test]
    fn byte_at_a_time_matches_one_shot() {
        let chunks: Vec<PackedBits> = (0..10).map(|i| chunk(100 + i, i)).collect();
        let (wire, _) = encode_stream(&chunks);

        let mut one = Vec::new();
        FrameDecoder::new().push(&wire, &mut one);

        let mut dec = FrameDecoder::new();
        let mut dribble = Vec::new();
        for b in &wire {
            dec.push(std::slice::from_ref(b), &mut dribble);
        }
        assert_eq!(one, dribble);
        assert_eq!(one.len(), 10);
        assert_eq!(dec.stats().frames, 10);
        assert_eq!(dec.stats().resyncs, 0);
    }

    #[test]
    fn corrupted_frame_is_rejected_and_framing_recovers() {
        let chunks: Vec<PackedBits> = (0..5).map(|i| chunk(128, i)).collect();
        let (mut wire, bounds) = encode_stream(&chunks);
        // Flip a payload byte inside frame 2.
        wire[bounds[1] + 30] ^= 0x40;

        let mut events = Vec::new();
        let mut dec = FrameDecoder::new();
        dec.push(&wire, &mut events);

        let frames: Vec<u32> = events
            .iter()
            .filter_map(|e| match e {
                LinkEvent::Frame(f) => Some(f.seq),
                LinkEvent::Gap { .. } => None,
            })
            .collect();
        assert_eq!(frames, vec![0, 1, 3, 4]);
        let gaps: Vec<(u32, u64)> = events
            .iter()
            .filter_map(|e| match e {
                LinkEvent::Gap {
                    lost_frames,
                    lost_clocks,
                    ..
                } => Some((*lost_frames, *lost_clocks)),
                LinkEvent::Frame(_) => None,
            })
            .collect();
        assert_eq!(gaps, vec![(1, 128)]);
        assert!(dec.stats().crc_failures >= 1);
        assert_eq!(dec.stats().resyncs, 1);
    }

    #[test]
    fn duplicates_and_stale_frames_are_dropped() {
        let chunks: Vec<PackedBits> = (0..3).map(|i| chunk(64, i)).collect();
        let (wire, bounds) = encode_stream(&chunks);
        // frame0, frame1, frame1 again, frame0 again, frame2.
        let mut replay = wire[..bounds[1]].to_vec();
        replay.extend_from_slice(&wire[bounds[0]..bounds[1]]);
        replay.extend_from_slice(&wire[..bounds[0]]);
        replay.extend_from_slice(&wire[bounds[1]..]);

        let mut events = Vec::new();
        let mut dec = FrameDecoder::new();
        dec.push(&replay, &mut events);
        let seqs: Vec<u32> = events
            .iter()
            .filter_map(|e| match e {
                LinkEvent::Frame(f) => Some(f.seq),
                LinkEvent::Gap { .. } => None,
            })
            .collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert_eq!(dec.stats().stale_frames, 2);
        assert_eq!(dec.stats().gap_events, 0);
    }

    #[test]
    fn garbage_between_frames_is_skipped() {
        let chunks: Vec<PackedBits> = (0..2).map(|i| chunk(64, i)).collect();
        let (wire, bounds) = encode_stream(&chunks);
        let mut noisy = wire[..bounds[0]].to_vec();
        // Garbage that includes sync-first bytes to force false-sync
        // probes.
        noisy.extend_from_slice(&[0x5A, 0x00, 0x5A, 0xDC, 0x13, 0x37, 0xFF]);
        noisy.extend_from_slice(&wire[bounds[0]..]);

        let mut events = Vec::new();
        let mut dec = FrameDecoder::new();
        dec.push(&noisy, &mut events);
        let frames = events
            .iter()
            .filter(|e| matches!(e, LinkEvent::Frame(_)))
            .count();
        assert_eq!(frames, 2);
        assert_eq!(dec.stats().resyncs, 1);
        assert_eq!(dec.stats().gap_events, 0);
    }
}

//! The chip-to-host link: what happens to the ΣΔ bitstream between the
//! die and the computer.
//!
//! The paper's measurement setup streams the modulator bitstream "over
//! USB to a computer system" (§2.2) and decimates on the host. Every
//! crate below this one pretends that hop is perfect — the modulator's
//! packed words flow straight into the decimation filter by function
//! call. This crate models the hop itself, split at the same boundary
//! the paper draws:
//!
//! * **Device side** ([`FrameEncoder`], [`DeviceSimulator`]): serialize
//!   packed ΣΔ chunks ([`tonos_dsp::bits::PackedBits`]) into
//!   self-delimiting wire frames ([`tonos_dsp::frame`]) carrying the
//!   element id, a sequence number, and the modulator clock index of
//!   the first payload bit.
//! * **Lossy transport** ([`FaultyTransport`]): a seeded, deterministic
//!   byte-stream mangler — bit flips, chunk drops, truncation,
//!   duplication, reordering, stalls — for exercising the receiver the
//!   way a flaky cable would.
//! * **Host side** ([`FrameDecoder`], [`HostPipeline`]): a push-based
//!   decoder that resynchronizes after corruption, verifies CRCs, and
//!   detects sequence gaps; above it, a pipeline that decimates clean
//!   payloads and *conceals* gaps under an explicit [`GapPolicy`] —
//!   concealed spans are flagged all the way into the
//!   [`OnlineAnalyzer`](tonos_core::stream::OnlineAnalyzer), where they
//!   suppress pressure alarms rather than silently firing them.
//! * **Stream provenance** ([`LinkKey`]): a keyed-MAC (SipHash-2-4)
//!   hello handshake — devices introduce themselves with a tagged
//!   `device_id ‖ nonce`, hosts verify against a pre-shared key, and a
//!   `require_auth` pipeline drops (and counts) data frames until a
//!   verified hello arrives.
//! * **Recovery** (reorder window + NAK retransmit): the decoder can
//!   buffer out-of-order frames inside a bounded window and request
//!   missing spans back from the device (`KIND_NAK`), which replays the
//!   exact original bytes from its retransmit history. A stream
//!   recovered within the window is **bit-identical** to a lossless
//!   one; beyond it, recovery degrades to the explicit-gap machinery.
//!   The byte-level rules live in the repo's `PROTOCOL.md`.
//! * **Ingest server** ([`LinkServer`]): a `std`-only TCP listener
//!   whose single non-blocking IO thread multiplexes every connection
//!   onto per-connection chunk actors on the fleet worker pool, with
//!   bounded per-connection queues, a slow-consumer disconnect policy,
//!   and best-effort control write-back (acks, NAKs) on each socket.
//! * **Live queries** ([`LinkDirectory`]): every connection publishes
//!   its [`LinkHealth`] into a directory entry after each chunk, so
//!   operators (and the `tonos-scope` endpoint's `/links`) can inspect
//!   per-connection counters *while* devices are ingesting instead of
//!   waiting for the fleet rollup at disconnect.
//!
//! The invariant the whole crate is built around: **no silent
//! corruption**. Every byte the transport damages either never reaches
//! the pipeline (CRC rejection) or reaches it flagged (gap
//! concealment); fault-free transport is bit-identical to the
//! in-process path.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod auth;
pub mod decode;
pub mod device;
pub mod encode;
pub mod fault;
pub mod pipeline;
pub mod query;
pub mod server;

pub use auth::LinkKey;
pub use decode::{DecoderStats, FrameDecoder, LinkEvent};
pub use device::DeviceSimulator;
pub use encode::FrameEncoder;
pub use fault::{FaultConfig, FaultyTransport};
pub use pipeline::{GapPolicy, HostPipeline, HostSample, LinkCalibration, LinkHealth, SampleFlag};
pub use query::{LinkAggregate, LinkDirectory, LinkEntry, LinkStatus};
pub use server::{IngestTap, LinkServer, LinkServerConfig, TapSession};

//! A `std`-only ingest server: one TCP connection per device, one
//! [`HostPipeline`] per connection, multiplexed by a single IO thread
//! over the fleet's worker pool.
//!
//! ## Shape
//!
//! * **One IO thread, any number of links.** The listener and every
//!   accepted socket are non-blocking; a readiness loop sweeps them
//!   round-robin — accept new connections, read whatever bytes are
//!   ready, hand each chunk to that connection's **chunk actor** on the
//!   [`FleetEngine`] pool ([`FleetEngine::open_actor`]). No
//!   thread-per-connection anywhere: thread count is `1 + workers`,
//!   constant from 1 link to 10k (the loopback sweep in
//!   `BENCH_link.json` gates exactly this).
//! * **Ordering without pinning.** A chunk actor is run by at most one
//!   worker at a time and sees chunks in push order, so each
//!   connection's pipeline state is single-threaded even though any
//!   worker may run it. Idle connections cost no worker at all —
//!   that is what lets a fixed pool carry thousands of links.
//! * **Backpressure is bounded.** Each actor's chunk queue is bounded.
//!   When a connection's queue is full the IO thread simply stops
//!   reading that socket (TCP pushes back on the device); if the queue
//!   stays full past a grace window the connection is evicted, bumping
//!   [`names::LINK_SLOW_CONSUMER_DISCONNECTS`] and journaling the
//!   eviction — an unbounded queue on a medical ingest path is a
//!   slow-motion out-of-memory abort.
//! * **The wire is bidirectional.** Each pipeline's control traffic —
//!   handshake acks and NAK retransmit requests
//!   ([`HostPipeline::drain_control_into`]) — is written back to the
//!   device best-effort on the same socket after every chunk. A lost
//!   NAK is re-requested on the next chunk; the device's decoder
//!   resyncs across any partial write.
//! * **Shutdown is cooperative.** [`LinkServer::shutdown`] flips a stop
//!   flag; the IO loop notices, closes every actor (queued chunks are
//!   still processed first), and the fleet engine is drained for its
//!   report and merged telemetry snapshot.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use tonos_core::stream::AlarmLimits;
use tonos_dsp::decimator::DecimatorConfig;
use tonos_fleet::{ActorEvent, ActorHandle, ChunkFull, FleetConfig, FleetEngine, FleetReport};
use tonos_telemetry::{names, Histogram, Registry, Severity, Telemetry, TelemetrySnapshot};

use crate::auth::LinkKey;
use crate::pipeline::{GapPolicy, HostPipeline, HostSample, LinkCalibration};
use crate::query::{LinkDirectory, LinkEntry, LinkStatus};

/// Identity of one ingesting connection as seen by an [`IngestTap`].
#[derive(Debug, Clone)]
pub struct TapSession {
    /// Fleet session id of the connection's chunk actor.
    pub conn_id: u64,
    /// Peer address string.
    pub peer: String,
    /// Device id from the connection's accepted hello handshake
    /// (`None` until one lands) — the routing key for consumers that
    /// track devices rather than sockets.
    pub device_id: Option<u64>,
    /// Output sample rate of the connection's pipeline, Hz.
    pub output_rate_hz: f64,
}

/// A consumer of every accepted connection's decoded output stream —
/// how the historian journals live ingest without the server knowing
/// anything about storage.
///
/// Calls arrive on fleet worker threads, one connection at a time per
/// connection (the chunk-actor ordering guarantee), but concurrently
/// across connections: implementations must be `Sync` and should do
/// bounded work per call (buffer and hand off, not block).
pub trait IngestTap: Send + Sync {
    /// Called after each ingested chunk with the samples it produced
    /// (may be empty when a chunk carried only control traffic).
    fn on_samples(&self, session: &TapSession, samples: &[HostSample]);

    /// Called exactly once when the connection's actor closes.
    fn on_closed(&self, session: &TapSession);
}

/// Socket read size and actor chunk granularity.
const READ_CHUNK: usize = 8 * 1024;

/// Reads taken from one socket per readiness sweep before moving on —
/// fairness cap so one firehose device cannot starve its neighbours.
const READS_PER_SWEEP: usize = 4;

/// Accepts taken per readiness sweep before the sockets get a turn.
const ACCEPTS_PER_SWEEP: usize = 64;

/// Idle-sweep sleep for the readiness loop.
const POLL: Duration = Duration::from_millis(5);

/// Ingest server configuration.
#[derive(Debug, Clone, Copy)]
pub struct LinkServerConfig {
    /// Fleet worker threads (0 = one per hardware thread). Connections
    /// are chunk actors — idle links occupy no worker — so the pool
    /// stays this size no matter how many devices connect.
    pub workers: usize,
    /// Bounded per-connection actor queue, in read chunks (≥ 1).
    pub queue_chunks: usize,
    /// How long a connection's queue may stay full — with the IO loop
    /// not reading its socket — before it is evicted as a slow
    /// consumer.
    pub slow_consumer_grace_ms: u64,
    /// Decimator configuration for every connection's pipeline.
    pub decimator: DecimatorConfig,
    /// Raw→mmHg calibration applied to every connection.
    pub calibration: LinkCalibration,
    /// Gap-concealment policy.
    pub policy: GapPolicy,
    /// Online alarm screening limits (`None` = no analyzer).
    pub alarm_limits: Option<AlarmLimits>,
    /// Decoder reorder window per connection, in frames (0 disables
    /// reordering and NAK-driven retransmit requests).
    pub reorder_window: u32,
    /// Pre-shared key for verifying device handshakes (`None` leaves
    /// hellos unverified).
    pub auth_key: Option<LinkKey>,
    /// With a key set: drop (and count) data frames until a verified
    /// handshake arrives on each connection.
    pub require_auth: bool,
}

impl Default for LinkServerConfig {
    /// Paper-default decimation, identity calibration, hold-last
    /// concealment, adult alarm limits, a 32-frame reorder window, no
    /// handshake enforcement.
    fn default() -> Self {
        LinkServerConfig {
            workers: 0,
            queue_chunks: 64,
            slow_consumer_grace_ms: 200,
            decimator: DecimatorConfig::paper_default(),
            calibration: LinkCalibration::identity(),
            policy: GapPolicy::HoldLast,
            alarm_limits: Some(AlarmLimits::adult()),
            reorder_window: 32,
            auth_key: None,
            require_auth: false,
        }
    }
}

/// A running ingest server.
///
/// Bind with [`LinkServer::bind`], learn the ephemeral port from
/// [`LinkServer::local_addr`], and finish with [`LinkServer::shutdown`]
/// for the fleet report and merged telemetry.
#[derive(Debug)]
pub struct LinkServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    connections: Arc<AtomicUsize>,
    fleet_registry: Registry,
    directory: Arc<LinkDirectory>,
    io_thread: Option<JoinHandle<(FleetReport, TelemetrySnapshot)>>,
}

impl LinkServer {
    /// Binds and starts accepting. `addr` follows
    /// [`TcpListener::bind`] conventions (`"127.0.0.1:0"` picks an
    /// ephemeral port).
    ///
    /// # Errors
    ///
    /// Propagates bind/configuration I/O failures.
    pub fn bind(addr: &str, config: LinkServerConfig) -> std::io::Result<Self> {
        LinkServer::bind_with_tap(addr, config, None)
    }

    /// [`LinkServer::bind`] with an [`IngestTap`] attached: every
    /// connection's decoded samples are offered to `tap` after each
    /// chunk, and the tap is told when each connection closes. The tap
    /// rides outside [`LinkServerConfig`] (which stays `Copy`).
    ///
    /// # Errors
    ///
    /// Propagates bind/configuration I/O failures.
    pub fn bind_with_tap(
        addr: &str,
        config: LinkServerConfig,
        tap: Option<Arc<dyn IngestTap>>,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let connections = Arc::new(AtomicUsize::new(0));
        let workers = if config.workers == 0 {
            FleetConfig::default().workers
        } else {
            config.workers
        };
        // The engine lives on the IO thread, but its registry and the
        // connection directory are created here so the server (and
        // anything it hands them to, like a scope endpoint) can query
        // live telemetry without touching the IO thread.
        let engine = FleetEngine::spawn(FleetConfig { workers });
        let fleet_registry = engine.registry().clone();
        let directory = Arc::new(LinkDirectory::new());
        let stop_io = Arc::clone(&stop);
        let conn_io = Arc::clone(&connections);
        let dir_io = Arc::clone(&directory);
        let io_thread = thread::spawn(move || {
            io_loop(&listener, engine, &dir_io, &config, tap, &stop_io, &conn_io)
        });
        Ok(LinkServer {
            addr: local,
            stop,
            connections,
            fleet_registry,
            directory,
            io_thread: Some(io_thread),
        })
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections accepted so far — lets tests and operators confirm
    /// devices landed before shutting down.
    pub fn connections(&self) -> usize {
        self.connections.load(Ordering::SeqCst)
    }

    /// IO threads multiplexing the sockets — always 1, independent of
    /// connection count. Exposed so benchmarks and operators can assert
    /// the no-thread-per-connection property.
    pub fn io_threads(&self) -> usize {
        1
    }

    /// The fleet-level registry backing this server: engine counters
    /// live from the start, per-session telemetry folded in at rollup.
    /// Scrape it (e.g. through a `tonos-scope` endpoint) while the
    /// server runs.
    pub fn fleet_registry(&self) -> &Registry {
        &self.fleet_registry
    }

    /// The live connection directory: every accepted connection's
    /// [`LinkStatus`], updated per ingested chunk.
    pub fn directory(&self) -> Arc<LinkDirectory> {
        Arc::clone(&self.directory)
    }

    /// Point-in-time status of every connection, mid-ingest included.
    pub fn links(&self) -> Vec<LinkStatus> {
        self.directory.snapshot()
    }

    /// Stops accepting, drains every connection to completion, and
    /// returns the fleet report (one session per connection) plus the
    /// merged telemetry snapshot.
    pub fn shutdown(mut self) -> (FleetReport, TelemetrySnapshot) {
        self.stop.store(true, Ordering::SeqCst);
        let handle = self
            .io_thread
            .take()
            .expect("IO thread present until shutdown");
        handle.join().expect("IO thread never panics")
    }
}

impl Drop for LinkServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.io_thread.take() {
            let _ = handle.join();
        }
    }
}

/// One multiplexed connection's IO-side state.
struct Conn {
    stream: TcpStream,
    peer: SocketAddr,
    actor: ActorHandle,
    /// A chunk the actor queue refused; retried until it fits or the
    /// grace window expires. While set, the socket is not read —
    /// backpressure propagates to the device through TCP.
    pending: Option<Vec<u8>>,
    full_since: Option<Instant>,
    /// Socket finished (EOF, error, eviction): actor closed, awaiting
    /// removal from the sweep.
    done: bool,
}

/// The single IO thread: a hand-rolled readiness loop over the
/// non-blocking listener and every connection socket.
fn io_loop(
    listener: &TcpListener,
    mut engine: FleetEngine,
    directory: &Arc<LinkDirectory>,
    config: &LinkServerConfig,
    tap: Option<Arc<dyn IngestTap>>,
    stop: &Arc<AtomicBool>,
    connections: &AtomicUsize,
) -> (FleetReport, TelemetrySnapshot) {
    let fleet_tel = engine.telemetry();
    let queue_depth = fleet_tel.histogram(
        names::LINK_QUEUE_DEPTH,
        &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0],
    );
    let grace = Duration::from_millis(config.slow_consumer_grace_ms);
    let mut conns: Vec<Conn> = Vec::new();
    let mut buf = vec![0u8; READ_CHUNK];
    while !stop.load(Ordering::SeqCst) {
        let mut progressed = false;
        // Admit new devices, a bounded batch per sweep.
        for _ in 0..ACCEPTS_PER_SWEEP {
            match listener.accept() {
                Ok((stream, peer)) => {
                    progressed = true;
                    connections.fetch_add(1, Ordering::SeqCst);
                    fleet_tel.counter(names::LINK_CONNECTIONS).inc();
                    match open_connection(
                        &mut engine,
                        directory,
                        config,
                        tap.clone(),
                        &fleet_tel,
                        stream,
                        peer,
                    ) {
                        Ok(conn) => conns.push(conn),
                        Err(e) => {
                            fleet_tel.event(Severity::Warning, "link.server", || {
                                format!("connection setup failed for {peer}: {e}")
                            });
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) => {
                    // ECONNABORTED, EINTR, EMFILE under fd pressure...:
                    // a transient accept failure must not silently stop
                    // the ward from admitting devices. Journal it and
                    // keep listening; the stop flag is the only exit.
                    fleet_tel.counter(names::LINK_ACCEPT_ERRORS).inc();
                    fleet_tel.event(Severity::Warning, "link.server", || {
                        format!("accept error ({e}); still listening")
                    });
                    break;
                }
            }
        }
        // Sweep the sockets round-robin.
        for conn in &mut conns {
            if conn.done {
                continue;
            }
            if sweep_conn(conn, &mut buf, grace, &queue_depth, &fleet_tel) {
                progressed = true;
            }
        }
        conns.retain(|c| !c.done);
        // Fold any finished sessions into the fleet rollup now, so live
        // scrapes of the fleet registry see completed-session telemetry
        // promptly instead of only at shutdown.
        engine.poll_finished();
        if !progressed {
            thread::sleep(POLL);
        }
    }
    // Cooperative shutdown: close every actor (queued chunks are still
    // processed before each Closed event), then drain the pool.
    for conn in &conns {
        conn.actor.close();
    }
    drop(conns);
    let report = engine.drain();
    let snapshot = engine.snapshot();
    (report, snapshot)
}

/// Services one connection for one sweep: retry a refused chunk, evict
/// on expired grace, read up to [`READS_PER_SWEEP`] chunks. Returns
/// whether any progress was made.
fn sweep_conn(
    conn: &mut Conn,
    buf: &mut [u8],
    grace: Duration,
    queue_depth: &Histogram,
    fleet_tel: &Telemetry,
) -> bool {
    let mut progressed = false;
    // A refused chunk gets first claim on the queue.
    if let Some(chunk) = conn.pending.take() {
        match conn.actor.try_push_chunk(chunk) {
            Ok(()) => {
                progressed = true;
                conn.full_since = None;
                queue_depth.record(conn.actor.queue_len() as f64);
            }
            Err(ChunkFull(back)) => {
                let since = *conn.full_since.get_or_insert_with(Instant::now);
                if since.elapsed() >= grace {
                    // Slow consumer: evict rather than buffer without
                    // bound. Closing the actor lets the session
                    // summarize everything ingested so far.
                    fleet_tel
                        .counter(names::LINK_SLOW_CONSUMER_DISCONNECTS)
                        .inc();
                    let peer = conn.peer;
                    fleet_tel.event(Severity::Warning, "link.server", || {
                        format!("slow consumer {peer}: queue full past grace, disconnecting")
                    });
                    conn.actor.close();
                    conn.done = true;
                    return true;
                }
                conn.pending = Some(back);
                return false;
            }
        }
    }
    for _ in 0..READS_PER_SWEEP {
        match conn.stream.read(buf) {
            Ok(0) => {
                // Clean EOF: the device is done; let the actor drain
                // its queue and summarize.
                conn.actor.close();
                conn.done = true;
                return true;
            }
            Ok(n) => {
                progressed = true;
                match conn.actor.try_push_chunk(buf[..n].to_vec()) {
                    Ok(()) => {
                        queue_depth.record(conn.actor.queue_len() as f64);
                    }
                    Err(ChunkFull(back)) => {
                        // Queue full: park the chunk and stop reading
                        // this socket; TCP backpressure does the rest.
                        conn.pending = Some(back);
                        conn.full_since = Some(Instant::now());
                        return true;
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.actor.close();
                conn.done = true;
                return true;
            }
        }
    }
    progressed
}

/// Registers a directory entry and opens the connection's chunk actor.
fn open_connection(
    engine: &mut FleetEngine,
    directory: &Arc<LinkDirectory>,
    config: &LinkServerConfig,
    tap: Option<Arc<dyn IngestTap>>,
    fleet_tel: &Telemetry,
    stream: TcpStream,
    peer: SocketAddr,
) -> std::io::Result<Conn> {
    stream.set_nonblocking(true)?;
    // The actor writes control frames (handshake acks, NAKs) back to
    // the device on its own clone of the socket; writes are best-effort
    // and never block a worker.
    let write_half = stream.try_clone()?;
    let entry = directory.register(peer.to_string(), fleet_tel.now());
    let handler = ingest_actor(*config, Arc::clone(&entry), tap, write_half);
    let actor = engine.open_actor(format!("link:{peer}"), config.queue_chunks.max(1), handler);
    Ok(Conn {
        stream,
        peer,
        actor,
        pending: None,
        full_since: None,
        done: false,
    })
}

/// Builds the per-connection chunk-actor handler: a [`HostPipeline`]
/// fed chunk-by-chunk, publishing health after every chunk and writing
/// control frames back to the device.
fn ingest_actor(
    config: LinkServerConfig,
    entry: Arc<LinkEntry>,
    tap: Option<Arc<dyn IngestTap>>,
    mut write_half: TcpStream,
) -> impl FnMut(
    ActorEvent<'_>,
    &tonos_fleet::SessionContext,
) -> Option<Result<tonos_fleet::SessionSummary, String>>
       + Send
       + 'static {
    let mut pipe: Option<HostPipeline> = None;
    let mut failed: Option<String> = None;
    let mut samples = Vec::new();
    let mut control = Vec::new();
    move |event, ctx| {
        match event {
            ActorEvent::Chunk(bytes) => {
                if failed.is_some() {
                    return None; // construction failed; report at close
                }
                let pipe = match &mut pipe {
                    Some(p) => p,
                    None => match build_pipeline(&config, &ctx.telemetry) {
                        Ok(p) => pipe.insert(p),
                        Err(e) => {
                            failed = Some(e);
                            return None;
                        }
                    },
                };
                samples.clear();
                pipe.push_bytes(bytes, &mut samples);
                // Publish after every chunk so mid-ingest queries see
                // counters move; `LinkHealth` is `Copy`, one short lock
                // per chunk.
                entry.publish(pipe.health());
                if let Some(tap) = &tap {
                    if !samples.is_empty() {
                        tap.on_samples(
                            &TapSession {
                                conn_id: ctx.id,
                                peer: entry.peer().to_string(),
                                device_id: pipe.device_id(),
                                output_rate_hz: pipe.output_rate_hz(),
                            },
                            &samples,
                        );
                    }
                }
                // Bidirectional wire: ship queued acks and NAKs back to
                // the device. Best-effort — a WouldBlock or broken pipe
                // drops the control bytes, and the next chunk's NAK
                // re-requests anything still missing.
                control.clear();
                if pipe.drain_control_into(&mut control) {
                    let _ = write_half.write(&control);
                }
                None
            }
            ActorEvent::Closed => {
                // Whatever happened — clean EOF, eviction, construction
                // failure — the directory entry must not stay "live"
                // after the session ends.
                entry.disconnect();
                if let Some(tap) = &tap {
                    tap.on_closed(&TapSession {
                        conn_id: ctx.id,
                        peer: entry.peer().to_string(),
                        device_id: pipe.as_ref().and_then(HostPipeline::device_id),
                        output_rate_hz: config.decimator.output_rate(),
                    });
                }
                if let Some(why) = failed.take() {
                    return Some(Err(why));
                }
                let Some(pipe) = &mut pipe else {
                    // Connection closed before its first chunk.
                    return Some(Ok(tonos_fleet::SessionSummary::from_stream(
                        0,
                        0.0,
                        0.0,
                        0.0,
                        0,
                        config.decimator.output_rate(),
                        0,
                    )));
                };
                let health = pipe.health();
                entry.publish(health);
                ctx.telemetry.event(Severity::Info, "link.server", || {
                    format!(
                        "session closed: {} frames, {} samples ({} concealed/invalid), \
                         {} beats, {} alarms",
                        health.decoder.frames,
                        health.samples(),
                        health.concealed_samples + health.invalid_samples,
                        health.beats,
                        health.alarms,
                    )
                });
                Some(Ok(tonos_fleet::SessionSummary::from_stream(
                    health.beats as usize,
                    health.pulse_rate_bpm,
                    health.mean_systolic_mmhg,
                    health.mean_diastolic_mmhg,
                    health.samples() as usize,
                    pipe.output_rate_hz(),
                    health.alarms as usize,
                )))
            }
        }
    }
}

/// Builds one connection's pipeline from the server configuration.
fn build_pipeline(
    config: &LinkServerConfig,
    telemetry: &Telemetry,
) -> Result<HostPipeline, String> {
    let mut pipe = HostPipeline::new(&config.decimator, config.calibration, config.policy)
        .map_err(|e| e.to_string())?
        .with_reorder_window(config.reorder_window);
    if let Some(key) = config.auth_key {
        pipe = pipe.with_auth(key, config.require_auth);
    }
    if let Some(limits) = config.alarm_limits {
        pipe = pipe.with_analyzer(limits).map_err(|e| e.to_string())?;
    }
    Ok(pipe.with_telemetry(telemetry))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_binds_accepts_and_reports() {
        let server = LinkServer::bind("127.0.0.1:0", LinkServerConfig::default()).unwrap();
        let addr = server.local_addr();
        assert_eq!(server.io_threads(), 1);

        // A device that sends two valid frames and disconnects.
        let mut enc = crate::encode::FrameEncoder::new(0);
        let bits: tonos_dsp::bits::PackedBits = (0..256).map(|i| i % 3 == 0).collect();
        let mut wire = Vec::new();
        enc.encode_into(&bits, &mut wire).unwrap();
        enc.encode_into(&bits, &mut wire).unwrap();
        {
            let mut conn = TcpStream::connect(addr).unwrap();
            conn.write_all(&wire).unwrap();
        }
        while server.connections() < 1 {
            thread::sleep(POLL);
        }
        // Give the IO loop a beat to drain the socket to EOF.
        thread::sleep(Duration::from_millis(100));

        let (report, snapshot) = server.shutdown();
        assert_eq!(report.sessions.len(), 1);
        let summary = report.sessions[0].outcome.summary().unwrap();
        assert_eq!(summary.samples, 4); // 512 bits at OSR 128
        let frames_rx = snapshot
            .counters
            .iter()
            .find(|c| c.name == names::LINK_FRAMES_RX)
            .map_or(0, |c| c.value);
        assert_eq!(frames_rx, 2);
    }
}

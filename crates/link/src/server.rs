//! A `std`-only concurrent ingest server: one TCP connection per
//! device, one [`HostPipeline`] per connection, run on the fleet's
//! worker pool.
//!
//! ## Shape
//!
//! * An **accept thread** owns the listener and a [`FleetEngine`]. Each
//!   accepted connection gets a dedicated **reader thread** (sockets
//!   block; pipelines shouldn't) and one ingest task pushed onto the
//!   fleet pool via [`FleetEngine::push_task`] — so ingest sessions get
//!   the fleet's panic isolation, per-session telemetry registries, and
//!   rollup for free, and appear in the final
//!   [`FleetReport`] next to simulated
//!   sessions. Because an ingest task occupies its worker for the whole
//!   connection lifetime, the accept loop grows the pool
//!   ([`FleetEngine::ensure_workers`]) so every live connection has a
//!   worker — more simultaneous devices than the initial pool size can
//!   never starve a session into a spurious slow-consumer eviction.
//! * **Backpressure is bounded.** Reader and pipeline are coupled by a
//!   bounded channel of byte chunks. When the pipeline can't keep up,
//!   the reader waits out a short grace window and then *disconnects*
//!   the device, bumping [`names::LINK_SLOW_CONSUMER_DISCONNECTS`] and
//!   journaling the eviction — an unbounded queue on a medical ingest
//!   path is a slow-motion out-of-memory abort.
//! * **Shutdown is cooperative.** [`LinkServer::shutdown`] flips a stop
//!   flag; the accept loop (non-blocking) and readers (read timeouts)
//!   notice, drain, and the fleet engine is shut down for its report
//!   and merged telemetry snapshot.

use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use tonos_core::stream::AlarmLimits;
use tonos_dsp::decimator::DecimatorConfig;
use tonos_fleet::{FleetConfig, FleetEngine, FleetReport};
use tonos_telemetry::{names, Registry, Severity, Telemetry, TelemetrySnapshot};

use crate::pipeline::{GapPolicy, HostPipeline, LinkCalibration};
use crate::query::{LinkDirectory, LinkEntry, LinkStatus};

/// Socket read size and channel chunk granularity.
const READ_CHUNK: usize = 8 * 1024;

/// Poll interval for the non-blocking accept loop and reader timeouts.
const POLL: Duration = Duration::from_millis(5);

/// Ingest server configuration.
#[derive(Debug, Clone, Copy)]
pub struct LinkServerConfig {
    /// Initial fleet worker threads (0 = one per hardware thread). The
    /// pool grows on demand so every live connection has a worker; this
    /// only sizes the pool the server starts with.
    pub workers: usize,
    /// Bounded per-connection queue, in read chunks (≥ 1).
    pub queue_chunks: usize,
    /// How long a reader waits on a full queue before evicting the
    /// connection as a slow consumer.
    pub slow_consumer_grace_ms: u64,
    /// Decimator configuration for every connection's pipeline.
    pub decimator: DecimatorConfig,
    /// Raw→mmHg calibration applied to every connection.
    pub calibration: LinkCalibration,
    /// Gap-concealment policy.
    pub policy: GapPolicy,
    /// Online alarm screening limits (`None` = no analyzer).
    pub alarm_limits: Option<AlarmLimits>,
}

impl Default for LinkServerConfig {
    /// Paper-default decimation, identity calibration, hold-last
    /// concealment, adult alarm limits.
    fn default() -> Self {
        LinkServerConfig {
            workers: 0,
            queue_chunks: 64,
            slow_consumer_grace_ms: 200,
            decimator: DecimatorConfig::paper_default(),
            calibration: LinkCalibration::identity(),
            policy: GapPolicy::HoldLast,
            alarm_limits: Some(AlarmLimits::adult()),
        }
    }
}

/// A running ingest server.
///
/// Bind with [`LinkServer::bind`], learn the ephemeral port from
/// [`LinkServer::local_addr`], and finish with [`LinkServer::shutdown`]
/// for the fleet report and merged telemetry.
#[derive(Debug)]
pub struct LinkServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    connections: Arc<AtomicUsize>,
    fleet_registry: Registry,
    directory: Arc<LinkDirectory>,
    accept_thread: Option<JoinHandle<(FleetReport, TelemetrySnapshot)>>,
}

impl LinkServer {
    /// Binds and starts accepting. `addr` follows
    /// [`TcpListener::bind`] conventions (`"127.0.0.1:0"` picks an
    /// ephemeral port).
    ///
    /// # Errors
    ///
    /// Propagates bind/configuration I/O failures.
    pub fn bind(addr: &str, config: LinkServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let connections = Arc::new(AtomicUsize::new(0));
        let workers = if config.workers == 0 {
            FleetConfig::default().workers
        } else {
            config.workers
        };
        // The engine lives on the accept thread, but its registry and
        // the connection directory are created here so the server (and
        // anything it hands them to, like a scope endpoint) can query
        // live telemetry without touching the accept thread.
        let engine = FleetEngine::spawn(FleetConfig { workers });
        let fleet_registry = engine.registry().clone();
        let directory = Arc::new(LinkDirectory::new());
        let stop_accept = Arc::clone(&stop);
        let conn_accept = Arc::clone(&connections);
        let dir_accept = Arc::clone(&directory);
        let accept_thread = thread::spawn(move || {
            accept_loop(
                &listener,
                engine,
                &dir_accept,
                &config,
                &stop_accept,
                &conn_accept,
            )
        });
        Ok(LinkServer {
            addr: local,
            stop,
            connections,
            fleet_registry,
            directory,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections accepted so far — lets tests and operators confirm
    /// devices landed before shutting down.
    pub fn connections(&self) -> usize {
        self.connections.load(Ordering::SeqCst)
    }

    /// The fleet-level registry backing this server: engine counters
    /// live from the start, per-session telemetry folded in at rollup.
    /// Scrape it (e.g. through a `tonos-scope` endpoint) while the
    /// server runs.
    pub fn fleet_registry(&self) -> &Registry {
        &self.fleet_registry
    }

    /// The live connection directory: every accepted connection's
    /// [`LinkStatus`], updated per ingested chunk.
    pub fn directory(&self) -> Arc<LinkDirectory> {
        Arc::clone(&self.directory)
    }

    /// Point-in-time status of every connection, mid-ingest included.
    pub fn links(&self) -> Vec<LinkStatus> {
        self.directory.snapshot()
    }

    /// Stops accepting, drains every connection to completion, and
    /// returns the fleet report (one session per connection) plus the
    /// merged telemetry snapshot.
    pub fn shutdown(mut self) -> (FleetReport, TelemetrySnapshot) {
        self.stop.store(true, Ordering::SeqCst);
        let handle = self
            .accept_thread
            .take()
            .expect("accept thread present until shutdown");
        handle.join().expect("accept thread never panics")
    }
}

impl Drop for LinkServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    mut engine: FleetEngine,
    directory: &Arc<LinkDirectory>,
    config: &LinkServerConfig,
    stop: &Arc<AtomicBool>,
    connections: &AtomicUsize,
) -> (FleetReport, TelemetrySnapshot) {
    let fleet_tel = engine.telemetry();
    let mut readers: Vec<JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, peer)) => {
                connections.fetch_add(1, Ordering::SeqCst);
                fleet_tel.counter(names::LINK_CONNECTIONS).inc();
                // An ingest session occupies its worker for the whole
                // connection lifetime, so a fixed pool would starve
                // every connection past `workers`: collect what has
                // finished and grow the pool so each live session has a
                // worker of its own.
                engine.poll_finished();
                engine.ensure_workers(engine.pending() + 1);
                let entry = directory.register(peer.to_string(), fleet_tel.now());
                spawn_connection(
                    &mut engine,
                    &fleet_tel,
                    entry,
                    stream,
                    peer,
                    config,
                    stop,
                    &mut readers,
                );
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                // Idle beat: fold any finished sessions into the fleet
                // rollup now, so live scrapes of the fleet registry see
                // completed-session telemetry promptly instead of at
                // the next accept or shutdown.
                engine.poll_finished();
                thread::sleep(POLL);
            }
            Err(e) => {
                // ECONNABORTED, EINTR, EMFILE under fd pressure, ...: a
                // transient accept failure must not silently stop the
                // ward from admitting devices. Journal it, back off,
                // keep listening; the stop flag is the only exit.
                fleet_tel.counter(names::LINK_ACCEPT_ERRORS).inc();
                fleet_tel.event(Severity::Warning, "link.server", || {
                    format!("accept error ({e}); still listening")
                });
                thread::sleep(POLL);
            }
        }
    }
    for reader in readers {
        let _ = reader.join();
    }
    let report = engine.drain();
    let snapshot = engine.snapshot();
    (report, snapshot)
}

#[allow(clippy::too_many_arguments)]
fn spawn_connection(
    engine: &mut FleetEngine,
    fleet_tel: &Telemetry,
    entry: Arc<LinkEntry>,
    stream: TcpStream,
    peer: SocketAddr,
    config: &LinkServerConfig,
    stop: &Arc<AtomicBool>,
    readers: &mut Vec<JoinHandle<()>>,
) {
    let (tx, rx) = sync_channel::<Vec<u8>>(config.queue_chunks.max(1));
    let depth = Arc::new(AtomicUsize::new(0));

    let reader_tel = fleet_tel.clone();
    let reader_depth = Arc::clone(&depth);
    let reader_stop = Arc::clone(stop);
    let grace = Duration::from_millis(config.slow_consumer_grace_ms);
    readers.push(thread::spawn(move || {
        reader_loop(
            stream,
            peer,
            &tx,
            &reader_depth,
            grace,
            &reader_tel,
            &reader_stop,
        );
    }));

    let cfg = *config;
    engine.push_task(format!("link:{peer}"), move |ctx| {
        ingest_session(&rx, &depth, &cfg, &entry, &ctx.telemetry)
    });
}

/// Reads the socket until EOF/error/eviction, pushing chunks into the
/// bounded queue. Dropping `tx` is what ends the ingest task.
#[allow(clippy::too_many_arguments)]
fn reader_loop(
    mut stream: TcpStream,
    peer: SocketAddr,
    tx: &SyncSender<Vec<u8>>,
    depth: &AtomicUsize,
    grace: Duration,
    fleet_tel: &Telemetry,
    stop: &AtomicBool,
) {
    let _ = stream.set_read_timeout(Some(POLL * 20));
    let queue_depth = fleet_tel.histogram(
        names::LINK_QUEUE_DEPTH,
        &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0],
    );
    let mut buf = vec![0u8; READ_CHUNK];
    loop {
        let n = match stream.read(&mut buf) {
            Ok(0) => return, // clean EOF
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Timeout: the channel sender staying alive keeps the
                // session open; poll again unless the server is
                // shutting down (otherwise an idle client would make
                // shutdown's reader join hang forever).
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        };
        let mut chunk = buf[..n].to_vec();
        let deadline = std::time::Instant::now() + grace;
        loop {
            match tx.try_send(chunk) {
                Ok(()) => {
                    queue_depth.record(depth.fetch_add(1, Ordering::SeqCst) as f64 + 1.0);
                    break;
                }
                Err(TrySendError::Disconnected(_)) => return, // session died
                Err(TrySendError::Full(back)) => {
                    if std::time::Instant::now() >= deadline {
                        // Slow consumer: evict rather than buffer
                        // without bound. Dropping the stream + sender
                        // tears the session down; its summary still
                        // reports everything ingested so far.
                        fleet_tel
                            .counter(names::LINK_SLOW_CONSUMER_DISCONNECTS)
                            .inc();
                        fleet_tel.event(Severity::Warning, "link.server", || {
                            format!("slow consumer {peer}: queue full past grace, disconnecting")
                        });
                        return;
                    }
                    chunk = back;
                    thread::sleep(POLL);
                }
            }
        }
    }
}

/// The per-connection fleet task: drain the chunk queue through a
/// [`HostPipeline`], then summarize.
fn ingest_session(
    rx: &Receiver<Vec<u8>>,
    depth: &AtomicUsize,
    config: &LinkServerConfig,
    entry: &LinkEntry,
    telemetry: &Telemetry,
) -> Result<tonos_fleet::SessionSummary, String> {
    let result = ingest_stream(rx, depth, config, entry, telemetry);
    // Whatever happened — clean EOF, eviction, construction failure —
    // the directory entry must not stay "live" after the session ends.
    entry.disconnect();
    result
}

/// The fallible body of [`ingest_session`].
fn ingest_stream(
    rx: &Receiver<Vec<u8>>,
    depth: &AtomicUsize,
    config: &LinkServerConfig,
    entry: &LinkEntry,
    telemetry: &Telemetry,
) -> Result<tonos_fleet::SessionSummary, String> {
    let mut pipe = HostPipeline::new(&config.decimator, config.calibration, config.policy)
        .map_err(|e| e.to_string())?;
    if let Some(limits) = config.alarm_limits {
        pipe = pipe.with_analyzer(limits).map_err(|e| e.to_string())?;
    }
    pipe = pipe.with_telemetry(telemetry);
    let mut samples = Vec::new();
    while let Ok(chunk) = rx.recv() {
        depth.fetch_sub(1, Ordering::SeqCst);
        samples.clear();
        pipe.push_bytes(&chunk, &mut samples);
        // Publish after every chunk so mid-ingest queries see counters
        // move; `LinkHealth` is `Copy`, one short lock per chunk.
        entry.publish(pipe.health());
    }
    let health = pipe.health();
    entry.publish(health);
    telemetry.event(Severity::Info, "link.server", || {
        format!(
            "session closed: {} frames, {} samples ({} concealed/invalid), {} beats, {} alarms",
            health.decoder.frames,
            health.samples(),
            health.concealed_samples + health.invalid_samples,
            health.beats,
            health.alarms,
        )
    });
    Ok(tonos_fleet::SessionSummary::from_stream(
        health.beats as usize,
        health.pulse_rate_bpm,
        health.mean_systolic_mmhg,
        health.mean_diastolic_mmhg,
        health.samples() as usize,
        pipe.output_rate_hz(),
        health.alarms as usize,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn server_binds_accepts_and_reports() {
        let server = LinkServer::bind("127.0.0.1:0", LinkServerConfig::default()).unwrap();
        let addr = server.local_addr();

        // A device that sends two valid frames and disconnects.
        let mut enc = crate::encode::FrameEncoder::new(0);
        let bits: tonos_dsp::bits::PackedBits = (0..256).map(|i| i % 3 == 0).collect();
        let mut wire = Vec::new();
        enc.encode_into(&bits, &mut wire).unwrap();
        enc.encode_into(&bits, &mut wire).unwrap();
        {
            let mut conn = TcpStream::connect(addr).unwrap();
            conn.write_all(&wire).unwrap();
        }
        while server.connections() < 1 {
            thread::sleep(POLL);
        }
        // Give the reader a beat to drain the socket to EOF.
        thread::sleep(Duration::from_millis(100));

        let (report, snapshot) = server.shutdown();
        assert_eq!(report.sessions.len(), 1);
        let summary = report.sessions[0].outcome.summary().unwrap();
        assert_eq!(summary.samples, 4); // 512 bits at OSR 128
        let frames_rx = snapshot
            .counters
            .iter()
            .find(|c| c.name == names::LINK_FRAMES_RX)
            .map_or(0, |c| c.value);
        assert_eq!(frames_rx, 2);
    }
}

//! Device-side frame serialization.
//!
//! The encoder is the only stateful thing on the device side of the
//! link: it owns the stream's sequence number and modulator clock
//! cursor, so every chunk the device hands it comes out as a
//! well-formed [`Frame`] whose header lets the
//! host reconstruct exactly *where* in the modulator timeline the
//! payload sits — the property gap concealment is built on.

use std::collections::VecDeque;

use tonos_dsp::bits::PackedBits;
use tonos_dsp::frame::{Frame, SeqRange};
use tonos_dsp::DspError;
use tonos_telemetry::{names, Counter, Telemetry};

/// Hard ceiling on the retransmit window (frames of history kept).
pub const MAX_RETRANSMIT_WINDOW: usize = 1024;

/// Serializes packed ΣΔ chunks into wire frames, tracking the stream's
/// sequence number and modulator clock index.
///
/// One encoder per bitstream (per selected element). Sequence numbers
/// wrap at `u32::MAX`; the clock index is the running count of payload
/// bits ever encoded, i.e. the modulator clock of each frame's first
/// bit.
///
/// With [`FrameEncoder::with_retransmit_window`], the encoder keeps the
/// last N encoded frames and can replay them on request
/// ([`FrameEncoder::retransmit_into`]) when the host NAKs a missing
/// span — recovery instead of concealment.
#[derive(Debug, Clone)]
pub struct FrameEncoder {
    element: u16,
    next_seq: u32,
    clock: u64,
    /// Ring of `(seq, encoded bytes)` for the last `retransmit_window`
    /// frames; empty when the window is 0.
    history: VecDeque<(u32, Vec<u8>)>,
    retransmit_window: usize,
    retransmits_tx: u64,
    frames_tx: Counter,
    bytes_tx: Counter,
}

impl FrameEncoder {
    /// An encoder for the given element's bitstream, starting at
    /// sequence 0, clock 0.
    pub fn new(element: u16) -> Self {
        FrameEncoder {
            element,
            next_seq: 0,
            clock: 0,
            history: VecDeque::new(),
            retransmit_window: 0,
            retransmits_tx: 0,
            frames_tx: Counter::disabled(),
            bytes_tx: Counter::disabled(),
        }
    }

    /// Keeps the last `window` encoded frames (clamped to
    /// [`MAX_RETRANSMIT_WINDOW`]; 0 disables history) for NAK-driven
    /// replay via [`FrameEncoder::retransmit_into`].
    #[must_use]
    pub fn with_retransmit_window(mut self, window: usize) -> Self {
        self.retransmit_window = window.min(MAX_RETRANSMIT_WINDOW);
        self.history.truncate(self.retransmit_window);
        self
    }

    /// Frames replayed so far in response to NAKs.
    pub fn retransmits_tx(&self) -> u64 {
        self.retransmits_tx
    }

    /// Replays every frame of `range` still in the retransmit window,
    /// appending their wire bytes to `out`. Returns how many frames
    /// were actually replayed — fewer than `range.count` when part of
    /// the span has already aged out of the window (the host's gap
    /// concealment covers what the window no longer can).
    pub fn retransmit_into(&mut self, range: SeqRange, out: &mut Vec<u8>) -> u32 {
        let mut sent = 0u32;
        for k in 0..range.count {
            let seq = range.first.wrapping_add(k);
            if let Some((_, bytes)) = self.history.iter().find(|(s, _)| *s == seq) {
                out.extend_from_slice(bytes);
                sent += 1;
            }
        }
        self.retransmits_tx += u64::from(sent);
        sent
    }

    /// Reports transmit counters ([`names::LINK_FRAMES_TX`],
    /// [`names::LINK_BYTES_TX`]) into the given registry.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: &Telemetry) -> Self {
        self.frames_tx = telemetry.counter(names::LINK_FRAMES_TX);
        self.bytes_tx = telemetry.counter(names::LINK_BYTES_TX);
        self
    }

    /// The element id stamped into every frame.
    pub fn element(&self) -> u16 {
        self.element
    }

    /// Sequence number the next frame will carry.
    pub fn next_seq(&self) -> u32 {
        self.next_seq
    }

    /// Modulator clock index of the next payload's first bit.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Encodes one bitstream chunk, appending the wire bytes to `out`
    /// and advancing the sequence/clock cursors.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] when the chunk exceeds
    /// the frame format's payload limit; the cursors are left untouched
    /// so the caller can split and retry.
    pub fn encode_into(&mut self, bits: &PackedBits, out: &mut Vec<u8>) -> Result<(), DspError> {
        let frame = Frame::bitstream(self.element, self.next_seq, self.clock, bits)?;
        let before = out.len();
        frame.encode_into(out);
        if self.retransmit_window > 0 {
            if self.history.len() == self.retransmit_window {
                self.history.pop_front();
            }
            self.history
                .push_back((self.next_seq, out[before..].to_vec()));
        }
        self.next_seq = self.next_seq.wrapping_add(1);
        self.clock += bits.len() as u64;
        self.frames_tx.inc();
        self.bytes_tx.add((out.len() - before) as u64);
        Ok(())
    }

    /// [`FrameEncoder::encode_into`] returning a fresh byte vector.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FrameEncoder::encode_into`].
    pub fn encode(&mut self, bits: &PackedBits) -> Result<Vec<u8>, DspError> {
        let mut out = Vec::new();
        self.encode_into(bits, &mut out)?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tonos_dsp::frame::{Frame, ParseOutcome};

    fn bits(n: usize) -> PackedBits {
        (0..n).map(|i| i % 5 != 0).collect()
    }

    #[test]
    fn encoder_advances_seq_and_clock() {
        let mut enc = FrameEncoder::new(7);
        let a = enc.encode(&bits(100)).unwrap();
        let b = enc.encode(&bits(28)).unwrap();
        assert_eq!(enc.next_seq(), 2);
        assert_eq!(enc.clock(), 128);

        let ParseOutcome::Parsed { frame, .. } = Frame::parse(&a) else {
            panic!("frame a unparseable");
        };
        assert_eq!((frame.element, frame.seq, frame.clock), (7, 0, 0));
        let ParseOutcome::Parsed { frame, .. } = Frame::parse(&b) else {
            panic!("frame b unparseable");
        };
        assert_eq!((frame.element, frame.seq, frame.clock), (7, 1, 100));
        assert_eq!(frame.to_packed_bits(), bits(28));
    }

    #[test]
    fn retransmit_window_replays_exact_bytes_and_ages_out() {
        use tonos_dsp::frame::SeqRange;
        let mut enc = FrameEncoder::new(3).with_retransmit_window(2);
        let f0 = enc.encode(&bits(64)).unwrap();
        let f1 = enc.encode(&bits(64)).unwrap();
        let f2 = enc.encode(&bits(64)).unwrap();
        let _ = f0;

        // Frames 1 and 2 are in the window; 0 has aged out.
        let mut replay = Vec::new();
        let sent = enc.retransmit_into(SeqRange { first: 0, count: 3 }, &mut replay);
        assert_eq!(sent, 2);
        let mut expected = f1.clone();
        expected.extend_from_slice(&f2);
        assert_eq!(replay, expected);
        assert_eq!(enc.retransmits_tx(), 2);

        // A span fully outside the window replays nothing.
        let mut empty = Vec::new();
        assert_eq!(
            enc.retransmit_into(
                SeqRange {
                    first: 10,
                    count: 4
                },
                &mut empty
            ),
            0
        );
        assert!(empty.is_empty());
    }

    #[test]
    fn oversized_chunks_leave_cursors_untouched() {
        use tonos_dsp::frame::MAX_PAYLOAD_BITS;
        let mut enc = FrameEncoder::new(0);
        enc.encode(&bits(64)).unwrap();
        let huge: PackedBits = (0..(MAX_PAYLOAD_BITS as usize + 1)).map(|_| true).collect();
        assert!(enc.encode(&huge).is_err());
        assert_eq!(enc.next_seq(), 1);
        assert_eq!(enc.clock(), 64);
    }
}

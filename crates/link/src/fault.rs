//! Deterministic lossy-transport fault injection.
//!
//! [`FaultyTransport`] sits between an encoder and a decoder and mangles
//! the byte stream the way a marginal cable, a saturated hub, or a
//! crashing bridge process would: flipped bits, dropped chunks,
//! truncated tails, duplicated chunks, reordered chunks, and stalls
//! (bytes withheld until the next transmit). Every fault is drawn from
//! a SplitMix64 stream seeded at construction, so a failing corruption
//! case is reproducible from its seed alone.
//!
//! The transport treats each [`FaultyTransport::transmit`] call as one
//! "chunk" for the chunk-level faults (drop / duplicate / reorder /
//! stall) and applies bit flips per byte — matching how real links fail
//! at two scales (packets and symbols).

/// Per-chunk and per-byte fault probabilities. All in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability a transmitted byte has one random bit flipped.
    pub bit_flip_per_byte: f64,
    /// Probability an entire chunk is dropped.
    pub drop_chunk: f64,
    /// Probability a chunk loses a random-length tail.
    pub truncate_chunk: f64,
    /// Probability a chunk is delivered twice.
    pub duplicate_chunk: f64,
    /// Probability a chunk is held back and delivered *after* the next
    /// chunk (pairwise reordering).
    pub reorder_chunk: f64,
    /// Probability a chunk is stalled: held back and delivered at the
    /// front of the next transmit (models jitter/buffering, no loss).
    pub stall_chunk: f64,
}

impl FaultConfig {
    /// A perfect transport: every fault probability zero.
    pub fn clean() -> Self {
        FaultConfig {
            bit_flip_per_byte: 0.0,
            drop_chunk: 0.0,
            truncate_chunk: 0.0,
            duplicate_chunk: 0.0,
            reorder_chunk: 0.0,
            stall_chunk: 0.0,
        }
    }

    /// A marginal link: rare bit flips and occasional chunk-level
    /// faults of every class.
    pub fn noisy() -> Self {
        FaultConfig {
            bit_flip_per_byte: 2e-4,
            drop_chunk: 0.02,
            truncate_chunk: 0.01,
            duplicate_chunk: 0.01,
            reorder_chunk: 0.01,
            stall_chunk: 0.02,
        }
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::clean()
    }
}

/// SplitMix64: tiny, seedable, and good enough to schedule faults.
#[derive(Debug, Clone)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `0..n` (`n > 0`).
    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// A seeded, deterministic byte-stream mangler.
#[derive(Debug, Clone)]
pub struct FaultyTransport {
    config: FaultConfig,
    rng: SplitMix64,
    /// Chunks held back by stall/reorder, delivered ahead of the next
    /// transmit's own output.
    held: Vec<Vec<u8>>,
    chunks_in: u64,
    chunks_dropped: u64,
    bits_flipped: u64,
}

impl FaultyTransport {
    /// A transport applying `config`'s faults from the given seed.
    pub fn new(config: FaultConfig, seed: u64) -> Self {
        FaultyTransport {
            config,
            rng: SplitMix64(seed),
            held: Vec::new(),
            chunks_in: 0,
            chunks_dropped: 0,
            bits_flipped: 0,
        }
    }

    /// Chunks submitted so far.
    pub fn chunks_in(&self) -> u64 {
        self.chunks_in
    }

    /// Chunks dropped outright.
    pub fn chunks_dropped(&self) -> u64 {
        self.chunks_dropped
    }

    /// Individual bits flipped so far.
    pub fn bits_flipped(&self) -> u64 {
        self.bits_flipped
    }

    /// Sends one chunk through the lossy link, returning what actually
    /// comes out the far end (possibly empty, possibly containing
    /// previously stalled chunks).
    pub fn transmit(&mut self, chunk: &[u8]) -> Vec<u8> {
        self.chunks_in += 1;
        let mut out = Vec::new();
        // Anything stalled earlier arrives first.
        for held in std::mem::take(&mut self.held) {
            out.extend_from_slice(&held);
        }

        if self.rng.next_f64() < self.config.drop_chunk {
            self.chunks_dropped += 1;
            return out;
        }

        let mut data = chunk.to_vec();
        if !data.is_empty() && self.rng.next_f64() < self.config.truncate_chunk {
            let keep = self.rng.below(data.len());
            data.truncate(keep);
        }
        for byte in &mut data {
            if self.rng.next_f64() < self.config.bit_flip_per_byte {
                *byte ^= 1 << self.rng.below(8);
                self.bits_flipped += 1;
            }
        }
        let duplicate = self.rng.next_f64() < self.config.duplicate_chunk;
        if self.rng.next_f64() < self.config.stall_chunk {
            self.held.push(data.clone());
            if duplicate {
                self.held.push(data);
            }
            return out;
        }
        if self.rng.next_f64() < self.config.reorder_chunk {
            // Held back past the next chunk: pairwise reorder.
            self.held.push(data.clone());
            if duplicate {
                self.held.push(data);
            }
            return out;
        }
        out.extend_from_slice(&data);
        if duplicate {
            out.extend_from_slice(&data);
        }
        out
    }

    /// Delivers anything still stalled inside the transport (end of
    /// stream).
    pub fn flush(&mut self) -> Vec<u8> {
        let mut out = Vec::new();
        for held in std::mem::take(&mut self.held) {
            out.extend_from_slice(&held);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_transport_is_the_identity() {
        let mut t = FaultyTransport::new(FaultConfig::clean(), 1);
        let mut out = Vec::new();
        for i in 0..50u8 {
            out.extend_from_slice(&t.transmit(&[i, i ^ 0xFF, 3]));
        }
        out.extend_from_slice(&t.flush());
        let expect: Vec<u8> = (0..50u8).flat_map(|i| [i, i ^ 0xFF, 3]).collect();
        assert_eq!(out, expect);
        assert_eq!(t.bits_flipped(), 0);
        assert_eq!(t.chunks_dropped(), 0);
    }

    #[test]
    fn same_seed_same_faults() {
        let chunks: Vec<Vec<u8>> = (0..100u8).map(|i| vec![i; 40]).collect();
        let run = |seed| {
            let mut t = FaultyTransport::new(FaultConfig::noisy(), seed);
            let mut out = Vec::new();
            for c in &chunks {
                out.extend_from_slice(&t.transmit(c));
            }
            out.extend_from_slice(&t.flush());
            out
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn noisy_transport_actually_faults() {
        let mut t = FaultyTransport::new(FaultConfig::noisy(), 7);
        let mut delivered = 0usize;
        let mut sent = 0usize;
        for i in 0..2000u32 {
            let chunk = vec![(i % 251) as u8; 64];
            sent += chunk.len();
            delivered += t.transmit(&chunk).len();
        }
        delivered += t.flush().len();
        assert!(t.chunks_dropped() > 0);
        assert!(t.bits_flipped() > 0);
        assert!(delivered < sent, "{delivered} vs {sent}");
    }
}

//! The device side of the link: a sensor chip streaming framed ΣΔ
//! payloads.
//!
//! [`DeviceSimulator`] is the paper's measurement hardware reduced to
//! what actually crosses the USB boundary: a [`SensorChip`] converting
//! a patient's pressure waveform into packed modulator bits, and a
//! [`FrameEncoder`] serializing those bits. No decimation, no
//! calibration, no analysis — all of that is the host's job, which is
//! the whole point of the split.

use tonos_core::chip::SensorChip;
use tonos_core::config::SystemConfig;
use tonos_core::scratch::ConversionScratch;
use tonos_core::SystemError;
use tonos_dsp::bits::PackedBits;
use tonos_dsp::frame::{HelloAck, Nak, KIND_HELLO_ACK, KIND_NAK};
use tonos_mems::contact::ContactInterface;
use tonos_mems::units::{MillimetersHg, Pascals};
use tonos_physio::patient::PatientProfile;
use tonos_telemetry::Telemetry;

use crate::auth::LinkKey;
use crate::decode::{FrameDecoder, LinkEvent};
use crate::encode::FrameEncoder;

/// Appends every bit of `src` to `dst`, word-wise.
fn append_bits(dst: &mut PackedBits, src: &PackedBits) {
    let mut remaining = src.len();
    for &word in src.words() {
        if remaining == 0 {
            break;
        }
        let take = remaining.min(64);
        dst.push_bits(word, take);
        remaining -= take;
    }
}

/// A simulated device streaming one element's framed bitstream.
///
/// Construction synthesizes the patient's arterial waveform for the
/// whole session up front (devices are allowed memory for their own
/// stimulus); each [`next_packet`](DeviceSimulator::next_packet) call
/// converts the next few pressure frames through the chip and returns
/// one encoded wire frame.
#[derive(Debug)]
pub struct DeviceSimulator {
    chip: SensorChip,
    scratch: ConversionScratch,
    encoder: FrameEncoder,
    contact: ContactInterface,
    truth: Vec<MillimetersHg>,
    elements: usize,
    osr: usize,
    frames_per_packet: usize,
    cursor: usize,
    frame_buf: Vec<Pascals>,
    packet: PackedBits,
    /// `(key, device_id, nonce)` when the device introduces itself with
    /// a keyed-MAC hello before the first data frame.
    auth: Option<(LinkKey, u64, u64)>,
    hello_sent: bool,
    /// Host verdict from the last `KIND_HELLO_ACK` seen, if any.
    acked: Option<bool>,
    /// Decoder for the host→device control channel (acks and NAKs).
    host_decoder: FrameDecoder,
    host_events: Vec<LinkEvent>,
}

impl DeviceSimulator {
    /// A device built from `config`, streaming `patient`'s waveform for
    /// `duration_s` seconds. Identical `(config, patient, duration)`
    /// triples produce bit-identical streams — the property the
    /// link-vs-in-process equivalence tests are built on.
    ///
    /// # Errors
    ///
    /// Propagates chip construction, decimator-geometry, and waveform
    /// synthesis failures.
    pub fn new(
        config: &SystemConfig,
        patient: &PatientProfile,
        duration_s: f64,
    ) -> Result<Self, SystemError> {
        let chip = SensorChip::new(config.chip)?;
        let osr = config.decimator.build().map_err(SystemError::Dsp)?.ratio();
        let frame_rate = config.chip.sample_rate_hz / osr as f64;
        let truth = patient.record(frame_rate, duration_s)?.samples;
        let elements = config.chip.layout.rows * config.chip.layout.cols;
        Ok(DeviceSimulator {
            chip,
            scratch: ConversionScratch::with_frame_capacity(osr),
            encoder: FrameEncoder::new(0),
            contact: config.contact,
            truth,
            elements,
            osr,
            frames_per_packet: 8,
            cursor: 0,
            frame_buf: Vec::with_capacity(elements),
            packet: PackedBits::new(),
            auth: None,
            hello_sent: false,
            acked: None,
            host_decoder: FrameDecoder::new(),
            host_events: Vec::new(),
        })
    }

    /// Keeps the last `window` encoded frames for NAK-driven replay
    /// (see [`FrameEncoder::with_retransmit_window`]).
    #[must_use]
    pub fn with_retransmit_window(mut self, window: usize) -> Self {
        self.encoder = self.encoder.with_retransmit_window(window);
        self
    }

    /// Authenticates the stream: the first call to
    /// [`DeviceSimulator::next_packet_into`] will emit a keyed-MAC
    /// hello frame (tagged with `key` over `device_id ‖ nonce`) ahead
    /// of the data.
    #[must_use]
    pub fn with_auth(mut self, key: LinkKey, device_id: u64, nonce: u64) -> Self {
        self.auth = Some((key, device_id, nonce));
        self
    }

    /// The host's handshake verdict, if a `KIND_HELLO_ACK` has been
    /// seen by [`DeviceSimulator::handle_host_bytes`].
    pub fn hello_acked(&self) -> Option<bool> {
        self.acked
    }

    /// Consumes bytes from the host→device direction of the link —
    /// handshake acks and NAKs — appending any retransmitted frames to
    /// `out`. Returns how many frames were replayed.
    ///
    /// NAK'd spans that have already aged out of the retransmit window
    /// are silently skipped; the host's gap concealment covers them.
    pub fn handle_host_bytes(&mut self, bytes: &[u8], out: &mut Vec<u8>) -> u32 {
        self.host_events.clear();
        let mut events = std::mem::take(&mut self.host_events);
        self.host_decoder.push(bytes, &mut events);
        let mut replayed = 0u32;
        for event in &events {
            let LinkEvent::Control(frame) = event else {
                continue;
            };
            match frame.kind {
                KIND_HELLO_ACK => {
                    if let Some(ack) = HelloAck::from_payload(frame.payload_bytes()) {
                        self.acked = Some(ack.accepted);
                    }
                }
                KIND_NAK => {
                    if let Some(nak) = Nak::from_payload(frame.payload_bytes()) {
                        for range in &nak.ranges {
                            replayed += self.encoder.retransmit_into(*range, out);
                        }
                    }
                }
                _ => {}
            }
        }
        self.host_events = events;
        replayed
    }

    /// Pressure frames batched into each wire frame (default 8, i.e.
    /// 8 ms of signal per frame at the paper rate). Clamped to ≥ 1.
    #[must_use]
    pub fn with_frames_per_packet(mut self, frames: usize) -> Self {
        self.frames_per_packet = frames.max(1);
        self
    }

    /// Reports the encoder's transmit counters into the given registry.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: &Telemetry) -> Self {
        self.encoder = self.encoder.with_telemetry(telemetry);
        self
    }

    /// Modulator clocks per pressure frame.
    pub fn osr(&self) -> usize {
        self.osr
    }

    /// Total pressure frames the session will stream.
    pub fn frames_total(&self) -> usize {
        self.truth.len()
    }

    /// Whether the stream has ended.
    pub fn finished(&self) -> bool {
        self.cursor >= self.truth.len()
    }

    /// The packed bits of the most recent packet, before encoding —
    /// lets a caller tee the exact payload into an in-process decimator
    /// for equivalence checks.
    pub fn last_packet_bits(&self) -> &PackedBits {
        &self.packet
    }

    /// Converts the next batch of pressure frames and appends one
    /// encoded wire frame to `out`. Returns `false` (appending nothing)
    /// once the stream has ended.
    ///
    /// # Errors
    ///
    /// Propagates chip conversion failures.
    pub fn next_packet_into(&mut self, out: &mut Vec<u8>) -> Result<bool, SystemError> {
        if self.finished() {
            return Ok(false);
        }
        if !self.hello_sent {
            self.hello_sent = true;
            if let Some((key, device_id, nonce)) = self.auth {
                key.hello(device_id, nonce).to_frame().encode_into(out);
            }
        }
        self.packet.clear();
        for _ in 0..self.frames_per_packet {
            let Some(&mmhg) = self.truth.get(self.cursor) else {
                break;
            };
            let pressure = self.contact.net_element_pressure(Pascals::from_mmhg(mmhg));
            self.frame_buf.clear();
            self.frame_buf.resize(self.elements, pressure);
            self.chip
                .convert_frame_packed_into(&self.frame_buf, self.osr, &mut self.scratch)?;
            append_bits(&mut self.packet, &self.scratch.bits);
            self.cursor += 1;
        }
        self.encoder
            .encode_into(&self.packet, out)
            .map_err(SystemError::Dsp)?;
        Ok(true)
    }

    /// [`DeviceSimulator::next_packet_into`] returning a fresh vector,
    /// or `None` at end of stream.
    ///
    /// # Errors
    ///
    /// Propagates chip conversion failures.
    pub fn next_packet(&mut self) -> Result<Option<Vec<u8>>, SystemError> {
        let mut out = Vec::new();
        if self.next_packet_into(&mut out)? {
            Ok(Some(out))
        } else {
            Ok(None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tonos_dsp::frame::{Frame, ParseOutcome};

    #[test]
    fn device_streams_are_deterministic_and_framed() {
        let config = SystemConfig::paper_default();
        let patient = PatientProfile::normotensive();
        let run = || -> Vec<u8> {
            let mut dev = DeviceSimulator::new(&config, &patient, 1.0).unwrap();
            let mut wire = Vec::new();
            while dev.next_packet_into(&mut wire).unwrap() {}
            wire
        };
        let a = run();
        assert_eq!(a, run());

        // The stream parses end to end: 1000 frames at 8 per packet.
        let mut rest = &a[..];
        let mut frames = 0usize;
        let mut clocks = 0u64;
        while !rest.is_empty() {
            match Frame::parse(rest) {
                ParseOutcome::Parsed { frame, consumed } => {
                    assert_eq!(frame.seq, frames as u32);
                    assert_eq!(frame.clock, clocks);
                    clocks += frame.payload_bits() as u64;
                    frames += 1;
                    rest = &rest[consumed..];
                }
                other => panic!("stream unparseable: {other:?}"),
            }
        }
        assert_eq!(frames, 125);
        assert_eq!(clocks, 1000 * 128);
    }

    #[test]
    fn last_packet_bits_mirror_the_wire_payload() {
        let config = SystemConfig::paper_default();
        let patient = PatientProfile::hypertensive();
        let mut dev = DeviceSimulator::new(&config, &patient, 0.1).unwrap();
        let wire = dev.next_packet().unwrap().unwrap();
        let ParseOutcome::Parsed { frame, .. } = Frame::parse(&wire) else {
            panic!("unparseable");
        };
        assert_eq!(&frame.to_packed_bits(), dev.last_packet_bits());
    }
}

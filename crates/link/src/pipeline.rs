//! The host-side signal pipeline: decoded frames → decimation →
//! calibration → online analysis, with explicit gap concealment.
//!
//! ## The gap-policy rule
//!
//! The link can lose frames; the pipeline must decide what the samples
//! that should have existed become. Whatever the policy, one rule is
//! non-negotiable: **a concealed sample can never silently fire a
//! pressure alarm**. Every sample that covers lost input — and every
//! sample whose decimation window overlaps lost input — is flagged, the
//! flag travels into [`OnlineAnalyzer::push_flagged`], and a pressure
//! alarm whose qualifying run includes flagged beats is suppressed and
//! journaled instead of raised. Signal-loss alarms still fire on
//! concealed spans: failing to alarm on a dead link is the dangerous
//! direction.
//!
//! Two concealment policies are offered ([`GapPolicy`]):
//!
//! * [`GapPolicy::HoldLast`] — emit the last good raw value for each
//!   lost output sample, flagged [`SampleFlag::Concealed`]. Keeps
//!   downstream consumers (trend displays, recorders) fed with a
//!   plausible waveform.
//! * [`GapPolicy::MarkInvalid`] — emit `NaN`, flagged
//!   [`SampleFlag::Invalid`]. Keeps downstream consumers honest.
//!
//! Under *both* policies the analyzer is advanced with the held value
//! (flagged concealed), so its timebase, beat detector state, and
//! alarm-suppression semantics are identical regardless of what the
//! exported stream shows.
//!
//! ## Concealment is bounded
//!
//! Concealment emits one sample per lost output slot, and the gap size
//! comes from the frame clock headers — which the wire does not
//! authenticate (CRC-32 is integrity, not provenance) and which can be
//! legitimately enormous on reconnect to a long-running device. Filling
//! such a jump sample-by-sample would spin for up to 2⁵⁷ iterations and
//! grow the output without bound, so concealment is clamped to
//! [`MAX_CONCEAL_S`] seconds of output. Anything beyond the clamp is a
//! **stream reset**: the output index is re-based past the skipped span
//! (time is still never silently compressed — the index jump *is* the
//! record of the loss), `link.stream_resets` / `link.gap_skipped_samples`
//! count it, a journal warning names it, and a bounded concealed span is
//! still emitted so downstream consumers see the gap boundary.

use tonos_core::config::SystemConfig;
use tonos_core::readout::ReadoutSystem;
use tonos_core::stream::{AlarmLimits, MonitorEvent, OnlineAnalyzer};
use tonos_core::SystemError;
use tonos_dsp::bits::PackedBits;
use tonos_dsp::decimator::{DecimatorConfig, TwoStageDecimator};
use tonos_dsp::frame::{Frame, Hello, HelloAck, KIND_BITSTREAM, KIND_HELLO};
use tonos_mems::units::{MillimetersHg, Pascals};
use tonos_telemetry::{names, Counter, Severity, SpanTimer, Telemetry};

use crate::auth::LinkKey;
use crate::decode::{FrameDecoder, LinkEvent};

/// Longest gap (seconds of output) concealed sample-by-sample; larger
/// clock jumps are handled as a stream reset (see the module docs).
pub const MAX_CONCEAL_S: f64 = 5.0;

/// What to emit for output samples lost to a link gap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GapPolicy {
    /// Repeat the last good raw value, flagged [`SampleFlag::Concealed`].
    HoldLast,
    /// Emit `NaN`, flagged [`SampleFlag::Invalid`].
    MarkInvalid,
}

/// Provenance of one pipeline output sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleFlag {
    /// Decimated from CRC-verified, in-order payload only.
    Clean,
    /// Covers lost input (held value), or decimated from a window that
    /// overlaps lost input (post-gap filter memory).
    Concealed,
    /// Covers lost input under [`GapPolicy::MarkInvalid`]; the value is
    /// `NaN`.
    Invalid,
}

/// One calibrated output sample with provenance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostSample {
    /// Output-sample index since the start of the stream (gaps
    /// included, so index × output period is wall-clock time).
    pub index: u64,
    /// Calibrated pressure in mmHg (`NaN` for [`SampleFlag::Invalid`]).
    pub value_mmhg: f64,
    /// Provenance flag.
    pub flag: SampleFlag,
}

/// Linear raw→mmHg calibration for link-ingested streams.
///
/// The wire carries raw modulator payloads; the cuff-based calibration
/// machinery of `tonos_core` lives on the other side of the link. This
/// is the host's stand-in: `mmHg = gain · raw + offset`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkCalibration {
    /// mmHg per raw decimated unit.
    pub gain: f64,
    /// mmHg at raw zero.
    pub offset: f64,
}

impl LinkCalibration {
    /// The identity map: raw values pass through unchanged.
    pub fn identity() -> Self {
        LinkCalibration {
            gain: 1.0,
            offset: 0.0,
        }
    }

    /// Applies the calibration.
    pub fn apply(&self, raw: f64) -> f64 {
        self.gain * raw + self.offset
    }

    /// Two-point bench calibration: runs the given system configuration
    /// through an in-process [`ReadoutSystem`] at two known uniform
    /// pressures and fits the line between the settled raw outputs —
    /// how a bench operator would calibrate a freshly connected device
    /// whose configuration is known.
    ///
    /// # Errors
    ///
    /// Propagates readout failures and returns
    /// [`SystemError::CalibrationFailed`] when the two probe points
    /// produce a degenerate raw span.
    pub fn two_point(
        config: &SystemConfig,
        low: MillimetersHg,
        high: MillimetersHg,
    ) -> Result<Self, SystemError> {
        let probe = |mmhg: MillimetersHg| -> Result<f64, SystemError> {
            let mut sys = ReadoutSystem::new(*config)?;
            let elements = config.chip.layout.rows * config.chip.layout.cols;
            let frame = vec![
                config
                    .contact
                    .net_element_pressure(Pascals::from_mmhg(mmhg));
                elements
            ];
            // Let mux and filter chain settle, then average the noise.
            let settle = sys.settling_frames() + 64;
            for _ in 0..settle {
                sys.push_frame(&frame)?;
            }
            let reps = 64;
            let mut acc = 0.0;
            for _ in 0..reps {
                acc += sys.push_frame(&frame)?;
            }
            Ok(acc / f64::from(reps))
        };
        let raw_low = probe(low)?;
        let raw_high = probe(high)?;
        let span = raw_high - raw_low;
        if !(span.abs() > 1e-12) {
            return Err(SystemError::CalibrationFailed(format!(
                "degenerate raw span between {} and {} mmHg probes",
                low.value(),
                high.value()
            )));
        }
        let gain = (high.value() - low.value()) / span;
        Ok(LinkCalibration {
            gain,
            offset: low.value() - gain * raw_low,
        })
    }
}

/// Aggregate health of one link-ingested stream.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LinkHealth {
    /// Decoder-level statistics (frames, CRC failures, resyncs, gaps).
    pub decoder: crate::decode::DecoderStats,
    /// Output samples decimated from verified payload only.
    pub clean_samples: u64,
    /// Output samples that cover or touch lost input, emitted flagged.
    pub concealed_samples: u64,
    /// Concealed samples emitted as `NaN` under
    /// [`GapPolicy::MarkInvalid`] (a subset of the concealment total in
    /// spirit; disjoint from `concealed_samples` in the counts).
    pub invalid_samples: u64,
    /// Output samples skipped by stream resets: lost slots beyond the
    /// [`MAX_CONCEAL_S`] clamp, accounted for by re-basing the output
    /// index rather than emitting per-sample filler. Not included in
    /// [`LinkHealth::samples`] — nothing was emitted for them.
    pub skipped_samples: u64,
    /// Clock jumps too large to conceal, handled as stream resets.
    pub stream_resets: u64,
    /// Beats detected by the online analyzer (0 without an analyzer).
    pub beats: u64,
    /// Alarms raised by the online analyzer.
    pub alarms: u64,
    /// Smoothed pulse rate estimate, beats/minute.
    pub pulse_rate_bpm: f64,
    /// Mean systolic over detected beats, mmHg (0 without beats).
    pub mean_systolic_mmhg: f64,
    /// Mean diastolic over detected beats, mmHg (0 without beats).
    pub mean_diastolic_mmhg: f64,
    /// NAK control frames queued for the device (retransmit requests).
    pub naks_tx: u64,
    /// Keyed-MAC handshakes verified and accepted.
    pub handshakes_ok: u64,
    /// Handshakes rejected: forged tag, malformed payload.
    pub handshakes_rejected: u64,
    /// Data frames dropped because the pipeline requires an
    /// authenticated session and none was established.
    pub unauth_frames: u64,
}

impl LinkHealth {
    /// Total output samples emitted (clean + concealed + invalid).
    pub fn samples(&self) -> u64 {
        self.clean_samples + self.concealed_samples + self.invalid_samples
    }
}

/// Snapshot of the pipeline's per-sample totals, kept so telemetry
/// counters receive one batched delta per transport chunk instead of
/// one atomic op per output sample (which costs real hot-path
/// throughput at OSR-scale output rates).
#[derive(Debug, Clone, Copy, Default)]
struct SampleCounts {
    clean: u64,
    concealed: u64,
    invalid: u64,
    skipped: u64,
    resets: u64,
}

/// Push-based host pipeline: bytes in, flagged calibrated samples out.
///
/// Build order: [`HostPipeline::new`] →
/// [`with_reorder_window`](HostPipeline::with_reorder_window) /
/// [`with_auth`](HostPipeline::with_auth) (optional) →
/// [`with_analyzer`](HostPipeline::with_analyzer) (optional) →
/// [`with_telemetry`](HostPipeline::with_telemetry) (optional, last, so
/// the analyzer's instruments are wired too).
///
/// # Example
///
/// ```
/// use tonos_dsp::bits::PackedBits;
/// use tonos_dsp::decimator::DecimatorConfig;
/// use tonos_link::{FrameEncoder, GapPolicy, HostPipeline, LinkCalibration, SampleFlag};
///
/// let mut pipe = HostPipeline::new(
///     &DecimatorConfig::paper_default(),
///     LinkCalibration::identity(),
///     GapPolicy::HoldLast,
/// )
/// .unwrap();
///
/// // A device encodes one 128-bit chunk; the transport delivers it.
/// let mut enc = FrameEncoder::new(0);
/// let chunk: PackedBits = (0..128).map(|i| i % 3 == 0).collect();
/// let wire = enc.encode(&chunk).unwrap();
///
/// let mut samples = Vec::new();
/// pipe.push_bytes(&wire, &mut samples);
/// assert!(samples.iter().all(|s| s.flag == SampleFlag::Clean));
/// ```
#[derive(Debug)]
pub struct HostPipeline {
    decoder: FrameDecoder,
    decimator: TwoStageDecimator,
    osr: usize,
    output_rate_hz: f64,
    calibration: LinkCalibration,
    policy: GapPolicy,
    analyzer: Option<OnlineAnalyzer>,
    monitor_events: Vec<MonitorEvent>,
    last_raw: Option<f64>,
    /// Outputs still flagged after a gap (decimator memory span).
    taint: usize,
    taint_span: usize,
    /// Output samples concealed per gap before it becomes a reset.
    max_conceal_samples: u64,
    next_index: u64,
    clean_samples: u64,
    concealed_samples: u64,
    invalid_samples: u64,
    skipped_samples: u64,
    stream_resets: u64,
    /// Totals as of the last telemetry flush (see [`SampleCounts`]).
    flushed: SampleCounts,
    beats: u64,
    alarms: u64,
    sum_systolic: f64,
    sum_diastolic: f64,
    /// Pre-shared key for verifying device hellos; `None` leaves the
    /// wire unauthenticated (hellos are acked but not verified).
    auth_key: Option<LinkKey>,
    /// Whether data frames are dropped until a verified handshake.
    auth_required: bool,
    authenticated: bool,
    /// Device id from the most recent accepted hello (`None` until a
    /// handshake lands), so ingest consumers can route by device.
    device_id: Option<u64>,
    naks_tx: u64,
    handshakes_ok: u64,
    handshakes_rejected: u64,
    unauth_frames: u64,
    /// Encoded control frames (acks, NAKs) awaiting
    /// [`HostPipeline::drain_control_into`].
    control_out: Vec<u8>,
    naks_counter: Counter,
    handshakes_ok_counter: Counter,
    handshakes_rejected_counter: Counter,
    unauth_counter: Counter,
    clean_counter: Counter,
    concealed_counter: Counter,
    invalid_counter: Counter,
    skipped_counter: Counter,
    resets_counter: Counter,
    decode_span: SpanTimer,
    conceal_span: SpanTimer,
    telemetry: Telemetry,
    link_scratch: Vec<LinkEvent>,
    out_scratch: Vec<f64>,
}

impl HostPipeline {
    /// A pipeline decimating with `decimator` under the given
    /// calibration and gap policy, no analyzer, no telemetry.
    ///
    /// # Errors
    ///
    /// Propagates decimator construction failures.
    pub fn new(
        decimator: &DecimatorConfig,
        calibration: LinkCalibration,
        policy: GapPolicy,
    ) -> Result<Self, SystemError> {
        let built = decimator.build().map_err(SystemError::Dsp)?;
        let taint_span = built.settling_output_samples();
        let max_conceal_samples = ((MAX_CONCEAL_S * decimator.output_rate()).ceil() as u64).max(1);
        Ok(HostPipeline {
            osr: built.ratio(),
            output_rate_hz: decimator.output_rate(),
            decimator: built,
            calibration,
            policy,
            analyzer: None,
            monitor_events: Vec::new(),
            last_raw: None,
            taint: 0,
            taint_span,
            max_conceal_samples,
            next_index: 0,
            clean_samples: 0,
            concealed_samples: 0,
            invalid_samples: 0,
            skipped_samples: 0,
            stream_resets: 0,
            flushed: SampleCounts::default(),
            beats: 0,
            alarms: 0,
            sum_systolic: 0.0,
            sum_diastolic: 0.0,
            auth_key: None,
            auth_required: false,
            authenticated: true,
            device_id: None,
            naks_tx: 0,
            handshakes_ok: 0,
            handshakes_rejected: 0,
            unauth_frames: 0,
            control_out: Vec::new(),
            naks_counter: Counter::disabled(),
            handshakes_ok_counter: Counter::disabled(),
            handshakes_rejected_counter: Counter::disabled(),
            unauth_counter: Counter::disabled(),
            clean_counter: Counter::disabled(),
            concealed_counter: Counter::disabled(),
            invalid_counter: Counter::disabled(),
            skipped_counter: Counter::disabled(),
            resets_counter: Counter::disabled(),
            decode_span: SpanTimer::disabled(),
            conceal_span: SpanTimer::disabled(),
            telemetry: Telemetry::disabled(),
            decoder: FrameDecoder::new(),
            link_scratch: Vec::new(),
            out_scratch: Vec::new(),
        })
    }

    /// Enables the decoder's reorder buffer (see
    /// [`FrameDecoder::with_reorder_window`]): out-of-order frames
    /// within `window` are re-sequenced instead of gapped, and
    /// [`HostPipeline::drain_control_into`] emits NAKs for the spans
    /// still missing so the device can retransmit them.
    #[must_use]
    pub fn with_reorder_window(mut self, window: u32) -> Self {
        self.decoder = self.decoder.with_reorder_window(window);
        self
    }

    /// Verifies device handshakes against `key`.
    ///
    /// With `required = false`, unauthenticated data still flows (the
    /// handshake only feeds provenance counters and the journal); with
    /// `required = true`, data and gap events are dropped — and counted
    /// as `link.unauth_frames` — until a hello tagged with `key`
    /// arrives.
    ///
    /// ```
    /// use tonos_dsp::decimator::DecimatorConfig;
    /// use tonos_link::{GapPolicy, HostPipeline, LinkCalibration, LinkKey};
    ///
    /// let key = LinkKey::from_bytes([9u8; 16]);
    /// let mut pipe = HostPipeline::new(
    ///     &DecimatorConfig::paper_default(),
    ///     LinkCalibration::identity(),
    ///     GapPolicy::HoldLast,
    /// )
    /// .unwrap()
    /// .with_auth(key, true);
    ///
    /// // The device opens with a keyed hello; the host verifies it and
    /// // queues an accept ack for the return path.
    /// let hello = key.hello(42, 7).to_frame().encode();
    /// let mut samples = Vec::new();
    /// pipe.push_bytes(&hello, &mut samples);
    /// assert_eq!(pipe.health().handshakes_ok, 1);
    ///
    /// let mut reply = Vec::new();
    /// pipe.drain_control_into(&mut reply);
    /// assert!(!reply.is_empty()); // the encoded HelloAck frame
    /// ```
    #[must_use]
    pub fn with_auth(mut self, key: LinkKey, required: bool) -> Self {
        self.auth_key = Some(key);
        self.auth_required = required;
        self.authenticated = !required;
        self
    }

    /// Adds online alarm screening at the pipeline's output rate.
    ///
    /// # Errors
    ///
    /// Propagates analyzer construction failures.
    pub fn with_analyzer(mut self, limits: AlarmLimits) -> Result<Self, SystemError> {
        self.analyzer = Some(OnlineAnalyzer::new(self.output_rate_hz, limits)?);
        Ok(self)
    }

    /// Wires decoder, sample counters, and (if present) the analyzer
    /// into the given registry. Call after
    /// [`with_analyzer`](HostPipeline::with_analyzer).
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: &Telemetry) -> Self {
        self.decoder = self.decoder.with_telemetry(telemetry);
        self.clean_counter = telemetry.counter(names::LINK_SAMPLES_CLEAN);
        self.concealed_counter = telemetry.counter(names::LINK_GAPS_CONCEALED);
        self.invalid_counter = telemetry.counter(names::LINK_SAMPLES_INVALID);
        self.skipped_counter = telemetry.counter(names::LINK_GAP_SKIPPED_SAMPLES);
        self.resets_counter = telemetry.counter(names::LINK_STREAM_RESETS);
        self.naks_counter = telemetry.counter(names::LINK_NAKS_TX);
        self.handshakes_ok_counter = telemetry.counter(names::LINK_HANDSHAKES_OK);
        self.handshakes_rejected_counter = telemetry.counter(names::LINK_HANDSHAKES_REJECTED);
        self.unauth_counter = telemetry.counter(names::LINK_UNAUTH_FRAMES);
        self.decode_span = telemetry.span(names::SPAN_LINK_DECODE);
        self.conceal_span = telemetry.span(names::SPAN_LINK_CONCEAL);
        self.analyzer = self.analyzer.map(|a| a.with_telemetry(telemetry.clone()));
        self.telemetry = telemetry.clone();
        // Counters report activity from attach time on: don't credit
        // pre-attach samples to the registry at the first flush.
        self.flushed = self.counts();
        self
    }

    /// Current per-sample totals, for the batched telemetry flush.
    fn counts(&self) -> SampleCounts {
        SampleCounts {
            clean: self.clean_samples,
            concealed: self.concealed_samples,
            invalid: self.invalid_samples,
            skipped: self.skipped_samples,
            resets: self.stream_resets,
        }
    }

    /// Decimation ratio (modulator clocks per output sample).
    pub fn osr(&self) -> usize {
        self.osr
    }

    /// Output sample rate in Hz.
    pub fn output_rate_hz(&self) -> f64 {
        self.output_rate_hz
    }

    /// Device id announced by the most recent accepted hello, if any —
    /// what an ingest tap uses to route this stream's samples.
    pub fn device_id(&self) -> Option<u64> {
        self.device_id
    }

    /// Feeds transport bytes in; flagged calibrated samples are
    /// appended to `out`.
    pub fn push_bytes(&mut self, bytes: &[u8], out: &mut Vec<HostSample>) {
        let mut events = std::mem::take(&mut self.link_scratch);
        events.clear();
        // One span per transport chunk, not per frame: at 8 KiB chunks
        // that is ~1 clock read per ~60 frames, cheap enough to leave on.
        let span = self.decode_span.start();
        self.decoder.push(bytes, &mut events);
        span.finish();
        for event in events.drain(..) {
            match event {
                LinkEvent::Gap { lost_clocks, .. } => {
                    if !self.authenticated {
                        continue;
                    }
                    self.conceal(lost_clocks, out);
                }
                LinkEvent::Frame(frame) => {
                    if !self.authenticated {
                        self.unauth_frames += 1;
                        self.unauth_counter.inc();
                        continue;
                    }
                    if frame.kind != KIND_BITSTREAM {
                        continue;
                    }
                    let bits = frame.to_packed_bits();
                    self.decimate(&bits, out);
                }
                LinkEvent::Control(frame) => self.handle_control(&frame),
            }
        }
        self.link_scratch = events;
        // Batched telemetry flush, mirroring the decoder: one atomic
        // add per counter per chunk instead of one per output sample.
        // All sample/reset totals mutate under this method (conceal,
        // decimate, and emit are only reached from here), so flushing
        // at the end keeps the registry exact at chunk granularity.
        let now = self.counts();
        self.clean_counter.add(now.clean - self.flushed.clean);
        self.concealed_counter
            .add(now.concealed - self.flushed.concealed);
        self.invalid_counter.add(now.invalid - self.flushed.invalid);
        self.skipped_counter.add(now.skipped - self.flushed.skipped);
        self.resets_counter.add(now.resets - self.flushed.resets);
        self.flushed = now;
    }

    /// Events raised by the online analyzer since the last drain
    /// (empty without an analyzer).
    pub fn drain_events(&mut self) -> Vec<MonitorEvent> {
        std::mem::take(&mut self.monitor_events)
    }

    /// Handles one device→host control frame.
    fn handle_control(&mut self, frame: &Frame) {
        if frame.kind != KIND_HELLO {
            // Acks and NAKs belong to the host→device direction; seen
            // here they are counted as control traffic and ignored.
            return;
        }
        let verdict = match Hello::from_payload(frame.payload_bytes()) {
            Some(hello) => match self.auth_key {
                Some(key) => {
                    if key.verify(&hello) {
                        Ok(hello)
                    } else {
                        Err(format!(
                            "forged handshake: device_id {} nonce {} carries a bad MAC tag",
                            hello.device_id, hello.nonce
                        ))
                    }
                }
                // No key configured: the hello is advisory; accept it
                // so an authenticated device can talk to a host that
                // does not enforce provenance.
                None => Ok(hello),
            },
            None => Err("malformed hello payload".to_string()),
        };
        match verdict {
            Ok(hello) => {
                self.authenticated = true;
                self.device_id = Some(hello.device_id);
                self.handshakes_ok += 1;
                self.handshakes_ok_counter.inc();
                HelloAck { accepted: true }
                    .to_frame()
                    .encode_into(&mut self.control_out);
            }
            Err(why) => {
                self.handshakes_rejected += 1;
                self.handshakes_rejected_counter.inc();
                self.telemetry.event(Severity::Warning, "link.auth", || {
                    format!("handshake rejected: {why}")
                });
                HelloAck { accepted: false }
                    .to_frame()
                    .encode_into(&mut self.control_out);
            }
        }
    }

    /// Appends the host→device control traffic queued so far — hello
    /// acks, plus a NAK for every span currently missing inside the
    /// reorder window — to `out`. Returns `true` if anything was
    /// appended.
    ///
    /// Call once per ingested chunk (the server does): each call
    /// re-requests everything still missing, so a lost NAK or a lost
    /// retransmission heals on the next round instead of deadlocking
    /// the window.
    pub fn drain_control_into(&mut self, out: &mut Vec<u8>) -> bool {
        let before = out.len();
        out.append(&mut self.control_out);
        if let Some(nak) = self.decoder.take_nak() {
            nak.to_frame().encode_into(out);
            self.naks_tx += 1;
            self.naks_counter.inc();
        }
        out.len() > before
    }

    /// Aggregate stream health so far.
    pub fn health(&self) -> LinkHealth {
        let beats_f = if self.beats > 0 {
            self.beats as f64
        } else {
            1.0
        };
        LinkHealth {
            decoder: self.decoder.stats(),
            clean_samples: self.clean_samples,
            concealed_samples: self.concealed_samples,
            invalid_samples: self.invalid_samples,
            skipped_samples: self.skipped_samples,
            stream_resets: self.stream_resets,
            beats: self.beats,
            alarms: self.alarms,
            pulse_rate_bpm: self
                .analyzer
                .as_ref()
                .map_or(0.0, OnlineAnalyzer::pulse_rate_bpm),
            mean_systolic_mmhg: self.sum_systolic / beats_f,
            mean_diastolic_mmhg: self.sum_diastolic / beats_f,
            naks_tx: self.naks_tx,
            handshakes_ok: self.handshakes_ok,
            handshakes_rejected: self.handshakes_rejected,
            unauth_frames: self.unauth_frames,
        }
    }

    /// Decimates verified payload bits and emits the outputs.
    fn decimate(&mut self, bits: &PackedBits, out: &mut Vec<HostSample>) {
        let mut ys = std::mem::take(&mut self.out_scratch);
        ys.clear();
        self.decimator.process_packed_into(bits, &mut ys);
        for &y in &ys {
            self.emit(y, out);
        }
        self.out_scratch = ys;
    }

    /// Emits one decimated output, honouring post-gap taint.
    fn emit(&mut self, raw: f64, out: &mut Vec<HostSample>) {
        self.last_raw = Some(raw);
        let mmhg = self.calibration.apply(raw);
        let concealed = if self.taint > 0 {
            self.taint -= 1;
            true
        } else {
            false
        };
        if concealed {
            self.concealed_samples += 1;
        } else {
            self.clean_samples += 1;
        }
        out.push(HostSample {
            index: self.next_index,
            value_mmhg: mmhg,
            flag: if concealed {
                SampleFlag::Concealed
            } else {
                SampleFlag::Clean
            },
        });
        self.next_index += 1;
        self.analyze(mmhg, concealed);
    }

    /// Emits the concealment samples for a gap of `lost_clocks`
    /// modulator clocks and re-aligns the decimator phase.
    ///
    /// Concealment work is bounded: the clock header that sizes the gap
    /// is attacker- and reconnect-controlled (up to `u64::MAX`), so a
    /// jump past [`MAX_CONCEAL_S`] of output becomes a stream reset —
    /// the output index is re-based over the excess and only the
    /// bounded tail is emitted sample-by-sample.
    fn conceal(&mut self, lost_clocks: u64, out: &mut Vec<HostSample>) {
        // Clone the handle so the guard doesn't pin `self` across the
        // `&mut self` emit/decimate calls below (two Arc clones).
        let timer = self.conceal_span.clone();
        let _span = timer.start();
        let mut whole = lost_clocks / self.osr as u64;
        let residual = (lost_clocks % self.osr as u64) as usize;
        if whole > self.max_conceal_samples {
            let skipped = whole - self.max_conceal_samples;
            whole = self.max_conceal_samples;
            self.next_index = self.next_index.saturating_add(skipped);
            self.skipped_samples += skipped;
            self.stream_resets += 1;
            self.telemetry
                .event(Severity::Warning, "link.pipeline", || {
                    format!(
                        "stream reset: clock jump of {lost_clocks} clocks exceeds the \
                     concealment clamp; re-based output index over {skipped} samples"
                    )
                });
        }
        let held = self.last_raw.unwrap_or(0.0);
        let held_mmhg = self.calibration.apply(held);
        for _ in 0..whole {
            let (value, flag) = match self.policy {
                GapPolicy::HoldLast => (held_mmhg, SampleFlag::Concealed),
                GapPolicy::MarkInvalid => (f64::NAN, SampleFlag::Invalid),
            };
            match flag {
                SampleFlag::Concealed => self.concealed_samples += 1,
                _ => self.invalid_samples += 1,
            }
            out.push(HostSample {
                index: self.next_index,
                value_mmhg: value,
                flag,
            });
            self.next_index += 1;
            // The analyzer always advances on the held value so its
            // timebase and suppression semantics are policy-independent
            // (NaN would poison its running sums).
            self.analyze(held_mmhg, true);
        }
        // Taint the decimator-memory span after the gap; set before the
        // residual filler so filler-built outputs come out flagged.
        self.taint = self.taint_span.max(1);
        if residual > 0 {
            // Keep the output phase aligned across non-frame-multiple
            // gaps: feed mid-scale filler bits for the lost remainder.
            let filler: PackedBits = (0..residual).map(|i| i % 2 == 0).collect();
            self.decimate(&filler, out);
        }
    }

    /// Advances the optional analyzer and folds its events into the
    /// aggregates.
    fn analyze(&mut self, mmhg: f64, concealed: bool) {
        let Some(analyzer) = self.analyzer.as_mut() else {
            return;
        };
        let events = analyzer.push_flagged(mmhg, concealed);
        for event in &events {
            match event {
                MonitorEvent::Beat {
                    systolic,
                    diastolic,
                    ..
                } => {
                    self.beats += 1;
                    self.sum_systolic += systolic;
                    self.sum_diastolic += diastolic;
                }
                _ => self.alarms += 1,
            }
        }
        self.monitor_events.extend(events);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::FrameEncoder;

    fn chunk(n: usize, phase: usize) -> PackedBits {
        (0..n).map(|i| (i + phase).is_multiple_of(3)).collect()
    }

    fn pipeline(policy: GapPolicy) -> HostPipeline {
        HostPipeline::new(
            &DecimatorConfig::paper_default(),
            LinkCalibration::identity(),
            policy,
        )
        .unwrap()
    }

    #[test]
    fn fault_free_bytes_match_direct_decimation() {
        let mut enc = FrameEncoder::new(0);
        let mut wire = Vec::new();
        let chunks: Vec<PackedBits> = (0..40).map(|i| chunk(128, i)).collect();
        for c in &chunks {
            enc.encode_into(c, &mut wire).unwrap();
        }

        let mut pipe = pipeline(GapPolicy::HoldLast);
        let mut got = Vec::new();
        pipe.push_bytes(&wire, &mut got);

        let mut direct = DecimatorConfig::paper_default().build().unwrap();
        let mut expect = Vec::new();
        for c in &chunks {
            expect.extend(direct.process_packed(c));
        }
        assert_eq!(got.len(), expect.len());
        for (s, e) in got.iter().zip(&expect) {
            assert_eq!(s.flag, SampleFlag::Clean);
            assert_eq!(s.value_mmhg.to_bits(), e.to_bits());
        }
        let health = pipe.health();
        assert_eq!(health.clean_samples, expect.len() as u64);
        assert_eq!(health.concealed_samples + health.invalid_samples, 0);
    }

    #[test]
    fn dropped_frames_become_flagged_samples_not_silence() {
        for policy in [GapPolicy::HoldLast, GapPolicy::MarkInvalid] {
            let mut enc = FrameEncoder::new(0);
            let packets: Vec<Vec<u8>> = (0..20)
                .map(|i| enc.encode(&chunk(128, i)).unwrap())
                .collect();
            let mut pipe = pipeline(policy);
            let mut got = Vec::new();
            for (i, p) in packets.iter().enumerate() {
                if (5..8).contains(&i) {
                    continue; // three frames lost in transit
                }
                pipe.push_bytes(p, &mut got);
            }
            // Every output slot is accounted for: 20 frames' worth.
            assert_eq!(got.len(), 20, "policy {policy:?}");
            let concealed = got.iter().filter(|s| s.flag != SampleFlag::Clean).count();
            // 3 lost + the post-gap decimator-memory span.
            assert!(concealed >= 3, "policy {policy:?}: {concealed}");
            match policy {
                GapPolicy::HoldLast => {
                    assert!(got.iter().all(|s| s.value_mmhg.is_finite()));
                }
                GapPolicy::MarkInvalid => {
                    let nans = got.iter().filter(|s| s.value_mmhg.is_nan()).count();
                    assert_eq!(nans, 3);
                }
            }
            // Indices are continuous: time is never silently compressed.
            for (i, s) in got.iter().enumerate() {
                assert_eq!(s.index, i as u64);
            }
            assert_eq!(pipe.health().decoder.gap_events, 1);
        }
    }

    #[test]
    fn unaligned_gap_keeps_output_cadence() {
        // 100-bit frames: gaps are not multiples of the OSR, so the
        // pipeline must re-phase with filler.
        let mut enc = FrameEncoder::new(0);
        let packets: Vec<Vec<u8>> = (0..64)
            .map(|i| enc.encode(&chunk(100, i)).unwrap())
            .collect();
        let mut pipe = pipeline(GapPolicy::HoldLast);
        let mut got = Vec::new();
        for (i, p) in packets.iter().enumerate() {
            if i == 10 || i == 30 {
                continue;
            }
            pipe.push_bytes(p, &mut got);
        }
        // 64 × 100 bits = 6400 clocks = 50 outputs at OSR 128; the two
        // 100-clock gaps shift which clocks exist but the total output
        // count stays within one sample of the lossless cadence.
        let total = got.len() as i64;
        assert!((total - 50).abs() <= 1, "{total}");
        assert!(got.iter().any(|s| s.flag == SampleFlag::Concealed));
    }

    #[test]
    fn huge_clock_jump_is_a_bounded_stream_reset() {
        use tonos_dsp::frame::Frame;
        // First frame of a connection claiming an enormous clock index —
        // a long-uptime reconnect, or a forged header (the CRC is
        // integrity, not authentication). Concealment must stay bounded
        // instead of emitting one sample per lost output slot.
        let bits = chunk(128, 0);
        let clock = 1u64 << 40;
        let frame = Frame::bitstream(0, 7, clock, &bits).unwrap();
        let mut pipe = pipeline(GapPolicy::HoldLast);
        let mut got = Vec::new();
        pipe.push_bytes(&frame.encode(), &mut got);

        let clamp = (MAX_CONCEAL_S * pipe.output_rate_hz()).ceil() as u64;
        assert!(
            (got.len() as u64) <= clamp + 2,
            "{} samples emitted for a 2^40-clock gap",
            got.len()
        );
        let health = pipe.health();
        assert_eq!(health.stream_resets, 1);
        let whole = clock / pipe.osr() as u64;
        // Every output slot is accounted for: skipped + emitted covers
        // the whole gap plus the frame's own decimated sample.
        assert_eq!(health.skipped_samples + got.len() as u64, whole + 1);
        // The index is re-based, not compressed: the frame's own sample
        // lands exactly where the device clock says it belongs.
        assert_eq!(got.last().unwrap().index, whole);
    }

    #[test]
    fn two_point_calibration_recovers_pressure() {
        let config = SystemConfig::paper_default();
        let cal =
            LinkCalibration::two_point(&config, MillimetersHg(60.0), MillimetersHg(160.0)).unwrap();
        // A third settled probe point must land near the line.
        let mut sys = ReadoutSystem::new(config).unwrap();
        let elements = config.chip.layout.rows * config.chip.layout.cols;
        let frame = vec![
            config
                .contact
                .net_element_pressure(Pascals::from_mmhg(MillimetersHg(100.0)));
            elements
        ];
        for _ in 0..(sys.settling_frames() + 64) {
            sys.push_frame(&frame).unwrap();
        }
        let mut acc = 0.0;
        for _ in 0..64 {
            acc += sys.push_frame(&frame).unwrap();
        }
        let recovered = cal.apply(acc / 64.0);
        assert!(
            (recovered - 100.0).abs() < 5.0,
            "recovered {recovered} mmHg"
        );
    }
}

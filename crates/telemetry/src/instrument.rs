//! Cheap instrument handles held by instrumented components.
//!
//! Every handle wraps `Option<Arc<..>>`: code built against a disabled
//! [`Telemetry`](crate::Telemetry) handle gets `None`, so each operation
//! costs exactly one branch and no atomics. Handles are `Clone` and are
//! meant to be resolved once, at component construction, not per call.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::clock::Clock;
use crate::histogram::HistogramCore;
use crate::snapshot::HistogramSummary;

/// Monotonically increasing event count.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    pub(crate) cell: Option<Arc<AtomicU64>>,
}

impl Counter {
    /// A handle that ignores all updates.
    pub fn disabled() -> Self {
        Counter { cell: None }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.cell {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// Last-write-wins floating-point level (power draw, contact quality, ...).
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    pub(crate) cell: Option<Arc<AtomicU64>>,
}

impl Gauge {
    /// A handle that ignores all updates.
    pub fn disabled() -> Self {
        Gauge { cell: None }
    }

    /// Replaces the value.
    #[inline]
    pub fn set(&self, value: f64) {
        if let Some(cell) = &self.cell {
            cell.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// Accumulates into the value (for energy-style running totals).
    #[inline]
    pub fn add(&self, delta: f64) {
        if let Some(cell) = &self.cell {
            let mut current = cell.load(Ordering::Relaxed);
            loop {
                let next = (f64::from_bits(current) + delta).to_bits();
                match cell.compare_exchange_weak(
                    current,
                    next,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => return,
                    Err(actual) => current = actual,
                }
            }
        }
    }

    /// Current value (0.0 when disabled).
    pub fn get(&self) -> f64 {
        self.cell
            .as_ref()
            .map_or(0.0, |c| f64::from_bits(c.load(Ordering::Relaxed)))
    }
}

/// Handle onto a shared fixed-bucket histogram.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    pub(crate) core: Option<Arc<HistogramCore>>,
}

impl Histogram {
    /// A handle that ignores all updates.
    pub fn disabled() -> Self {
        Histogram { core: None }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, value: f64) {
        if let Some(core) = &self.core {
            core.record(value);
        }
    }

    /// Number of observations (0 when disabled).
    pub fn count(&self) -> u64 {
        self.core.as_ref().map_or(0, |c| c.count())
    }

    /// Estimated quantile, when enabled and non-empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        self.core.as_ref().and_then(|c| c.quantile(q))
    }

    /// Merges a snapshot's [`HistogramSummary`] into this histogram
    /// (bucket-wise; the summary must have the same bucket layout).
    /// Returns `false` when disabled or on layout mismatch.
    pub fn absorb(&self, summary: &HistogramSummary) -> bool {
        let Some(core) = &self.core else { return false };
        let counts: Vec<u64> = summary.buckets.iter().map(|b| b.count).collect();
        core.absorb_counts(&counts, summary.sum, summary.min, summary.max)
    }
}

/// Times named stages and records their durations (in seconds) into a
/// histogram, via the registry's [`Clock`].
#[derive(Clone, Default)]
pub struct SpanTimer {
    pub(crate) clock: Option<Arc<dyn Clock>>,
    pub(crate) hist: Option<Arc<HistogramCore>>,
}

impl std::fmt::Debug for SpanTimer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanTimer")
            .field("enabled", &self.clock.is_some())
            .finish()
    }
}

impl SpanTimer {
    /// A handle that ignores all updates.
    pub fn disabled() -> Self {
        SpanTimer {
            clock: None,
            hist: None,
        }
    }

    /// Starts a span; the returned guard records on [`SpanGuard::finish`]
    /// or drop.
    #[inline]
    pub fn start(&self) -> SpanGuard<'_> {
        SpanGuard {
            timer: self,
            started: self.clock.as_ref().map(|c| c.now()),
            done: false,
        }
    }

    /// Records an already-measured duration.
    #[inline]
    pub fn record(&self, elapsed: Duration) {
        if let Some(hist) = &self.hist {
            hist.record(elapsed.as_secs_f64());
        }
    }
}

/// In-flight span; records its elapsed time when finished or dropped.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    timer: &'a SpanTimer,
    started: Option<Duration>,
    done: bool,
}

impl SpanGuard<'_> {
    /// Ends the span now and records it.
    pub fn finish(mut self) {
        self.close();
    }

    fn close(&mut self) {
        if self.done {
            return;
        }
        self.done = true;
        if let (Some(clock), Some(started)) = (self.timer.clock.as_ref(), self.started) {
            self.timer.record(clock.now().saturating_sub(started));
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::FakeClock;
    use crate::histogram::buckets;

    #[test]
    fn disabled_handles_are_inert() {
        let c = Counter::disabled();
        c.inc();
        c.add(10);
        assert_eq!(c.get(), 0);

        let g = Gauge::disabled();
        g.set(3.5);
        g.add(1.0);
        assert_eq!(g.get(), 0.0);

        let h = Histogram::disabled();
        h.record(1.0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), None);

        let t = SpanTimer::disabled();
        t.start().finish();
        t.record(Duration::from_secs(1));
    }

    #[test]
    fn counter_and_gauge_accumulate() {
        let c = Counter {
            cell: Some(Arc::new(AtomicU64::new(0))),
        };
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);

        let g = Gauge {
            cell: Some(Arc::new(AtomicU64::new(0f64.to_bits()))),
        };
        g.set(2.0);
        g.add(0.5);
        assert_eq!(g.get(), 2.5);
    }

    #[test]
    fn span_guard_records_fake_clock_elapsed() {
        let clock = Arc::new(FakeClock::new());
        let hist = Arc::new(HistogramCore::new(&buckets::duration_seconds()));
        let timer = SpanTimer {
            clock: Some(clock.clone() as Arc<dyn Clock>),
            hist: Some(hist.clone()),
        };

        let guard = timer.start();
        clock.advance(Duration::from_millis(3));
        guard.finish();

        assert_eq!(hist.count(), 1);
        assert!((hist.sum() - 0.003).abs() < 1e-12);

        // Drop (without finish) records too, and finish() is idempotent.
        {
            let _guard = timer.start();
            clock.advance(Duration::from_millis(1));
        }
        assert_eq!(hist.count(), 2);
    }
}

//! `tonos-telemetry` — dependency-free instrumentation for the tonos
//! signal path, from modulator bit to clinical alarm.
//!
//! The paper's headline claims (12-bit / 1 kS/s output, SNR > 72 dB,
//! 11.5 mW) are runtime properties of a pipeline that otherwise runs as a
//! black box. This crate makes the pipeline observable without touching
//! its numerics:
//!
//! * [`Counter`] / [`Gauge`] — lock-free atomics for event counts
//!   (modulator cycles, settling discards, alarms) and levels (power
//!   draw, accumulated energy).
//! * [`Histogram`] — fixed-bucket distributions with p50/p95/p99 readout
//!   (beat intervals, stage durations).
//! * [`SpanTimer`] — scoped stage timing on a [`Clock`] trait, so tests
//!   inject a [`FakeClock`] and assert exact durations.
//! * [`Journal`] — a bounded ring buffer of severity-tagged events
//!   (calibrations, recalibrations, clinical alarms).
//! * [`Registry`] — owns everything, aggregates it into a serializable
//!   [`TelemetrySnapshot`] (hand-rolled JSON + CSV), and summarizes
//!   cross-stage health via [`Registry::health`].
//!
//! # Opt-in, near-zero cost when off
//!
//! Instrumented components take a [`Telemetry`] handle at construction.
//! [`Telemetry::disabled`] yields inert instruments: every operation is
//! one `Option` branch — no atomics, no locks, no allocation — so the
//! hot ΣΔ loop can stay instrumented in production builds.
//!
//! ```
//! use tonos_telemetry::{names, Registry, Severity, Telemetry};
//!
//! let registry = Registry::new();
//! let telemetry = registry.telemetry(); // or Telemetry::disabled()
//!
//! // Component construction: resolve handles once.
//! let frames = telemetry.counter(names::READOUT_FRAMES_IN);
//!
//! // Hot path: lock-free.
//! frames.add(128);
//!
//! // Reporting.
//! telemetry.event(Severity::Info, "example", || "session done".into());
//! println!("{}", registry.health());
//! let json = registry.snapshot().to_json();
//! assert!(json.contains("core.readout.frames_in"));
//! ```

#![warn(missing_docs)]

pub mod clock;
pub mod expose;
pub mod histogram;
pub mod instrument;
pub mod journal;
pub mod registry;
pub mod rollup;
pub mod snapshot;

pub use clock::{Clock, FakeClock, MonotonicClock};
pub use expose::prometheus_text;
pub use histogram::{buckets, HistogramCore};
pub use instrument::{Counter, Gauge, Histogram, SpanGuard, SpanTimer};
pub use journal::{Event, Journal, Severity};
pub use registry::{names, HealthReport, Registry, StageTiming, Telemetry};
pub use rollup::Rollup;
pub use snapshot::{BucketCount, CounterValue, GaugeValue, HistogramSummary, TelemetrySnapshot};

//! Time sources for span timers and the event journal.
//!
//! All telemetry timestamps are [`Duration`]s since an arbitrary per-clock
//! origin (monotonic, not wall time). Production code uses
//! [`MonotonicClock`]; tests inject a [`FakeClock`] to make span timings
//! and journal timestamps exact.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A monotonic time source.
pub trait Clock: Send + Sync {
    /// Time elapsed since this clock's origin.
    fn now(&self) -> Duration;
}

/// Wall-clock-independent production clock backed by [`Instant`].
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose origin is the moment of construction.
    pub fn new() -> Self {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now(&self) -> Duration {
        self.origin.elapsed()
    }
}

/// Manually-advanced clock for deterministic tests.
///
/// Starts at zero; time moves only through [`FakeClock::advance`] or
/// [`FakeClock::set`]. Thread-safe, so it can be shared with a
/// [`Registry`](crate::Registry) while the test keeps a handle.
#[derive(Debug, Default)]
pub struct FakeClock {
    nanos: AtomicU64,
}

impl FakeClock {
    /// A fake clock reading zero.
    pub fn new() -> Self {
        FakeClock::default()
    }

    /// Moves the clock forward by `delta`.
    pub fn advance(&self, delta: Duration) {
        self.nanos
            .fetch_add(duration_to_nanos(delta), Ordering::Relaxed);
    }

    /// Jumps the clock to an absolute reading.
    pub fn set(&self, at: Duration) {
        self.nanos.store(duration_to_nanos(at), Ordering::Relaxed);
    }
}

fn duration_to_nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

impl Clock for FakeClock {
    fn now(&self) -> Duration {
        Duration::from_nanos(self.nanos.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_does_not_go_backwards() {
        let clock = MonotonicClock::new();
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
    }

    #[test]
    fn fake_clock_advances_exactly() {
        let clock = FakeClock::new();
        assert_eq!(clock.now(), Duration::ZERO);
        clock.advance(Duration::from_millis(250));
        clock.advance(Duration::from_millis(250));
        assert_eq!(clock.now(), Duration::from_millis(500));
        clock.set(Duration::from_secs(2));
        assert_eq!(clock.now(), Duration::from_secs(2));
    }
}

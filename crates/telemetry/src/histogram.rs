//! Fixed-bucket histograms with quantile readout.
//!
//! A histogram is defined by an ascending list of bucket *upper bounds*;
//! values above the last bound land in an implicit overflow bucket. All
//! state is atomic, so recording is lock-free and handles can be shared
//! across threads. Quantiles (p50/p95/p99) are estimated by linear
//! interpolation inside the bucket containing the requested rank, which
//! is the standard fixed-bucket estimator: exact at bucket boundaries,
//! at most one bucket width off inside.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared lock-free histogram state. Public handles wrap this in an
/// `Option<Arc<..>>` so a disabled handle costs one branch per record.
#[derive(Debug)]
pub struct HistogramCore {
    /// Ascending bucket upper bounds (inclusive).
    bounds: Vec<f64>,
    /// One counter per bound, plus a trailing overflow bucket.
    counts: Vec<AtomicU64>,
    total: AtomicU64,
    /// Running sum / extrema, stored as `f64` bit patterns.
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl HistogramCore {
    /// Builds a histogram over `bounds` (must be finite, ascending, and
    /// non-empty).
    pub fn new(bounds: &[f64]) -> Self {
        assert!(
            !bounds.is_empty(),
            "histogram needs at least one bucket bound"
        );
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]) && bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite and strictly ascending"
        );
        HistogramCore {
            bounds: bounds.to_vec(),
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            total: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    /// Records one observation. Non-finite values are counted in the
    /// overflow bucket but excluded from sum/min/max.
    pub fn record(&self, value: f64) {
        let idx = if value.is_finite() {
            self.bounds.partition_point(|&b| b < value)
        } else {
            self.bounds.len()
        };
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        if value.is_finite() {
            atomic_f64_add(&self.sum_bits, value);
            atomic_f64_min(&self.min_bits, value);
            atomic_f64_max(&self.max_bits, value);
        }
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Sum of all finite observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Smallest finite observation, if any.
    pub fn min(&self) -> Option<f64> {
        let v = f64::from_bits(self.min_bits.load(Ordering::Relaxed));
        v.is_finite().then_some(v)
    }

    /// Largest finite observation, if any.
    pub fn max(&self) -> Option<f64> {
        let v = f64::from_bits(self.max_bits.load(Ordering::Relaxed));
        v.is_finite().then_some(v)
    }

    /// Mean of all finite observations, if any.
    pub fn mean(&self) -> Option<f64> {
        let n = self.count();
        (n > 0).then(|| self.sum() / n as f64)
    }

    /// Bucket upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (one per bound, plus the overflow bucket last).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`) by in-bucket linear
    /// interpolation.
    ///
    /// Conventions: the first bucket's lower edge is `min(0, bounds[0])`;
    /// ranks landing in the overflow bucket return the observed maximum.
    /// Returns `None` while the histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return None;
        }
        // Rank in [1, total]: the k-th smallest observation.
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if cum + c >= rank {
                if i == self.bounds.len() {
                    // Overflow bucket: the best point estimate we have.
                    return Some(self.max().unwrap_or(*self.bounds.last().unwrap()));
                }
                let hi = self.bounds[i];
                let lo = if i == 0 {
                    0f64.min(hi)
                } else {
                    self.bounds[i - 1]
                };
                let within = (rank - cum) as f64 / c as f64;
                return Some(lo + (hi - lo) * within);
            }
            cum += c;
        }
        unreachable!("rank {rank} exceeds total {total}");
    }

    /// Merges another histogram's state into this one: per-bucket counts
    /// are added (overflow last, same layout as
    /// [`HistogramCore::bucket_counts`]), `sum` accumulates, and the
    /// extrema widen. Returns `false` — absorbing nothing — when `counts`
    /// does not match this histogram's bucket layout, so mismatched
    /// layouts fail loudly at the caller instead of corrupting quantiles.
    pub fn absorb_counts(
        &self,
        counts: &[u64],
        sum: f64,
        min: Option<f64>,
        max: Option<f64>,
    ) -> bool {
        if counts.len() != self.counts.len() {
            return false;
        }
        let mut total = 0u64;
        for (slot, &c) in self.counts.iter().zip(counts) {
            slot.fetch_add(c, Ordering::Relaxed);
            total += c;
        }
        self.total.fetch_add(total, Ordering::Relaxed);
        if sum.is_finite() {
            atomic_f64_add(&self.sum_bits, sum);
        }
        if let Some(m) = min {
            atomic_f64_min(&self.min_bits, m);
        }
        if let Some(m) = max {
            atomic_f64_max(&self.max_bits, m);
        }
        true
    }

    /// Zeroes all state.
    pub fn reset(&self) {
        for c in &self.counts {
            c.store(0, Ordering::Relaxed);
        }
        self.total.store(0, Ordering::Relaxed);
        self.sum_bits.store(0f64.to_bits(), Ordering::Relaxed);
        self.min_bits
            .store(f64::INFINITY.to_bits(), Ordering::Relaxed);
        self.max_bits
            .store(f64::NEG_INFINITY.to_bits(), Ordering::Relaxed);
    }
}

fn atomic_f64_add(bits: &AtomicU64, delta: f64) {
    let mut current = bits.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(current) + delta).to_bits();
        match bits.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => current = actual,
        }
    }
}

fn atomic_f64_min(bits: &AtomicU64, value: f64) {
    let mut current = bits.load(Ordering::Relaxed);
    while value < f64::from_bits(current) {
        match bits.compare_exchange_weak(
            current,
            value.to_bits(),
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => return,
            Err(actual) => current = actual,
        }
    }
}

fn atomic_f64_max(bits: &AtomicU64, value: f64) {
    let mut current = bits.load(Ordering::Relaxed);
    while value > f64::from_bits(current) {
        match bits.compare_exchange_weak(
            current,
            value.to_bits(),
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => return,
            Err(actual) => current = actual,
        }
    }
}

/// Bucket layout helpers.
pub mod buckets {
    /// `count` bounds starting at `start`, spaced `width` apart.
    pub fn linear(start: f64, width: f64, count: usize) -> Vec<f64> {
        assert!(
            width > 0.0 && count > 0,
            "linear buckets need positive width and count"
        );
        (0..count).map(|i| start + width * i as f64).collect()
    }

    /// `count` bounds starting at `start`, each `factor` times the last.
    pub fn exponential(start: f64, factor: f64, count: usize) -> Vec<f64> {
        assert!(
            start > 0.0 && factor > 1.0 && count > 0,
            "exponential buckets need positive start and factor > 1"
        );
        let mut bound = start;
        (0..count)
            .map(|_| {
                let b = bound;
                bound *= factor;
                b
            })
            .collect()
    }

    /// Default layout for span durations in seconds: 1 µs to ~16 s.
    pub fn duration_seconds() -> Vec<f64> {
        exponential(1e-6, 2.0, 24)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_route_values_to_the_right_slot() {
        let h = HistogramCore::new(&[1.0, 2.0, 4.0]);
        h.record(0.5); // bucket 0 (<= 1.0)
        h.record(1.0); // bucket 0 (bounds are inclusive)
        h.record(1.5); // bucket 1
        h.record(4.0); // bucket 2
        h.record(9.0); // overflow
        assert_eq!(h.bucket_counts(), vec![2, 1, 1, 1]);
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), Some(0.5));
        assert_eq!(h.max(), Some(9.0));
        assert!((h.sum() - 16.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let h = HistogramCore::new(&[10.0, 20.0, 30.0]);
        // 10 observations in (10, 20]: ranks 1..=10 spread linearly.
        for _ in 0..10 {
            h.record(15.0);
        }
        // p50 → rank 5 of 10, all in bucket (10, 20]: 10 + 10 * 5/10 = 15.
        assert!((h.quantile(0.5).unwrap() - 15.0).abs() < 1e-12);
        // p100 → rank 10: upper bound of the bucket.
        assert!((h.quantile(1.0).unwrap() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_cross_buckets_correctly() {
        let h = HistogramCore::new(&[1.0, 2.0, 3.0, 4.0]);
        for v in [0.5, 1.5, 2.5, 3.5] {
            for _ in 0..25 {
                h.record(v);
            }
        }
        // Rank 50 of 100 is the last observation of bucket (1, 2].
        assert!((h.quantile(0.5).unwrap() - 2.0).abs() < 1e-12);
        // Rank 95 of 100 falls in bucket (3, 4]: 3 + 1 * 20/25 = 3.8.
        assert!((h.quantile(0.95).unwrap() - 3.8).abs() < 1e-12);
        // Rank 99: 3 + 1 * 24/25 = 3.96.
        assert!((h.quantile(0.99).unwrap() - 3.96).abs() < 1e-12);
    }

    #[test]
    fn overflow_quantile_reports_observed_max() {
        let h = HistogramCore::new(&[1.0]);
        h.record(100.0);
        h.record(250.0);
        assert_eq!(h.quantile(0.99), Some(250.0));
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = HistogramCore::new(&[1.0, 2.0]);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
    }

    #[test]
    fn non_finite_values_only_touch_overflow() {
        let h = HistogramCore::new(&[1.0]);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.bucket_counts(), vec![0, 2]);
        assert_eq!(h.sum(), 0.0);
        assert_eq!(h.min(), None);
    }

    #[test]
    fn reset_clears_everything() {
        let h = HistogramCore::new(&[1.0, 2.0]);
        h.record(0.5);
        h.record(5.0);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.bucket_counts(), vec![0, 0, 0]);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn bucket_layout_helpers() {
        assert_eq!(buckets::linear(0.0, 0.5, 3), vec![0.0, 0.5, 1.0]);
        assert_eq!(buckets::exponential(1.0, 10.0, 3), vec![1.0, 10.0, 100.0]);
        let d = buckets::duration_seconds();
        assert_eq!(d.len(), 24);
        assert!(d.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn rejects_unsorted_bounds() {
        HistogramCore::new(&[2.0, 1.0]);
    }

    #[test]
    fn absorb_merges_counts_and_extrema() {
        let a = HistogramCore::new(&[1.0, 2.0]);
        let b = HistogramCore::new(&[1.0, 2.0]);
        a.record(0.5);
        a.record(1.5);
        b.record(1.7);
        b.record(9.0);
        assert!(a.absorb_counts(&b.bucket_counts(), b.sum(), b.min(), b.max()));
        assert_eq!(a.count(), 4);
        assert_eq!(a.bucket_counts(), vec![1, 2, 1]);
        assert!((a.sum() - 12.7).abs() < 1e-12);
        assert_eq!(a.min(), Some(0.5));
        assert_eq!(a.max(), Some(9.0));
        // Layout mismatch is rejected without touching state.
        assert!(!a.absorb_counts(&[1, 2], 3.0, None, None));
        assert_eq!(a.count(), 4);
    }
}

//! Fleet-wide aggregation of per-session telemetry.
//!
//! A fleet engine gives every monitoring session its own [`Registry`] so
//! sessions stay isolated — a wedged session can't skew another's
//! numbers, and a panicked session's instruments die with it. What
//! operators want to *read*, though, is the aggregate: total modulator
//! cycles across the ward, the alarm fan-in, the p95 beat interval over
//! every patient. [`Rollup`] bridges the two: it absorbs immutable
//! [`TelemetrySnapshot`]s from session registries into one fleet-level
//! [`Registry`], merging counters, gauges, and histograms name-by-name.
//!
//! ```
//! use tonos_telemetry::{names, Registry, Rollup};
//!
//! // Two independent sessions, each with its own registry.
//! let (a, b) = (Registry::new(), Registry::new());
//! a.telemetry().counter(names::MONITOR_BEATS).add(70);
//! b.telemetry().counter(names::MONITOR_BEATS).add(65);
//!
//! // The fleet rolls both up into one aggregate view.
//! let mut rollup = Rollup::new();
//! rollup.absorb(&a.snapshot());
//! rollup.absorb(&b.snapshot());
//! assert_eq!(rollup.sessions(), 2);
//! assert_eq!(rollup.snapshot().counter(names::MONITOR_BEATS), Some(135));
//! ```

use crate::journal::Severity;
use crate::registry::{names, HealthReport, Registry};
use crate::snapshot::TelemetrySnapshot;

/// Accumulates per-session [`TelemetrySnapshot`]s into one fleet-level
/// [`Registry`].
///
/// Merge semantics, per instrument kind:
///
/// * **Counters** add — fleet totals are the sum of session totals.
/// * **Gauges** add too: the additive gauges in the canonical set
///   (accumulated energy, power draw) aggregate meaningfully as fleet
///   totals, and last-write-wins would be arbitrary across sessions.
/// * **Histograms** merge bucket-wise via
///   [`HistogramCore::absorb_counts`](crate::HistogramCore::absorb_counts),
///   so fleet quantiles come from the pooled distribution, not an
///   average of per-session quantiles. A summary whose bucket layout
///   disagrees with an already-registered histogram of the same name is
///   skipped (and counted in [`Rollup::layout_mismatches`]).
/// * **Journal events** at warning/critical severity are re-journaled
///   into the fleet registry with their **session-clock timestamps and
///   sources preserved** (via
///   [`Telemetry::event_at`](crate::Telemetry::event_at)), so a fleet
///   operator can see *when* in a session's life an alarm fired; they
///   are also tallied into the [`names::FLEET_WARNING_EVENTS`] /
///   [`names::FLEET_CRITICAL_EVENTS`] counters, which survive journal
///   ring-buffer eviction. Debug/info events are dropped — fleet
///   journals would otherwise be all chatter.
#[derive(Debug)]
pub struct Rollup {
    registry: Registry,
    sessions: u64,
    layout_mismatches: u64,
}

impl Rollup {
    /// A rollup into a fresh registry.
    pub fn new() -> Self {
        Rollup::into_registry(Registry::new())
    }

    /// A rollup into an existing registry (e.g. the fleet engine's own,
    /// so engine-level counters and absorbed session telemetry share one
    /// snapshot).
    pub fn into_registry(registry: Registry) -> Self {
        Rollup {
            registry,
            sessions: 0,
            layout_mismatches: 0,
        }
    }

    /// Merges one session snapshot into the aggregate.
    pub fn absorb(&mut self, snapshot: &TelemetrySnapshot) {
        let t = self.registry.telemetry();
        for c in &snapshot.counters {
            t.counter(&c.name).add(c.value);
        }
        for g in &snapshot.gauges {
            t.gauge(&g.name).add(g.value);
        }
        for h in &snapshot.histograms {
            let bounds: Vec<f64> = h.buckets.iter().filter_map(|b| b.upper).collect();
            if bounds.is_empty() || !t.histogram(&h.name, &bounds).absorb(h) {
                self.layout_mismatches += 1;
            }
        }
        let mut warnings = 0u64;
        let mut criticals = 0u64;
        for e in &snapshot.events {
            match e.severity {
                Severity::Warning => warnings += 1,
                Severity::Critical => criticals += 1,
                Severity::Debug | Severity::Info => continue,
            }
            t.event_at(e.at, e.severity, e.source, || e.message.clone());
        }
        t.counter(names::FLEET_WARNING_EVENTS).add(warnings);
        t.counter(names::FLEET_CRITICAL_EVENTS).add(criticals);
        self.sessions += 1;
    }

    /// Number of snapshots absorbed so far.
    pub fn sessions(&self) -> u64 {
        self.sessions
    }

    /// Histogram summaries dropped because their bucket layout did not
    /// match the already-registered histogram of the same name.
    pub fn layout_mismatches(&self) -> u64 {
        self.layout_mismatches
    }

    /// The aggregate registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Snapshot of the aggregate.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        self.registry.snapshot()
    }

    /// Health report over the aggregate — the same cross-stage ratios as
    /// a single session, computed fleet-wide.
    pub fn health(&self) -> HealthReport {
        HealthReport::from_snapshot(&self.snapshot())
    }
}

impl Default for Rollup {
    fn default() -> Self {
        Rollup::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::buckets;
    use crate::journal::Severity;

    #[test]
    fn counters_and_gauges_sum_across_sessions() {
        let mut rollup = Rollup::new();
        for beats in [10u64, 20, 30] {
            let session = Registry::new();
            let t = session.telemetry();
            t.counter(names::MONITOR_BEATS).add(beats);
            t.gauge(names::CHIP_ENERGY_J).add(0.5);
            rollup.absorb(&session.snapshot());
        }
        assert_eq!(rollup.sessions(), 3);
        let agg = rollup.snapshot();
        assert_eq!(agg.counter(names::MONITOR_BEATS), Some(60));
        assert!((agg.gauge(names::CHIP_ENERGY_J).unwrap() - 1.5).abs() < 1e-12);
        assert_eq!(rollup.health().beats, 60);
    }

    #[test]
    fn histograms_pool_distributions_not_quantiles() {
        let mut rollup = Rollup::new();
        for center in [0.4, 1.2] {
            let session = Registry::new();
            let h = session.telemetry().histogram(
                names::MONITOR_BEAT_INTERVAL_S,
                &buckets::linear(0.2, 0.2, 10),
            );
            for _ in 0..50 {
                h.record(center);
            }
            rollup.absorb(&session.snapshot());
        }
        let agg = rollup.snapshot();
        let h = agg.histogram(names::MONITOR_BEAT_INTERVAL_S).unwrap();
        assert_eq!(h.count, 100);
        assert_eq!(h.min, Some(0.4));
        assert_eq!(h.max, Some(1.2));
        // The pooled median sits between the two session modes — an
        // average of per-session p50s could never see both.
        let p50 = h.p50.unwrap();
        assert!((0.2..=1.2).contains(&p50), "pooled p50 {p50}");
        assert_eq!(rollup.layout_mismatches(), 0);
    }

    #[test]
    fn mismatched_histogram_layouts_are_skipped_not_corrupted() {
        let mut rollup = Rollup::new();
        let a = Registry::new();
        a.telemetry().histogram("h", &[1.0, 2.0]).record(0.5);
        rollup.absorb(&a.snapshot());
        let b = Registry::new();
        b.telemetry().histogram("h", &[5.0]).record(4.0);
        rollup.absorb(&b.snapshot());
        assert_eq!(rollup.layout_mismatches(), 1);
        assert_eq!(rollup.snapshot().histogram("h").unwrap().count, 1);
    }

    #[test]
    fn journal_severities_become_fleet_counters() {
        let mut rollup = Rollup::new();
        let session = Registry::new();
        let t = session.telemetry();
        t.event(Severity::Info, "monitor", || "calibrated".into());
        t.event(Severity::Warning, "readout", || "settling".into());
        t.event(Severity::Critical, "analyzer", || "hypertension".into());
        rollup.absorb(&session.snapshot());
        let agg = rollup.snapshot();
        assert_eq!(agg.counter(names::FLEET_WARNING_EVENTS), Some(1));
        assert_eq!(agg.counter(names::FLEET_CRITICAL_EVENTS), Some(1));
        // Info chatter stays behind; only the actionable events travel.
        assert_eq!(agg.events.len(), 2);
    }

    #[test]
    fn fake_clock_events_are_ordered_and_rollup_preserves_timestamps() {
        use crate::clock::FakeClock;
        use std::sync::Arc;
        use std::time::Duration;

        let clock = Arc::new(FakeClock::new());
        let session = Registry::with_clock(clock.clone());
        let t = session.telemetry();

        clock.advance(Duration::from_secs(3));
        t.event(Severity::Warning, "readout", || "first".into());
        clock.advance(Duration::from_secs(4));
        t.event(Severity::Critical, "analyzer", || "second".into());

        // Session journal: monotone clock stamps in emission order.
        let events = session.snapshot().events;
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].at, Duration::from_secs(3));
        assert_eq!(events[1].at, Duration::from_secs(7));
        assert!(events[0].seq < events[1].seq);
        assert!(events[0].at < events[1].at);

        // Rollup into a registry whose own clock reads zero: the absorbed
        // events must carry the session-clock times, not the fleet's.
        let mut rollup = Rollup::new();
        rollup.absorb(&session.snapshot());
        let fleet_events = rollup.snapshot().events;
        assert_eq!(fleet_events.len(), 2);
        assert_eq!(fleet_events[0].at, Duration::from_secs(3));
        assert_eq!(fleet_events[0].source, "readout");
        assert_eq!(fleet_events[0].message, "first");
        assert_eq!(fleet_events[1].at, Duration::from_secs(7));
        assert_eq!(fleet_events[1].severity, Severity::Critical);
    }

    #[test]
    fn rollup_into_existing_registry_shares_engine_counters() {
        let fleet = Registry::new();
        fleet
            .telemetry()
            .counter(names::FLEET_SESSIONS_STARTED)
            .inc();
        let mut rollup = Rollup::into_registry(fleet.clone());
        let session = Registry::new();
        session.telemetry().counter(names::MONITOR_BEATS).add(5);
        rollup.absorb(&session.snapshot());
        let agg = fleet.snapshot();
        assert_eq!(agg.counter(names::FLEET_SESSIONS_STARTED), Some(1));
        assert_eq!(agg.counter(names::MONITOR_BEATS), Some(5));
    }
}

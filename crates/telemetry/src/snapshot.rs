//! Point-in-time capture of a registry, with JSON and CSV export.
//!
//! The writers are hand-rolled (the crate has zero dependencies) and
//! follow the same conventions as `tonos-core`'s `export` module: a
//! stable field order, `null` for unavailable numeric values, and CSV
//! rows flat enough to load into a spreadsheet or pandas without custom
//! parsing.

use std::io::Write;
use std::time::Duration;

use crate::journal::Event;

/// One counter's value at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterValue {
    /// Instrument name.
    pub name: String,
    /// Accumulated count.
    pub value: u64,
}

/// One gauge's value at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeValue {
    /// Instrument name.
    pub name: String,
    /// Current level.
    pub value: f64,
}

/// One bucket of a histogram summary.
#[derive(Debug, Clone, PartialEq)]
pub struct BucketCount {
    /// Inclusive upper bound; `None` marks the overflow bucket.
    pub upper: Option<f64>,
    /// Observations in this bucket.
    pub count: u64,
}

/// One histogram's distribution at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    /// Instrument name.
    pub name: String,
    /// Number of observations.
    pub count: u64,
    /// Sum of finite observations.
    pub sum: f64,
    /// Smallest finite observation.
    pub min: Option<f64>,
    /// Largest finite observation.
    pub max: Option<f64>,
    /// Estimated median.
    pub p50: Option<f64>,
    /// Estimated 95th percentile.
    pub p95: Option<f64>,
    /// Estimated 99th percentile.
    pub p99: Option<f64>,
    /// Per-bucket counts, overflow last.
    pub buckets: Vec<BucketCount>,
}

impl HistogramSummary {
    /// Mean of finite observations, if any were recorded.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`) by linear interpolation
    /// inside the bucket containing the requested rank — the same
    /// fixed-bucket estimator
    /// [`HistogramCore::quantile`](crate::HistogramCore::quantile)
    /// applies to live state, usable on any snapshot (including rolled-up
    /// summaries whose live core is long gone). This is what renders the
    /// p50/p90/p99 quantile lines of the Prometheus exposition.
    ///
    /// Conventions match the core estimator: the first bucket's lower
    /// edge is `min(0, first bound)`; ranks landing in the overflow
    /// bucket return the observed maximum (falling back to the last
    /// finite bound when no finite value was ever recorded). Returns
    /// `None` while the summary is empty.
    ///
    /// # Panics
    ///
    /// Panics when `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        let total: u64 = self.buckets.iter().map(|b| b.count).sum();
        if total == 0 {
            return None;
        }
        // Rank in [1, total]: the k-th smallest observation.
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        let mut prev_upper: Option<f64> = None;
        for b in &self.buckets {
            if b.count > 0 && cum + b.count >= rank {
                let Some(hi) = b.upper else {
                    // Overflow bucket: the best point estimate we have.
                    return self.max.or(prev_upper);
                };
                let lo = prev_upper.unwrap_or_else(|| 0f64.min(hi));
                let within = (rank - cum) as f64 / b.count as f64;
                return Some(lo + (hi - lo) * within);
            }
            cum += b.count;
            if b.upper.is_some() {
                prev_upper = b.upper;
            }
        }
        None
    }
}

/// Serializable capture of every instrument and the journal.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySnapshot {
    /// Registry-clock time at capture.
    pub uptime: Duration,
    /// All counters, sorted by name.
    pub counters: Vec<CounterValue>,
    /// All gauges, sorted by name.
    pub gauges: Vec<GaugeValue>,
    /// All histograms, sorted by name.
    pub histograms: Vec<HistogramSummary>,
    /// Retained journal events, oldest first.
    pub events: Vec<Event>,
    /// Events ever journaled, including evicted ones.
    pub total_events: u64,
    /// Events evicted by the ring buffer.
    pub dropped_events: u64,
}

impl TelemetrySnapshot {
    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Looks up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// Looks up a histogram summary by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Renders the snapshot as a JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"uptime_s\": {},\n",
            fmt_f64(self.uptime.as_secs_f64())
        ));

        out.push_str("  \"counters\": {");
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {}", json_escape(&c.name), c.value));
        }
        out.push_str(if self.counters.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });

        out.push_str("  \"gauges\": {");
        for (i, g) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    \"{}\": {}",
                json_escape(&g.name),
                fmt_f64(g.value)
            ));
        }
        out.push_str(if self.gauges.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });

        out.push_str("  \"histograms\": [");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"name\": \"{}\", \"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                 \"p50\": {}, \"p95\": {}, \"p99\": {}, \"buckets\": [",
                json_escape(&h.name),
                h.count,
                fmt_f64(h.sum),
                fmt_opt_f64(h.min),
                fmt_opt_f64(h.max),
                fmt_opt_f64(h.p50),
                fmt_opt_f64(h.p95),
                fmt_opt_f64(h.p99),
            ));
            for (j, b) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "{{\"le\": {}, \"count\": {}}}",
                    fmt_opt_f64(b.upper),
                    b.count
                ));
            }
            out.push_str("]}");
        }
        out.push_str(if self.histograms.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });

        out.push_str("  \"events\": [");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"seq\": {}, \"t_s\": {}, \"severity\": \"{}\", \"source\": \"{}\", \
                 \"message\": \"{}\"}}",
                e.seq,
                fmt_f64(e.at.as_secs_f64()),
                e.severity.as_str(),
                json_escape(e.source),
                json_escape(&e.message),
            ));
        }
        out.push_str(if self.events.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });

        out.push_str(&format!("  \"total_events\": {},\n", self.total_events));
        out.push_str(&format!("  \"dropped_events\": {}\n", self.dropped_events));
        out.push_str("}\n");
        out
    }

    /// Writes the snapshot as flat CSV: `kind,name,field,value` rows.
    pub fn write_csv<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        writeln!(w, "kind,name,field,value")?;
        writeln!(
            w,
            "meta,registry,uptime_s,{}",
            fmt_f64(self.uptime.as_secs_f64())
        )?;
        writeln!(w, "meta,registry,total_events,{}", self.total_events)?;
        writeln!(w, "meta,registry,dropped_events,{}", self.dropped_events)?;
        for c in &self.counters {
            writeln!(w, "counter,{},value,{}", csv_escape(&c.name), c.value)?;
        }
        for g in &self.gauges {
            writeln!(
                w,
                "gauge,{},value,{}",
                csv_escape(&g.name),
                fmt_f64(g.value)
            )?;
        }
        for h in &self.histograms {
            let name = csv_escape(&h.name);
            writeln!(w, "histogram,{name},count,{}", h.count)?;
            writeln!(w, "histogram,{name},sum,{}", fmt_f64(h.sum))?;
            for (field, value) in [
                ("min", h.min),
                ("max", h.max),
                ("p50", h.p50),
                ("p95", h.p95),
                ("p99", h.p99),
            ] {
                writeln!(w, "histogram,{name},{field},{}", fmt_opt_f64(value))?;
            }
        }
        for e in &self.events {
            writeln!(
                w,
                "event,{},{}@{},{}",
                csv_escape(e.source),
                e.severity.as_str(),
                fmt_f64(e.at.as_secs_f64()),
                csv_escape(&e.message),
            )?;
        }
        Ok(())
    }
}

/// Formats a float for JSON/CSV: finite values via Rust's shortest
/// round-trip formatting, non-finite as `null`.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn fmt_opt_f64(v: Option<f64>) -> String {
    v.map_or_else(|| "null".to_string(), fmt_f64)
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Escapes a CSV field: commas, quotes, and newlines force quoting.
fn csv_escape(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::Severity;

    fn sample() -> TelemetrySnapshot {
        TelemetrySnapshot {
            uptime: Duration::from_millis(1500),
            counters: vec![CounterValue {
                name: "frames".into(),
                value: 42,
            }],
            gauges: vec![GaugeValue {
                name: "power_w".into(),
                value: 0.0115,
            }],
            histograms: vec![HistogramSummary {
                name: "beat_s".into(),
                count: 2,
                sum: 1.6,
                min: Some(0.7),
                max: Some(0.9),
                p50: Some(0.7),
                p95: Some(0.9),
                p99: Some(0.9),
                buckets: vec![
                    BucketCount {
                        upper: Some(1.0),
                        count: 2,
                    },
                    BucketCount {
                        upper: None,
                        count: 0,
                    },
                ],
            }],
            events: vec![Event {
                seq: 0,
                at: Duration::from_millis(900),
                severity: Severity::Critical,
                source: "analyzer",
                message: "hypertension, MAP 130 mmHg".into(),
            }],
            total_events: 1,
            dropped_events: 0,
        }
    }

    #[test]
    fn lookups_find_instruments_by_name() {
        let s = sample();
        assert_eq!(s.counter("frames"), Some(42));
        assert_eq!(s.counter("missing"), None);
        assert_eq!(s.gauge("power_w"), Some(0.0115));
        assert_eq!(s.histogram("beat_s").unwrap().count, 2);
        assert_eq!(s.histogram("beat_s").unwrap().mean(), Some(0.8));
    }

    #[test]
    fn json_contains_every_section() {
        let json = sample().to_json();
        assert!(json.contains("\"uptime_s\": 1.5"));
        assert!(json.contains("\"frames\": 42"));
        assert!(json.contains("\"power_w\": 0.0115"));
        assert!(json.contains("\"p95\": 0.9"));
        assert!(json.contains("\"le\": null"));
        assert!(json.contains("\"severity\": \"critical\""));
        assert!(json.contains("hypertension, MAP 130 mmHg"));
        // Braces balance (cheap structural sanity check).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn csv_rows_are_flat_and_quoted() {
        let mut buf = Vec::new();
        sample().write_csv(&mut buf).unwrap();
        let csv = String::from_utf8(buf).unwrap();
        assert!(csv.starts_with("kind,name,field,value\n"));
        assert!(csv.contains("counter,frames,value,42\n"));
        assert!(csv.contains("histogram,beat_s,p50,0.7\n"));
        // The comma in the message forces quoting.
        assert!(csv.contains("\"hypertension, MAP 130 mmHg\""));
    }

    fn summary_from(bounds: &[f64], counts: &[u64], max: Option<f64>) -> HistogramSummary {
        assert_eq!(counts.len(), bounds.len() + 1, "overflow bucket last");
        HistogramSummary {
            name: "h".into(),
            count: counts.iter().sum(),
            sum: 0.0,
            min: None,
            max,
            p50: None,
            p95: None,
            p99: None,
            buckets: bounds
                .iter()
                .map(|&b| Some(b))
                .chain(std::iter::once(None))
                .zip(counts.iter().copied())
                .map(|(upper, count)| BucketCount { upper, count })
                .collect(),
        }
    }

    #[test]
    fn empty_summary_has_no_quantiles() {
        let s = summary_from(&[1.0, 2.0], &[0, 0, 0], None);
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.quantile(0.99), None);
    }

    #[test]
    fn single_bucket_summary_interpolates_from_zero() {
        // 4 observations, all in the one bucket (0, 10]: rank k of 4
        // lands at 10·k/4.
        let s = summary_from(&[10.0], &[4, 0], Some(9.0));
        assert!((s.quantile(0.5).unwrap() - 5.0).abs() < 1e-12);
        assert!((s.quantile(1.0).unwrap() - 10.0).abs() < 1e-12);
        // q = 0 clamps to rank 1.
        assert!((s.quantile(0.0).unwrap() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn overflow_bucket_quantile_reports_observed_max() {
        let s = summary_from(&[1.0], &[1, 3], Some(250.0));
        assert_eq!(s.quantile(0.99), Some(250.0));
        // Without a recorded max (only non-finite observations landed
        // there), fall back to the last finite bound.
        let s = summary_from(&[1.0], &[0, 2], None);
        assert_eq!(s.quantile(0.5), Some(1.0));
    }

    #[test]
    fn summary_quantiles_cross_buckets_like_the_core_estimator() {
        // Mirror of the HistogramCore cross-bucket test: 25 observations
        // in each of the four buckets (0,1], (1,2], (2,3], (3,4].
        let s = summary_from(&[1.0, 2.0, 3.0, 4.0], &[25, 25, 25, 25, 0], Some(3.5));
        assert!((s.quantile(0.5).unwrap() - 2.0).abs() < 1e-12);
        assert!((s.quantile(0.90).unwrap() - 3.6).abs() < 1e-12);
        assert!((s.quantile(0.95).unwrap() - 3.8).abs() < 1e-12);
        assert!((s.quantile(0.99).unwrap() - 3.96).abs() < 1e-12);
    }

    #[test]
    fn non_finite_values_serialize_as_null() {
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
        assert_eq!(fmt_opt_f64(None), "null");
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}

//! Prometheus text exposition (format version 0.0.4) of a snapshot.
//!
//! [`prometheus_text`] renders a [`TelemetrySnapshot`] as the plain-text
//! format every Prometheus-compatible scraper understands, so one
//! `GET /metrics` against the scope endpoint plugs the whole fleet into
//! an existing monitoring stack with zero glue.
//!
//! ## Naming and stability
//!
//! Instrument names use the repo's dotted convention
//! (`link.frames_rx`); Prometheus names must match
//! `[a-zA-Z_:][a-zA-Z0-9_:]*`. The mapping is mechanical and **stable**:
//! prefix `tonos_`, then every character outside the legal set becomes
//! `_`. Counters additionally get the conventional `_total` suffix.
//! The golden-file test (`tests/exposition.rs`) pins the rendered output
//! for the canonical [`names`](crate::registry::names) set, so renaming
//! an instrument breaks CI instead of silently breaking dashboards.
//!
//! ## Instrument mapping
//!
//! * Counter `a.b` → `tonos_a_b_total` (TYPE `counter`).
//! * Gauge `a.b` → `tonos_a_b` (TYPE `gauge`).
//! * Histogram `a.b` → `tonos_a_b` (TYPE `histogram`): cumulative
//!   `_bucket{le="…"}` series ending in `le="+Inf"`, plus `_sum` and
//!   `_count`; followed by a `tonos_a_b_quantile{quantile="…"}` gauge
//!   family carrying the interpolated p50/p90/p99 estimates
//!   ([`HistogramSummary::quantile`]).
//! * Snapshot metadata → `tonos_uptime_seconds`,
//!   `tonos_journal_events_total`, `tonos_journal_events_dropped_total`,
//!   and `tonos_journal_retained{severity="…"}`. Journal *messages* are
//!   not exposed — Prometheus is a metrics plane, not a log sink; tail
//!   the journal through the snapshot JSON instead.

use crate::journal::Severity;
use crate::snapshot::{HistogramSummary, TelemetrySnapshot};

/// Quantiles rendered for every histogram, as `{quantile="…"}` labels.
const QUANTILES: [(f64, &str); 3] = [(0.50, "0.5"), (0.90, "0.9"), (0.99, "0.99")];

/// Renders the snapshot in the Prometheus text exposition format.
pub fn prometheus_text(snapshot: &TelemetrySnapshot) -> String {
    let mut out = String::with_capacity(4096);

    family(
        &mut out,
        "tonos_uptime_seconds",
        "gauge",
        "Registry-clock time at snapshot capture.",
    );
    sample(
        &mut out,
        "tonos_uptime_seconds",
        None,
        snapshot.uptime.as_secs_f64(),
    );

    family(
        &mut out,
        "tonos_journal_events_total",
        "counter",
        "Events ever journaled, including evicted ones.",
    );
    sample(
        &mut out,
        "tonos_journal_events_total",
        None,
        snapshot.total_events as f64,
    );

    family(
        &mut out,
        "tonos_journal_events_dropped_total",
        "counter",
        "Events evicted by the journal ring buffer.",
    );
    sample(
        &mut out,
        "tonos_journal_events_dropped_total",
        None,
        snapshot.dropped_events as f64,
    );

    family(
        &mut out,
        "tonos_journal_retained",
        "gauge",
        "Retained journal events by severity.",
    );
    for severity in [
        Severity::Debug,
        Severity::Info,
        Severity::Warning,
        Severity::Critical,
    ] {
        let count = snapshot
            .events
            .iter()
            .filter(|e| e.severity == severity)
            .count();
        sample(
            &mut out,
            "tonos_journal_retained",
            Some(&format!("severity=\"{}\"", severity.as_str())),
            count as f64,
        );
    }

    for c in &snapshot.counters {
        let name = format!("{}_total", metric_name(&c.name));
        family(
            &mut out,
            &name,
            "counter",
            &format!("tonos counter {}", help_escape(&c.name)),
        );
        sample(&mut out, &name, None, c.value as f64);
    }

    for g in &snapshot.gauges {
        let name = metric_name(&g.name);
        family(
            &mut out,
            &name,
            "gauge",
            &format!("tonos gauge {}", help_escape(&g.name)),
        );
        sample(&mut out, &name, None, g.value);
    }

    for h in &snapshot.histograms {
        render_histogram(&mut out, h);
    }

    out
}

fn render_histogram(out: &mut String, h: &HistogramSummary) {
    let name = metric_name(&h.name);
    family(
        out,
        &name,
        "histogram",
        &format!("tonos histogram {}", help_escape(&h.name)),
    );
    let mut cumulative = 0u64;
    for b in &h.buckets {
        cumulative += b.count;
        let le = match b.upper {
            Some(upper) => prom_f64(upper),
            None => "+Inf".to_string(),
        };
        sample(
            out,
            &format!("{name}_bucket"),
            Some(&format!("le=\"{}\"", label_escape(&le))),
            cumulative as f64,
        );
    }
    sample(out, &format!("{name}_sum"), None, h.sum);
    sample(out, &format!("{name}_count"), None, h.count as f64);

    let quantile_name = format!("{name}_quantile");
    family(
        out,
        &quantile_name,
        "gauge",
        &format!(
            "Interpolated quantile estimates of tonos histogram {}",
            help_escape(&h.name)
        ),
    );
    for (q, label) in QUANTILES {
        if let Some(v) = h.quantile(q) {
            sample(
                out,
                &quantile_name,
                Some(&format!("quantile=\"{label}\"")),
                v,
            );
        }
    }
}

/// Writes the `# HELP` / `# TYPE` header of one metric family.
fn family(out: &mut String, name: &str, kind: &str, help: &str) {
    out.push_str("# HELP ");
    out.push_str(name);
    out.push(' ');
    out.push_str(help);
    out.push_str("\n# TYPE ");
    out.push_str(name);
    out.push(' ');
    out.push_str(kind);
    out.push('\n');
}

/// Writes one sample line, with optional `{labels}`.
fn sample(out: &mut String, name: &str, labels: Option<&str>, value: f64) {
    out.push_str(name);
    if let Some(labels) = labels {
        out.push('{');
        out.push_str(labels);
        out.push('}');
    }
    out.push(' ');
    out.push_str(&prom_f64(value));
    out.push('\n');
}

/// Maps a dotted instrument name onto the Prometheus grammar:
/// `tonos_` prefix, every character outside `[a-zA-Z0-9_:]` becomes `_`.
pub fn metric_name(instrument: &str) -> String {
    let mut name = String::with_capacity(instrument.len() + 6);
    name.push_str("tonos_");
    for ch in instrument.chars() {
        if ch.is_ascii_alphanumeric() || ch == '_' || ch == ':' {
            name.push(ch);
        } else {
            name.push('_');
        }
    }
    name
}

/// Formats a value for a sample line. Prometheus accepts Go-syntax
/// floats plus `NaN` / `+Inf` / `-Inf` (unlike JSON, which gets `null`).
fn prom_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Escapes HELP text: backslash and newline, per the exposition spec.
fn help_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escapes a label value: backslash, double quote, and newline.
fn label_escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_names_are_sanitized_and_prefixed() {
        assert_eq!(metric_name("link.frames_rx"), "tonos_link_frames_rx");
        assert_eq!(metric_name("span.scan_s"), "tonos_span_scan_s");
        assert_eq!(metric_name("weird-name/β"), "tonos_weird_name__");
    }

    #[test]
    fn prom_floats_cover_non_finite_values() {
        assert_eq!(prom_f64(1.5), "1.5");
        assert_eq!(prom_f64(f64::NAN), "NaN");
        assert_eq!(prom_f64(f64::INFINITY), "+Inf");
        assert_eq!(prom_f64(f64::NEG_INFINITY), "-Inf");
    }

    #[test]
    fn escapes_follow_the_exposition_spec() {
        assert_eq!(help_escape("a\\b\nc"), "a\\\\b\\nc");
        assert_eq!(label_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}

//! Bounded ring-buffer event journal.
//!
//! The journal keeps the most recent `capacity` events; older entries are
//! overwritten and accounted in a dropped counter so consumers can tell a
//! quiet system from a wrapped buffer. Events carry a monotonically
//! increasing sequence number, a clock timestamp, a severity, a static
//! source tag (which subsystem emitted it), and a message.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Duration;

/// Importance of a journal event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Diagnostic detail (element switches, flushes).
    Debug,
    /// Normal operational milestones (calibration, beat acceptance).
    Info,
    /// Degraded but functioning (saturation bursts, recalibration).
    Warning,
    /// Clinically significant (hyper/hypotension, signal loss).
    Critical,
}

impl Severity {
    /// Stable lowercase label used in exports.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Debug => "debug",
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Critical => "critical",
        }
    }
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One journal entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Position in the overall event stream (0-based, never reused).
    pub seq: u64,
    /// Registry-clock timestamp of the event.
    pub at: Duration,
    /// Importance.
    pub severity: Severity,
    /// Emitting subsystem (e.g. `"monitor"`, `"analyzer"`).
    pub source: &'static str,
    /// Human-readable description.
    pub message: String,
}

#[derive(Debug, Default)]
struct JournalState {
    events: VecDeque<Event>,
    next_seq: u64,
    dropped: u64,
}

/// Fixed-capacity, thread-safe event ring buffer.
#[derive(Debug)]
pub struct Journal {
    capacity: usize,
    state: Mutex<JournalState>,
}

impl Journal {
    /// A journal retaining at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Journal {
            capacity: capacity.max(1),
            state: Mutex::new(JournalState::default()),
        }
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends an event, evicting the oldest entry when full. Returns the
    /// event's sequence number.
    pub fn push(
        &self,
        at: Duration,
        severity: Severity,
        source: &'static str,
        message: String,
    ) -> u64 {
        let mut state = self.state.lock().expect("journal lock poisoned");
        let seq = state.next_seq;
        state.next_seq += 1;
        if state.events.len() == self.capacity {
            state.events.pop_front();
            state.dropped += 1;
        }
        state.events.push_back(Event {
            seq,
            at,
            severity,
            source,
            message,
        });
        seq
    }

    /// Snapshot of the retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.state
            .lock()
            .expect("journal lock poisoned")
            .events
            .iter()
            .cloned()
            .collect()
    }

    /// Total number of events ever pushed.
    pub fn total_events(&self) -> u64 {
        self.state.lock().expect("journal lock poisoned").next_seq
    }

    /// Number of events evicted by the ring buffer.
    pub fn dropped(&self) -> u64 {
        self.state.lock().expect("journal lock poisoned").dropped
    }

    /// Number of retained events at or above `min` severity.
    pub fn count_at_least(&self, min: Severity) -> usize {
        self.state
            .lock()
            .expect("journal lock poisoned")
            .events
            .iter()
            .filter(|e| e.severity >= min)
            .count()
    }

    /// Clears all retained events (sequence numbers keep advancing).
    pub fn clear(&self) {
        let mut state = self.state.lock().expect("journal lock poisoned");
        state.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ms: u64) -> Duration {
        Duration::from_millis(ms)
    }

    #[test]
    fn severities_are_ordered() {
        assert!(Severity::Debug < Severity::Info);
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Critical);
    }

    #[test]
    fn push_assigns_sequential_numbers() {
        let j = Journal::new(8);
        assert_eq!(j.push(at(1), Severity::Info, "test", "a".into()), 0);
        assert_eq!(j.push(at(2), Severity::Info, "test", "b".into()), 1);
        assert_eq!(j.total_events(), 2);
        assert_eq!(j.dropped(), 0);
        let events = j.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].message, "a");
        assert_eq!(events[1].at, at(2));
    }

    #[test]
    fn ring_buffer_wraps_and_counts_drops() {
        let j = Journal::new(3);
        for i in 0..7u64 {
            j.push(at(i), Severity::Debug, "test", format!("event {i}"));
        }
        let events = j.events();
        // Only the newest 3 remain, in order, with original seq numbers.
        assert_eq!(events.len(), 3);
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![4, 5, 6]
        );
        assert_eq!(events[0].message, "event 4");
        assert_eq!(j.total_events(), 7);
        assert_eq!(j.dropped(), 4);
        // Sequence numbers keep advancing after the wrap.
        assert_eq!(j.push(at(8), Severity::Info, "test", "late".into()), 7);
    }

    #[test]
    fn severity_filter_counts() {
        let j = Journal::new(16);
        j.push(at(0), Severity::Debug, "test", "d".into());
        j.push(at(1), Severity::Warning, "test", "w".into());
        j.push(at(2), Severity::Critical, "test", "c".into());
        assert_eq!(j.count_at_least(Severity::Debug), 3);
        assert_eq!(j.count_at_least(Severity::Warning), 2);
        assert_eq!(j.count_at_least(Severity::Critical), 1);
    }

    #[test]
    fn capacity_floor_is_one() {
        let j = Journal::new(0);
        assert_eq!(j.capacity(), 1);
        j.push(at(0), Severity::Info, "test", "x".into());
        j.push(at(1), Severity::Info, "test", "y".into());
        assert_eq!(j.events().len(), 1);
        assert_eq!(j.events()[0].message, "y");
    }
}

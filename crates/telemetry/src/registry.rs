//! The registry: owns every instrument and the journal, and hands out
//! cheap [`Telemetry`] handles for instrumented components.
//!
//! Design: instrumented code resolves named handles once, at
//! construction, through a [`Telemetry`] handle. A handle is either
//! *enabled* (backed by a [`Registry`]) or *disabled* (`Telemetry::
//! disabled()`), in which case every instrument it yields is inert — one
//! branch per operation, no atomics, no allocation. This is what makes
//! telemetry safe to leave compiled into the hot signal path.

use std::collections::BTreeMap;
use std::sync::atomic::AtomicU64;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::clock::{Clock, MonotonicClock};
use crate::histogram::{buckets, HistogramCore};
use crate::instrument::{Counter, Gauge, Histogram, SpanTimer};
use crate::journal::{Journal, Severity};
use crate::snapshot::{BucketCount, CounterValue, GaugeValue, HistogramSummary, TelemetrySnapshot};

/// Canonical instrument names used by the instrumented tonos crates.
///
/// Keeping them here (rather than scattered string literals) is what lets
/// [`Registry::health`] compute cross-stage ratios, and lets tests assert
/// exact accounting against the same constants production code writes to.
pub mod names {
    /// ΣΔ modulator clock cycles executed (counter).
    pub const MODULATOR_STEPS: &str = "analog.modulator.steps";
    /// ΣΔ integrator clip/overload events (counter).
    pub const MODULATOR_SATURATIONS: &str = "analog.modulator.saturations";
    /// Analog mux channel switches (counter).
    pub const MUX_SWITCHES: &str = "analog.mux.switches";
    /// Accumulated chip energy in joules (gauge, running total).
    pub const CHIP_ENERGY_J: &str = "analog.power.energy_j";
    /// Instantaneous chip power draw in watts (gauge).
    pub const CHIP_POWER_W: &str = "analog.power.chip_w";
    /// Modulator bits into the decimator (counter).
    pub const DECIMATOR_SAMPLES_IN: &str = "dsp.decimator.samples_in";
    /// Decimated output samples produced (counter).
    pub const DECIMATOR_SAMPLES_OUT: &str = "dsp.decimator.samples_out";
    /// Decimator pipeline flushes/resets (counter).
    pub const DECIMATOR_FLUSHES: &str = "dsp.decimator.flushes";
    /// Output-quantizer full-scale clips (counter).
    pub const QUANTIZER_CLIPS: &str = "dsp.quantizer.clips";
    /// Fixed-point saturation events during coefficient quantization
    /// (counter).
    pub const FIXED_SATURATIONS: &str = "dsp.fixed.saturations";
    /// Pressure frames pushed into the readout (counter).
    pub const READOUT_FRAMES_IN: &str = "core.readout.frames_in";
    /// Calibrated samples returned to callers (counter).
    pub const READOUT_SAMPLES_OUT: &str = "core.readout.samples_out";
    /// Post-switch settling samples discarded (counter).
    pub const READOUT_SETTLING_DISCARDED: &str = "core.readout.settling_discarded";
    /// Sensor element (re)selections (counter).
    pub const CHIP_ELEMENT_SELECTIONS: &str = "core.chip.element_selections";
    /// Beats accepted by the monitor's analysis stage (counter).
    pub const MONITOR_BEATS: &str = "core.monitor.beats";
    /// Cuff recalibrations performed mid-session (counter).
    pub const MONITOR_RECALIBRATIONS: &str = "core.monitor.recalibrations";
    /// Alarm events raised by the online analyzer (counter).
    pub const ANALYZER_ALARMS: &str = "core.analyzer.alarms";
    /// Pressure alarms suppressed because their qualifying beats
    /// included gap-concealed samples (counter).
    pub const ANALYZER_ALARMS_SUPPRESSED: &str = "core.analyzer.alarms_suppressed";
    /// Beat-to-beat interval distribution in seconds (histogram).
    pub const MONITOR_BEAT_INTERVAL_S: &str = "core.monitor.beat_interval_s";
    /// Array-scan stage duration (span histogram, seconds).
    pub const SPAN_SCAN: &str = "span.scan_s";
    /// Sample-acquisition stage duration (span histogram, seconds).
    pub const SPAN_ACQUISITION: &str = "span.acquisition_s";
    /// Cuff-calibration stage duration (span histogram, seconds).
    pub const SPAN_CALIBRATION: &str = "span.calibration_s";
    /// Waveform-analysis stage duration (span histogram, seconds).
    pub const SPAN_ANALYSIS: &str = "span.analysis_s";
    /// Monitoring sessions submitted to a fleet engine (counter).
    pub const FLEET_SESSIONS_STARTED: &str = "fleet.sessions_started";
    /// Fleet sessions that ran to completion (counter).
    pub const FLEET_SESSIONS_COMPLETED: &str = "fleet.sessions_completed";
    /// Fleet sessions that returned an error (counter).
    pub const FLEET_SESSIONS_FAILED: &str = "fleet.sessions_failed";
    /// Fleet sessions that panicked and were isolated (counter).
    pub const FLEET_SESSIONS_PANICKED: &str = "fleet.sessions_panicked";
    /// Warning-severity journal events absorbed from session registries
    /// during fleet rollup (counter).
    pub const FLEET_WARNING_EVENTS: &str = "fleet.rollup.warning_events";
    /// Critical-severity journal events absorbed from session registries
    /// during fleet rollup (counter).
    pub const FLEET_CRITICAL_EVENTS: &str = "fleet.rollup.critical_events";
    /// Per-session wall-clock duration (span histogram, seconds).
    pub const SPAN_FLEET_SESSION: &str = "span.fleet.session_s";
    /// Session batches converted in lockstep on a lane bank (counter).
    pub const FLEET_BATCHES_BANKED: &str = "fleet.batches_banked";
    /// Session batches that fell back to scalar execution (counter).
    pub const FLEET_BATCHES_SCALAR: &str = "fleet.batches_scalar";
    /// Lane groups a batch worker stole from another worker's queue
    /// (counter).
    pub const FLEET_LANE_STEALS: &str = "fleet.lane_steals";
    /// Sessions claimed per batch-worker wakeup, i.e. lane occupancy of
    /// each banked conversion (histogram, sessions).
    pub const FLEET_BATCH_OCCUPANCY: &str = "fleet.batch_occupancy";
    /// Frames serialized by a link encoder (counter).
    pub const LINK_FRAMES_TX: &str = "link.frames_tx";
    /// Bytes serialized by a link encoder (counter).
    pub const LINK_BYTES_TX: &str = "link.bytes_tx";
    /// CRC-verified frames delivered by a link decoder (counter).
    pub const LINK_FRAMES_RX: &str = "link.frames_rx";
    /// Bytes consumed by a link decoder, garbage included (counter).
    pub const LINK_BYTES_RX: &str = "link.bytes_rx";
    /// Candidate frames rejected by the CRC-32 check (counter).
    pub const LINK_CRC_FAIL: &str = "link.crc_fail";
    /// Resynchronization episodes: the decoder had to skip bytes to find
    /// the next sync word (counter).
    pub const LINK_RESYNCS: &str = "link.resyncs";
    /// Sequence-gap episodes observed by a link decoder (counter).
    pub const LINK_GAP_EVENTS: &str = "link.gap_events";
    /// Frames lost inside sequence gaps (counter).
    pub const LINK_GAP_FRAMES: &str = "link.gap_frames";
    /// Duplicate or reordered-stale frames dropped by a decoder
    /// (counter).
    pub const LINK_STALE_FRAMES: &str = "link.stale_frames";
    /// Clean (bit-exact) samples delivered by a host link pipeline
    /// (counter).
    pub const LINK_SAMPLES_CLEAN: &str = "link.samples_clean";
    /// Gap samples concealed by the hold-last policy (counter).
    pub const LINK_GAPS_CONCEALED: &str = "link.gaps_concealed";
    /// Gap samples delivered as explicitly invalid (counter).
    pub const LINK_SAMPLES_INVALID: &str = "link.samples_invalid";
    /// Clock jumps too large to conceal sample-by-sample, handled as a
    /// stream reset that re-bases the output index (counter).
    pub const LINK_STREAM_RESETS: &str = "link.stream_resets";
    /// Output samples skipped (index re-based, nothing emitted) by
    /// stream resets (counter).
    pub const LINK_GAP_SKIPPED_SAMPLES: &str = "link.gap_skipped_samples";
    /// Device connections accepted by a link server (counter).
    pub const LINK_CONNECTIONS: &str = "link.connections";
    /// Transient accept() failures survived by a link server's accept
    /// loop (counter).
    pub const LINK_ACCEPT_ERRORS: &str = "link.accept_errors";
    /// Connections dropped because their ingest queue stayed full past
    /// the grace window (counter).
    pub const LINK_SLOW_CONSUMER_DISCONNECTS: &str = "link.slow_consumer_disconnects";
    /// Per-connection ingest queue depth observed at each enqueue
    /// (histogram, chunks).
    pub const LINK_QUEUE_DEPTH: &str = "link.queue_depth";
    /// Wire-frame decode stage duration per ingested chunk (span
    /// histogram, seconds).
    pub const SPAN_LINK_DECODE: &str = "span.link.decode_s";
    /// Gap-concealment stage duration per gap episode (span histogram,
    /// seconds).
    pub const SPAN_LINK_CONCEAL: &str = "span.link.conceal_s";
    /// Banked lockstep conversion duration per lane per batch (span
    /// histogram, seconds).
    pub const SPAN_BANK_CONVERT: &str = "span.bank.convert_s";
    /// Out-of-order frames healed by the decoder's reorder buffer
    /// instead of being dropped-and-concealed (counter).
    pub const LINK_REORDERED_FRAMES: &str = "link.reordered_frames";
    /// Previously-NAK'd frames that arrived via retransmission
    /// (counter).
    pub const LINK_RETRANSMITS_RX: &str = "link.retransmits_rx";
    /// NAK control frames emitted by a host pipeline (counter).
    pub const LINK_NAKS_TX: &str = "link.naks_tx";
    /// Control frames (hello/ack/NAK) received by a link decoder
    /// (counter).
    pub const LINK_CONTROL_FRAMES: &str = "link.control_frames";
    /// Keyed-MAC session handshakes verified and accepted (counter).
    pub const LINK_HANDSHAKES_OK: &str = "link.handshakes_ok";
    /// Session handshakes rejected — forged, replayed with a bad tag,
    /// or malformed (counter).
    pub const LINK_HANDSHAKES_REJECTED: &str = "link.handshakes_rejected";
    /// Data frames dropped because the pipeline requires an
    /// authenticated session and none was established (counter).
    pub const LINK_UNAUTH_FRAMES: &str = "link.unauth_frames";

    /// Segment files currently in a historian store (gauge).
    pub const HISTORIAN_SEGMENTS: &str = "historian.segments";
    /// Total bytes at rest across a historian's segments (gauge).
    pub const HISTORIAN_BYTES: &str = "historian.bytes";
    /// Waveform records appended to a historian store (counter).
    pub const HISTORIAN_APPENDS: &str = "historian.records_appended";
    /// Payload bytes appended to a historian store (counter).
    pub const HISTORIAN_APPEND_BYTES: &str = "historian.bytes_appended";
    /// Ranged read queries answered by historian readers (counter).
    pub const HISTORIAN_READS: &str = "historian.reads";
    /// Record payload bytes fetched to answer ranged reads (counter).
    pub const HISTORIAN_READ_BYTES: &str = "historian.bytes_read";
    /// Reader handles currently open on a historian store (gauge).
    pub const HISTORIAN_READERS: &str = "historian.readers";
    /// Segments sealed (footer written, file immutable) (counter).
    pub const HISTORIAN_SEALS: &str = "historian.segments_sealed";
    /// Torn tails truncated during crash recovery at open (counter).
    pub const HISTORIAN_RECOVERY_TRUNCATIONS: &str = "historian.recovery_truncations";
    /// Unreadable mid-store bytes skipped during recovery (counter).
    pub const HISTORIAN_RECOVERY_SKIPPED_BYTES: &str = "historian.recovery_skipped_bytes";
    /// Compaction passes completed (counter).
    pub const HISTORIAN_COMPACTIONS: &str = "historian.compactions";
    /// Downsampled tier records built by compaction (counter).
    pub const HISTORIAN_TIER_RECORDS: &str = "historian.tier_records";
    /// fsync latency of historian record/seal flushes, seconds
    /// (histogram).
    pub const HISTORIAN_FSYNC_S: &str = "historian.fsync_s";
    /// Measurement sessions created via `prepare` (counter).
    pub const HISTORIAN_SESSIONS_PREPARED: &str = "historian.sessions_prepared";
    /// Measurement sessions moved to `measuring` via `start` (counter).
    pub const HISTORIAN_SESSIONS_STARTED: &str = "historian.sessions_started";
    /// Measurement sessions that completed with recorded samples
    /// (counter).
    pub const HISTORIAN_SESSIONS_COMPLETED: &str = "historian.sessions_completed";
    /// Measurement sessions that ended without usable data (counter).
    pub const HISTORIAN_SESSIONS_FAILED: &str = "historian.sessions_failed";
    /// Retry requests accepted by the measurement API (counter).
    pub const HISTORIAN_SESSION_RETRIES: &str = "historian.session_retries";
    /// Link samples routed into measurement sessions by the ingest tap
    /// (counter).
    pub const HISTORIAN_TAP_SAMPLES: &str = "historian.tap_samples";
    /// Link samples seen by the ingest tap with no measuring session to
    /// own them (counter).
    pub const HISTORIAN_TAP_UNROUTED: &str = "historian.tap_unrouted_samples";
    /// HTTP requests served by the measurement-session API (counter).
    pub const HISTORIAN_API_REQUESTS: &str = "historian.api_requests";
}

/// Default number of journal events retained.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 256;

#[derive(Debug)]
pub(crate) struct Inner {
    clock: Arc<dyn Clock>,
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramCore>>>,
    journal: Journal,
}

impl std::fmt::Debug for dyn Clock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Clock")
    }
}

/// Owns all instruments and the journal; produces snapshots and health
/// reports. Create one per system under observation.
#[derive(Debug, Clone)]
pub struct Registry {
    inner: Arc<Inner>,
}

impl Registry {
    /// A registry on the real monotonic clock.
    pub fn new() -> Self {
        Registry::with_clock(Arc::new(MonotonicClock::new()))
    }

    /// A registry on an injected clock (see
    /// [`FakeClock`](crate::FakeClock)).
    pub fn with_clock(clock: Arc<dyn Clock>) -> Self {
        Registry::with_clock_and_capacity(clock, DEFAULT_JOURNAL_CAPACITY)
    }

    /// Full-control constructor: clock plus journal capacity.
    pub fn with_clock_and_capacity(clock: Arc<dyn Clock>, journal_capacity: usize) -> Self {
        Registry {
            inner: Arc::new(Inner {
                clock,
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
                journal: Journal::new(journal_capacity),
            }),
        }
    }

    /// An enabled handle for instrumented components.
    pub fn telemetry(&self) -> Telemetry {
        Telemetry {
            inner: Some(self.inner.clone()),
        }
    }

    /// Registry-clock reading.
    pub fn now(&self) -> Duration {
        self.inner.clock.now()
    }

    /// Captures every instrument and the journal.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let counters = self
            .inner
            .counters
            .lock()
            .expect("counter registry lock poisoned")
            .iter()
            .map(|(name, cell)| CounterValue {
                name: name.clone(),
                value: cell.load(std::sync::atomic::Ordering::Relaxed),
            })
            .collect();
        let gauges = self
            .inner
            .gauges
            .lock()
            .expect("gauge registry lock poisoned")
            .iter()
            .map(|(name, cell)| GaugeValue {
                name: name.clone(),
                value: f64::from_bits(cell.load(std::sync::atomic::Ordering::Relaxed)),
            })
            .collect();
        let histograms = self
            .inner
            .histograms
            .lock()
            .expect("histogram registry lock poisoned")
            .iter()
            .map(|(name, core)| {
                let counts = core.bucket_counts();
                let buckets = core
                    .bounds()
                    .iter()
                    .map(|&b| Some(b))
                    .chain(std::iter::once(None))
                    .zip(counts)
                    .map(|(upper, count)| BucketCount { upper, count })
                    .collect();
                HistogramSummary {
                    name: name.clone(),
                    count: core.count(),
                    sum: core.sum(),
                    min: core.min(),
                    max: core.max(),
                    p50: core.quantile(0.50),
                    p95: core.quantile(0.95),
                    p99: core.quantile(0.99),
                    buckets,
                }
            })
            .collect();
        TelemetrySnapshot {
            uptime: self.now(),
            counters,
            gauges,
            histograms,
            events: self.inner.journal.events(),
            total_events: self.inner.journal.total_events(),
            dropped_events: self.inner.journal.dropped(),
        }
    }

    /// Summarizes system health from the canonical instruments.
    pub fn health(&self) -> HealthReport {
        HealthReport::from_snapshot(&self.snapshot())
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

/// Handle given to instrumented components; enabled (backed by a
/// [`Registry`]) or disabled (all instruments inert).
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    pub(crate) inner: Option<Arc<Inner>>,
}

impl Telemetry {
    /// The no-op handle: every instrument it yields ignores updates.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// Whether this handle reaches a live registry.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Resolves (creating on first use) the named counter.
    pub fn counter(&self, name: &str) -> Counter {
        match &self.inner {
            None => Counter::disabled(),
            Some(inner) => {
                let mut map = inner
                    .counters
                    .lock()
                    .expect("counter registry lock poisoned");
                let cell = map
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(AtomicU64::new(0)));
                Counter {
                    cell: Some(cell.clone()),
                }
            }
        }
    }

    /// Resolves (creating on first use) the named gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        match &self.inner {
            None => Gauge::disabled(),
            Some(inner) => {
                let mut map = inner.gauges.lock().expect("gauge registry lock poisoned");
                let cell = map
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(AtomicU64::new(0f64.to_bits())));
                Gauge {
                    cell: Some(cell.clone()),
                }
            }
        }
    }

    /// Resolves (creating on first use) the named histogram. The bounds
    /// apply only on first registration; later callers share the
    /// existing layout.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        match &self.inner {
            None => Histogram::disabled(),
            Some(inner) => {
                let mut map = inner
                    .histograms
                    .lock()
                    .expect("histogram registry lock poisoned");
                let core = map
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(HistogramCore::new(bounds)));
                Histogram {
                    core: Some(core.clone()),
                }
            }
        }
    }

    /// Resolves a span timer recording stage durations (seconds) into the
    /// named histogram with the default duration bucket layout.
    pub fn span(&self, name: &str) -> SpanTimer {
        match &self.inner {
            None => SpanTimer::disabled(),
            Some(inner) => {
                let hist = self.histogram(name, &buckets::duration_seconds());
                SpanTimer {
                    clock: Some(inner.clock.clone()),
                    hist: hist.core,
                }
            }
        }
    }

    /// Journals an event. The message closure only runs when enabled, so
    /// disabled handles pay no formatting or allocation cost.
    pub fn event<F: FnOnce() -> String>(
        &self,
        severity: Severity,
        source: &'static str,
        message: F,
    ) {
        if let Some(inner) = &self.inner {
            inner
                .journal
                .push(inner.clock.now(), severity, source, message());
        }
    }

    /// Journals an event with an explicit timestamp instead of reading
    /// the registry clock. For re-journaling events that already carry a
    /// timestamp from another registry — fleet rollup uses this to
    /// preserve session-clock event times (see
    /// [`Rollup::absorb`](crate::Rollup::absorb)). New events should use
    /// [`Telemetry::event`], which stamps the shared clock.
    pub fn event_at<F: FnOnce() -> String>(
        &self,
        at: Duration,
        severity: Severity,
        source: &'static str,
        message: F,
    ) {
        if let Some(inner) = &self.inner {
            inner.journal.push(at, severity, source, message());
        }
    }

    /// Registry-clock reading (zero when disabled).
    pub fn now(&self) -> Duration {
        self.inner
            .as_ref()
            .map_or(Duration::ZERO, |inner| inner.clock.now())
    }
}

/// Timing summary of one pipeline stage, in the health report.
#[derive(Debug, Clone, PartialEq)]
pub struct StageTiming {
    /// Span histogram name (e.g. `"span.scan_s"`).
    pub name: String,
    /// Number of recorded spans.
    pub count: u64,
    /// Mean duration in seconds.
    pub mean_s: Option<f64>,
    /// Median duration in seconds.
    pub p50_s: Option<f64>,
    /// 95th-percentile duration in seconds.
    pub p95_s: Option<f64>,
}

/// Cross-stage health summary derived from the canonical instruments.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthReport {
    /// Registry uptime at capture.
    pub uptime: Duration,
    /// ΣΔ modulator cycles executed.
    pub modulator_steps: u64,
    /// Integrator saturations per modulator cycle.
    pub saturation_rate: Option<f64>,
    /// Pressure frames into the readout.
    pub frames_in: u64,
    /// Calibrated samples delivered.
    pub samples_out: u64,
    /// Settling samples discarded after element switches.
    pub settling_discarded: u64,
    /// Discarded fraction of all frames.
    pub discard_ratio: Option<f64>,
    /// Sensor element selections.
    pub element_selections: u64,
    /// Beats accepted by waveform analysis.
    pub beats: u64,
    /// Mid-session cuff recalibrations.
    pub recalibrations: u64,
    /// Analyzer alarm events.
    pub alarms: u64,
    /// Retained journal events at warning severity.
    pub warning_events: usize,
    /// Retained journal events at critical severity.
    pub critical_events: usize,
    /// Accumulated chip energy in joules, when tracked.
    pub energy_j: Option<f64>,
    /// Per-stage timing summaries (every `span.*` histogram).
    pub stage_timings: Vec<StageTiming>,
}

impl HealthReport {
    /// Derives the report from a snapshot.
    pub fn from_snapshot(snapshot: &TelemetrySnapshot) -> Self {
        let counter = |name: &str| snapshot.counter(name).unwrap_or(0);
        let modulator_steps = counter(names::MODULATOR_STEPS);
        let saturations = counter(names::MODULATOR_SATURATIONS);
        let frames_in = counter(names::READOUT_FRAMES_IN);
        let settling_discarded = counter(names::READOUT_SETTLING_DISCARDED);
        let warning_events = snapshot
            .events
            .iter()
            .filter(|e| e.severity == Severity::Warning)
            .count();
        let critical_events = snapshot
            .events
            .iter()
            .filter(|e| e.severity == Severity::Critical)
            .count();
        let stage_timings = snapshot
            .histograms
            .iter()
            .filter(|h| h.name.starts_with("span."))
            .map(|h| StageTiming {
                name: h.name.clone(),
                count: h.count,
                mean_s: h.mean(),
                p50_s: h.p50,
                p95_s: h.p95,
            })
            .collect();
        HealthReport {
            uptime: snapshot.uptime,
            modulator_steps,
            saturation_rate: (modulator_steps > 0)
                .then(|| saturations as f64 / modulator_steps as f64),
            frames_in,
            samples_out: counter(names::READOUT_SAMPLES_OUT),
            settling_discarded,
            discard_ratio: (frames_in > 0).then(|| settling_discarded as f64 / frames_in as f64),
            element_selections: counter(names::CHIP_ELEMENT_SELECTIONS),
            beats: counter(names::MONITOR_BEATS),
            recalibrations: counter(names::MONITOR_RECALIBRATIONS),
            alarms: counter(names::ANALYZER_ALARMS),
            warning_events,
            critical_events,
            energy_j: snapshot.gauge(names::CHIP_ENERGY_J).filter(|&e| e > 0.0),
            stage_timings,
        }
    }
}

impl std::fmt::Display for HealthReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "tonos health report ({:.3} s uptime)",
            self.uptime.as_secs_f64()
        )?;
        writeln!(
            f,
            "  modulator:  {} cycles, saturation rate {}",
            self.modulator_steps,
            fmt_rate(self.saturation_rate),
        )?;
        writeln!(
            f,
            "  readout:    {} frames in -> {} samples out, {} settling discarded (discard ratio {})",
            self.frames_in,
            self.samples_out,
            self.settling_discarded,
            fmt_rate(self.discard_ratio),
        )?;
        writeln!(
            f,
            "  monitor:    {} beats, {} recalibrations, {} element selections",
            self.beats, self.recalibrations, self.element_selections,
        )?;
        writeln!(
            f,
            "  alarms:     {} raised ({} warning / {} critical journal events)",
            self.alarms, self.warning_events, self.critical_events,
        )?;
        if let Some(e) = self.energy_j {
            writeln!(f, "  energy:     {:.4} J consumed", e)?;
        }
        if !self.stage_timings.is_empty() {
            writeln!(f, "  stage timings:")?;
            for t in &self.stage_timings {
                writeln!(
                    f,
                    "    {:<20} n={:<5} mean={} p50={} p95={}",
                    t.name,
                    t.count,
                    fmt_secs(t.mean_s),
                    fmt_secs(t.p50_s),
                    fmt_secs(t.p95_s),
                )?;
            }
        }
        Ok(())
    }
}

fn fmt_rate(r: Option<f64>) -> String {
    match r {
        Some(r) => format!("{:.3e}", r),
        None => "n/a".to_string(),
    }
}

fn fmt_secs(s: Option<f64>) -> String {
    match s {
        Some(s) if s < 1e-3 => format!("{:.1} µs", s * 1e6),
        Some(s) if s < 1.0 => format!("{:.2} ms", s * 1e3),
        Some(s) => format!("{:.3} s", s),
        None => "n/a".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::FakeClock;

    #[test]
    fn disabled_telemetry_yields_inert_instruments() {
        let t = Telemetry::disabled();
        assert!(!t.enabled());
        t.counter("x").inc();
        t.gauge("y").set(1.0);
        t.histogram("z", &[1.0]).record(0.5);
        t.span("span.s").start().finish();
        t.event(Severity::Critical, "test", || {
            unreachable!("must not format")
        });
        assert_eq!(t.now(), Duration::ZERO);
    }

    #[test]
    fn handles_share_state_through_the_registry() {
        let registry = Registry::new();
        let t = registry.telemetry();
        let a = t.counter("shared");
        let b = t.counter("shared");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(registry.snapshot().counter("shared"), Some(3));
    }

    #[test]
    fn snapshot_captures_all_instrument_kinds() {
        let clock = Arc::new(FakeClock::new());
        let registry = Registry::with_clock(clock.clone());
        let t = registry.telemetry();
        t.counter("c").add(7);
        t.gauge("g").set(2.5);
        t.histogram("h", &[1.0, 2.0]).record(1.5);
        let span = t.span("span.stage_s");
        let guard = span.start();
        clock.advance(Duration::from_millis(10));
        guard.finish();
        t.event(Severity::Warning, "test", || "wobble".to_string());
        clock.advance(Duration::from_millis(90));

        let s = registry.snapshot();
        assert_eq!(s.uptime, Duration::from_millis(100));
        assert_eq!(s.counter("c"), Some(7));
        assert_eq!(s.gauge("g"), Some(2.5));
        let h = s.histogram("h").unwrap();
        assert_eq!(h.count, 1);
        assert_eq!(h.buckets.len(), 3);
        let span_h = s.histogram("span.stage_s").unwrap();
        assert_eq!(span_h.count, 1);
        assert!((span_h.sum - 0.010).abs() < 1e-12);
        assert_eq!(s.events.len(), 1);
        assert_eq!(s.events[0].severity, Severity::Warning);
        assert_eq!(s.total_events, 1);
    }

    #[test]
    fn health_report_computes_ratios_from_canonical_names() {
        let registry = Registry::new();
        let t = registry.telemetry();
        t.counter(names::MODULATOR_STEPS).add(1000);
        t.counter(names::MODULATOR_SATURATIONS).add(10);
        t.counter(names::READOUT_FRAMES_IN).add(200);
        t.counter(names::READOUT_SAMPLES_OUT).add(180);
        t.counter(names::READOUT_SETTLING_DISCARDED).add(20);
        t.counter(names::MONITOR_BEATS).add(8);
        t.counter(names::ANALYZER_ALARMS).add(2);
        t.gauge(names::CHIP_ENERGY_J).add(0.069);
        t.span(names::SPAN_SCAN).record(Duration::from_millis(5));
        t.event(Severity::Critical, "analyzer", || "hypertension".into());

        let health = registry.health();
        assert_eq!(health.modulator_steps, 1000);
        assert!((health.saturation_rate.unwrap() - 0.01).abs() < 1e-12);
        assert!((health.discard_ratio.unwrap() - 0.1).abs() < 1e-12);
        assert_eq!(health.beats, 8);
        assert_eq!(health.alarms, 2);
        assert_eq!(health.critical_events, 1);
        assert!((health.energy_j.unwrap() - 0.069).abs() < 1e-12);
        assert_eq!(health.stage_timings.len(), 1);
        assert_eq!(health.stage_timings[0].count, 1);

        let text = health.to_string();
        assert!(text.contains("1000 cycles"));
        assert!(text.contains("200 frames in -> 180 samples out"));
        assert!(text.contains("span.scan_s"));
    }

    #[test]
    fn health_report_handles_empty_registry() {
        let health = Registry::new().health();
        assert_eq!(health.modulator_steps, 0);
        assert_eq!(health.saturation_rate, None);
        assert_eq!(health.discard_ratio, None);
        assert!(health.stage_timings.is_empty());
        // Display must not panic on the empty case.
        let _ = health.to_string();
    }
}

//! Golden-file test for the Prometheus text exposition.
//!
//! The rendered output for a deterministic registry is pinned byte-for-
//! byte in `golden_metrics.prom`. Renaming an instrument in
//! `registry::names`, changing the sanitization rule, or reordering
//! families breaks this test — which is the point: dashboards scrape
//! these names, so a rename must be a deliberate, reviewed act.
//!
//! All recorded values are exactly representable in binary floating
//! point (0.25, 0.75, 2.5, ...) so the goldens never depend on
//! accumulation rounding.

use std::sync::Arc;
use std::time::Duration;

use tonos_telemetry::{names, prometheus_text, FakeClock, Registry, Severity};

const GOLDEN: &str = include_str!("golden_metrics.prom");

/// Builds the fixed registry the golden file was rendered from.
fn golden_registry() -> Registry {
    let clock = Arc::new(FakeClock::new());
    let registry = Registry::with_clock(clock.clone());
    let t = registry.telemetry();

    t.counter(names::LINK_FRAMES_RX).add(42);
    t.counter(names::ANALYZER_ALARMS).add(3);
    t.gauge(names::CHIP_POWER_W).set(0.0115);

    let h = t.histogram(names::MONITOR_BEAT_INTERVAL_S, &[0.5, 1.0, 2.0]);
    h.record(0.25);
    h.record(0.75);
    h.record(0.75);
    h.record(2.5); // overflow bucket

    t.event(Severity::Warning, "readout", || "settling burst".into());

    clock.advance(Duration::from_secs(12));
    registry
}

#[test]
fn exposition_matches_golden_file() {
    let rendered = prometheus_text(&golden_registry().snapshot());
    if rendered != GOLDEN {
        // Print both sides so a deliberate rename can regenerate the
        // golden by copy-paste instead of reverse-engineering diffs.
        println!("=== rendered ===\n{rendered}\n=== golden ===\n{GOLDEN}");
        let mismatch = rendered
            .lines()
            .zip(GOLDEN.lines())
            .enumerate()
            .find(|(_, (r, g))| r != g);
        panic!(
            "exposition drifted from tests/golden_metrics.prom; first differing line: {:?}",
            mismatch
        );
    }
}

#[test]
fn exposition_is_parseable_prometheus_text() {
    let rendered = prometheus_text(&golden_registry().snapshot());
    let mut sample_lines = 0usize;
    for line in rendered.lines() {
        if line.starts_with("# HELP ") || line.starts_with("# TYPE ") {
            continue;
        }
        // Sample line: `name[{labels}] value`.
        let (series, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("sample line without value: {line:?}"));
        assert!(
            value.parse::<f64>().is_ok() || matches!(value, "NaN" | "+Inf" | "-Inf"),
            "unparseable value {value:?} on line {line:?}"
        );
        let name = series.split('{').next().unwrap();
        assert!(!name.is_empty(), "empty metric name on line {line:?}");
        assert!(
            name.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "illegal metric name {name:?}"
        );
        assert!(
            !name.chars().next().unwrap().is_ascii_digit(),
            "metric name starts with a digit: {name:?}"
        );
        if let Some(rest) = series.strip_prefix(name) {
            if !rest.is_empty() {
                assert!(
                    rest.starts_with('{') && rest.ends_with('}'),
                    "malformed label block {rest:?} on line {line:?}"
                );
            }
        }
        sample_lines += 1;
    }
    assert!(
        sample_lines >= 10,
        "suspiciously few samples: {sample_lines}"
    );
}

#[test]
fn every_canonical_name_round_trips_through_the_exposition() {
    // Register one counter under each canonical name and check each one
    // surfaces under its sanitized Prometheus spelling.
    let registry = Registry::new();
    let t = registry.telemetry();
    let all = [
        names::MODULATOR_STEPS,
        names::READOUT_FRAMES_IN,
        names::MONITOR_BEATS,
        names::FLEET_SESSIONS_COMPLETED,
        names::LINK_STREAM_RESETS,
        names::LINK_GAP_SKIPPED_SAMPLES,
    ];
    for name in all {
        t.counter(name).inc();
    }
    let rendered = prometheus_text(&registry.snapshot());
    for name in all {
        let prom = format!("tonos_{}_total 1", name.replace('.', "_"));
        assert!(
            rendered.contains(&prom),
            "{name} missing from exposition as {prom:?}"
        );
    }
}

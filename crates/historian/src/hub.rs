//! The measurement hub: session lifecycle state machine plus the
//! ingest tap that journals accepted link traffic into the store.
//!
//! A *measurement session* is the clinical unit of work a frontend
//! drives: `prepare` allocates an id, `start` arms it for one device,
//! samples stream in through the [`IngestTap`] while the UI polls
//! `status` and `readings`, and `stop` (explicit, or automatic on link
//! close) settles it as [`SessionState::Complete`] — or
//! [`SessionState::Failed`], from which `retry` re-arms it.
//!
//! The hub buffers per-session sample runs and flushes them to the
//! [`Historian`] as contiguous records: a buffer flush happens at
//! [`HubConfig::flush_samples`], on a device-clock discontinuity (each
//! store record stays gap-free, so concealed-gap provenance survives as
//! record boundaries plus NaN raw lanes), and at stop. Raw-lane NaN is
//! the concealment marker: a sample the link concealed or invalidated
//! stores its calibrated estimate in the `mmhg` lane and NaN in `raw`,
//! so a later reader can separate measured from interpolated truth.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

use tonos_link::{HostSample, IngestTap, SampleFlag, TapSession};
use tonos_mems::units::MillimetersHg;
use tonos_telemetry::{names, Counter, Severity, Telemetry};

use crate::store::Historian;

/// Hub tuning.
#[derive(Debug, Clone, Copy)]
pub struct HubConfig {
    /// Buffered samples per session before a flush to the store.
    pub flush_samples: usize,
    /// Live readings kept per session for the `readings` query.
    pub readings_keep: usize,
    /// Terminal (`Complete`/`Failed`) sessions retained for `status`,
    /// `readings`, and `list` queries; the oldest past this cap are
    /// evicted so a long-running hub's memory stays bounded. Evicted
    /// sessions' flushed records remain in the store — only the
    /// in-memory lifecycle state (and `retry`-ability) is dropped.
    pub terminal_keep: usize,
}

impl Default for HubConfig {
    fn default() -> Self {
        HubConfig {
            flush_samples: 1024,
            readings_keep: 32,
            terminal_keep: 256,
        }
    }
}

/// Where a measurement session is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// Allocated, not yet armed; ingest ignores it.
    Prepared,
    /// Armed for its device; tap samples route into it.
    Measuring,
    /// Stopped with data on disk.
    Complete,
    /// Stopped without data, or a storage error; `retry` re-arms.
    Failed,
}

impl SessionState {
    /// Lowercase wire name (the HTTP API's `state` field).
    pub fn as_str(self) -> &'static str {
        match self {
            SessionState::Prepared => "prepared",
            SessionState::Measuring => "measuring",
            SessionState::Complete => "complete",
            SessionState::Failed => "failed",
        }
    }
}

/// One live reading (the most recent calibrated samples).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Reading {
    /// Device clock of the sample.
    pub clock: u64,
    /// Calibrated pressure, mmHg.
    pub mmhg: f64,
    /// Whether the sample was measured (`true`) or concealed.
    pub clean: bool,
}

/// A point-in-time status snapshot of one session.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionStatus {
    /// Session id.
    pub id: u64,
    /// Device the session measures (or will measure).
    pub device: u64,
    /// Lifecycle state.
    pub state: SessionState,
    /// Tier-0 sample rate, Hz (0 until the first tap chunk).
    pub sample_rate_hz: f64,
    /// Device clock of the first ingested sample.
    pub first_clock: Option<u64>,
    /// Device clock of the last ingested sample.
    pub last_clock: Option<u64>,
    /// Samples ingested.
    pub samples: u64,
    /// Samples the link delivered clean.
    pub clean: u64,
    /// Samples the link concealed or invalidated.
    pub concealed: u64,
    /// Records flushed to the store so far.
    pub flushed_records: u64,
    /// Failure detail when `state` is [`SessionState::Failed`].
    pub error: Option<String>,
}

struct MeasurementSession {
    id: u64,
    device: u64,
    state: SessionState,
    error: Option<String>,
    sample_rate_hz: f64,
    raw_buf: Vec<f64>,
    cal_buf: Vec<MillimetersHg>,
    /// Device clock of `raw_buf[0]`.
    buf_clock: u64,
    /// Expected device clock of the next contiguous sample.
    next_clock: u64,
    first_clock: Option<u64>,
    last_clock: Option<u64>,
    samples: u64,
    clean: u64,
    concealed: u64,
    flushed_records: u64,
    readings: VecDeque<Reading>,
}

impl MeasurementSession {
    fn new(id: u64, device: u64) -> Self {
        MeasurementSession {
            id,
            device,
            state: SessionState::Prepared,
            error: None,
            sample_rate_hz: 0.0,
            raw_buf: Vec::new(),
            cal_buf: Vec::new(),
            buf_clock: 0,
            next_clock: 0,
            first_clock: None,
            last_clock: None,
            samples: 0,
            clean: 0,
            concealed: 0,
            flushed_records: 0,
            readings: VecDeque::new(),
        }
    }

    fn status(&self) -> SessionStatus {
        SessionStatus {
            id: self.id,
            device: self.device,
            state: self.state,
            sample_rate_hz: self.sample_rate_hz,
            first_clock: self.first_clock,
            last_clock: self.last_clock,
            samples: self.samples,
            clean: self.clean,
            concealed: self.concealed,
            flushed_records: self.flushed_records,
            error: self.error.clone(),
        }
    }

    /// Flushes the buffered contiguous run into the store.
    fn flush(&mut self, historian: &Historian) -> Result<(), String> {
        if self.raw_buf.is_empty() {
            return Ok(());
        }
        historian
            .append(
                self.device,
                self.id,
                self.buf_clock,
                self.sample_rate_hz,
                &self.raw_buf,
                &self.cal_buf,
            )
            .map_err(|e| e.to_string())?;
        self.flushed_records += 1;
        self.raw_buf.clear();
        self.cal_buf.clear();
        Ok(())
    }
}

struct HubState {
    sessions: HashMap<u64, MeasurementSession>,
    /// Device → the one session currently measuring it.
    by_device: HashMap<u64, u64>,
    next_id: u64,
}

struct HubInner {
    historian: Historian,
    config: HubConfig,
    state: Mutex<HubState>,
    telemetry: Telemetry,
    prepared: Counter,
    started: Counter,
    completed: Counter,
    failed: Counter,
    retries: Counter,
    tap_samples: Counter,
    tap_unrouted: Counter,
}

/// The measurement-session hub. Cheap to clone; safe to share between
/// the ingest tap, the HTTP API, and operator code.
#[derive(Clone)]
pub struct MeasurementHub {
    inner: Arc<HubInner>,
}

impl std::fmt::Debug for MeasurementHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MeasurementHub").finish_non_exhaustive()
    }
}

impl MeasurementHub {
    /// Builds a hub writing into `historian`, with `historian.session_*`
    /// and `historian.tap_*` instruments on `telemetry`.
    pub fn new(historian: Historian, config: HubConfig, telemetry: &Telemetry) -> Self {
        MeasurementHub {
            inner: Arc::new(HubInner {
                historian,
                config,
                state: Mutex::new(HubState {
                    sessions: HashMap::new(),
                    by_device: HashMap::new(),
                    next_id: 1,
                }),
                prepared: telemetry.counter(names::HISTORIAN_SESSIONS_PREPARED),
                started: telemetry.counter(names::HISTORIAN_SESSIONS_STARTED),
                completed: telemetry.counter(names::HISTORIAN_SESSIONS_COMPLETED),
                failed: telemetry.counter(names::HISTORIAN_SESSIONS_FAILED),
                retries: telemetry.counter(names::HISTORIAN_SESSION_RETRIES),
                tap_samples: telemetry.counter(names::HISTORIAN_TAP_SAMPLES),
                tap_unrouted: telemetry.counter(names::HISTORIAN_TAP_UNROUTED),
                telemetry: telemetry.clone(),
            }),
        }
    }

    /// The store this hub writes into.
    pub fn historian(&self) -> &Historian {
        &self.inner.historian
    }

    /// Allocates a session for `device` in the `Prepared` state and
    /// returns its id.
    pub fn prepare(&self, device: u64) -> u64 {
        let mut s = self.lock();
        let id = s.next_id;
        s.next_id += 1;
        s.sessions.insert(id, MeasurementSession::new(id, device));
        self.inner.prepared.inc();
        id
    }

    /// Arms a prepared session: tap samples from its device now route
    /// into it.
    ///
    /// # Errors
    ///
    /// Unknown id, a session not in `Prepared`, or a device that
    /// already has a measuring session.
    pub fn start(&self, id: u64) -> Result<(), String> {
        let mut s = self.lock();
        let device = {
            let sess = s.sessions.get(&id).ok_or_else(|| unknown(id))?;
            if sess.state != SessionState::Prepared {
                return Err(format!(
                    "session {id} is {}, not prepared",
                    sess.state.as_str()
                ));
            }
            sess.device
        };
        if let Some(&other) = s.by_device.get(&device) {
            return Err(format!(
                "device {device} is already measuring (session {other})"
            ));
        }
        s.by_device.insert(device, id);
        let sess = s.sessions.get_mut(&id).expect("checked above");
        sess.state = SessionState::Measuring;
        self.inner.started.inc();
        self.inner
            .telemetry
            .event(Severity::Info, "historian.session", || {
                format!("session {id} measuring device {device}")
            });
        Ok(())
    }

    /// Stops a measuring session: flushes its buffer and settles it as
    /// `Complete` (any samples ingested) or `Failed` (none).
    ///
    /// # Errors
    ///
    /// Unknown id or a session not currently measuring.
    pub fn stop(&self, id: u64) -> Result<SessionStatus, String> {
        let mut s = self.lock();
        let sess = s.sessions.get_mut(&id).ok_or_else(|| unknown(id))?;
        if sess.state != SessionState::Measuring {
            return Err(format!(
                "session {id} is {}, not measuring",
                sess.state.as_str()
            ));
        }
        let flush = sess.flush(&self.inner.historian);
        if let Err(e) = flush {
            sess.state = SessionState::Failed;
            sess.error = Some(format!("final flush failed: {e}"));
            self.inner.failed.inc();
        } else if sess.samples == 0 {
            sess.state = SessionState::Failed;
            sess.error = Some("no samples ingested".to_string());
            self.inner.failed.inc();
        } else {
            sess.state = SessionState::Complete;
            self.inner.completed.inc();
        }
        let status = sess.status();
        let device = sess.device;
        s.by_device.remove(&device);
        self.evict_terminal_locked(&mut s);
        Ok(status)
    }

    /// Re-arms a failed session back to `Prepared`, clearing its
    /// per-run counters (already-flushed records stay in the store; a
    /// device clock only moves forward, so the retried run appends
    /// after them).
    ///
    /// # Errors
    ///
    /// Unknown id or a session not in `Failed`.
    pub fn retry(&self, id: u64) -> Result<(), String> {
        let mut s = self.lock();
        let sess = s.sessions.get_mut(&id).ok_or_else(|| unknown(id))?;
        if sess.state != SessionState::Failed {
            return Err(format!(
                "session {id} is {}, not failed",
                sess.state.as_str()
            ));
        }
        sess.state = SessionState::Prepared;
        sess.error = None;
        sess.raw_buf.clear();
        sess.cal_buf.clear();
        sess.samples = 0;
        sess.clean = 0;
        sess.concealed = 0;
        sess.first_clock = None;
        sess.last_clock = None;
        sess.readings.clear();
        self.inner.retries.inc();
        Ok(())
    }

    /// The status of one session.
    pub fn status(&self, id: u64) -> Option<SessionStatus> {
        self.lock()
            .sessions
            .get(&id)
            .map(MeasurementSession::status)
    }

    /// The most recent calibrated readings of one session
    /// (clock-ascending, at most [`HubConfig::readings_keep`]).
    pub fn readings(&self, id: u64) -> Option<Vec<Reading>> {
        self.lock()
            .sessions
            .get(&id)
            .map(|s| s.readings.iter().copied().collect())
    }

    /// Every session's status, id-ascending.
    pub fn list(&self) -> Vec<SessionStatus> {
        let s = self.lock();
        let mut out: Vec<SessionStatus> = s
            .sessions
            .values()
            .map(MeasurementSession::status)
            .collect();
        out.sort_by_key(|st| st.id);
        out
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HubState> {
        self.inner.state.lock().expect("measurement hub lock")
    }

    /// Drops the oldest terminal sessions past
    /// [`HubConfig::terminal_keep`]. Measuring and prepared sessions
    /// are never evicted, so the map's size is bounded by the live
    /// session count plus the cap.
    fn evict_terminal_locked(&self, s: &mut HubState) {
        let keep = self.inner.config.terminal_keep;
        let mut terminal: Vec<u64> = s
            .sessions
            .values()
            .filter(|m| matches!(m.state, SessionState::Complete | SessionState::Failed))
            .map(|m| m.id)
            .collect();
        if terminal.len() <= keep {
            return;
        }
        terminal.sort_unstable();
        for id in &terminal[..terminal.len() - keep] {
            s.sessions.remove(id);
        }
    }

    fn fail_locked(sess: &mut MeasurementSession, failed: &Counter, msg: String) {
        sess.state = SessionState::Failed;
        sess.error = Some(msg);
        sess.raw_buf.clear();
        sess.cal_buf.clear();
        failed.inc();
    }
}

impl IngestTap for MeasurementHub {
    fn on_samples(&self, session: &TapSession, samples: &[HostSample]) {
        let Some(device) = session.device_id else {
            self.inner.tap_unrouted.add(samples.len() as u64);
            return;
        };
        let mut s = self.lock();
        let Some(&id) = s.by_device.get(&device) else {
            self.inner.tap_unrouted.add(samples.len() as u64);
            return;
        };
        let keep = self.inner.config.readings_keep;
        let flush_at = self.inner.config.flush_samples;
        // Flushes run under the hub lock on purpose: per-key appends
        // must reach the store in ingest order (the store rejects
        // non-monotonic clocks), and under the default OnSeal fsync
        // policy a flush is a buffered write, not a disk round-trip.
        // Operators pairing EveryRecord with many concurrent sessions
        // should size flush_samples to amortize the sync.
        let mut failed_device = None;
        {
            let sess = s.sessions.get_mut(&id).expect("by_device maps live ids");
            if sess.sample_rate_hz == 0.0 {
                sess.sample_rate_hz = session.output_rate_hz;
            }
            self.inner.tap_samples.add(samples.len() as u64);
            for sample in samples {
                let clock = sample.index;
                if sess.raw_buf.is_empty() {
                    sess.buf_clock = clock;
                } else if clock != sess.next_clock {
                    // Discontinuity: settle the contiguous run so every
                    // stored record is gap-free.
                    if let Err(e) = sess.flush(&self.inner.historian) {
                        MeasurementHub::fail_locked(sess, &self.inner.failed, e);
                        failed_device = Some(sess.device);
                        break;
                    }
                    sess.buf_clock = clock;
                }
                let clean = sample.flag == SampleFlag::Clean;
                sess.raw_buf
                    .push(if clean { sample.value_mmhg } else { f64::NAN });
                sess.cal_buf.push(MillimetersHg(sample.value_mmhg));
                sess.next_clock = clock + 1;
                sess.first_clock.get_or_insert(clock);
                sess.last_clock = Some(clock);
                sess.samples += 1;
                if clean {
                    sess.clean += 1;
                } else {
                    sess.concealed += 1;
                }
                sess.readings.push_back(Reading {
                    clock,
                    mmhg: sample.value_mmhg,
                    clean,
                });
                while sess.readings.len() > keep {
                    sess.readings.pop_front();
                }
                if sess.raw_buf.len() >= flush_at {
                    if let Err(e) = sess.flush(&self.inner.historian) {
                        MeasurementHub::fail_locked(sess, &self.inner.failed, e);
                        failed_device = Some(sess.device);
                        break;
                    }
                }
            }
        }
        if let Some(device) = failed_device {
            s.by_device.remove(&device);
            self.evict_terminal_locked(&mut s);
        }
    }

    fn on_closed(&self, session: &TapSession) {
        // The device's link dropped: settle its measuring session so a
        // frontend polling status sees a terminal state, not a stall.
        let id = session
            .device_id
            .and_then(|d| self.lock().by_device.get(&d).copied());
        if let Some(id) = id {
            let _ = self.stop(id);
            self.inner
                .telemetry
                .event(Severity::Warning, "historian.session", || {
                    format!("session {id}: link closed, auto-stopped")
                });
        }
    }
}

fn unknown(id: u64) -> String {
    format!("unknown session {id}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scratch_dir;
    use crate::store::StoreConfig;

    fn hub(tag: &str) -> (MeasurementHub, std::path::PathBuf) {
        let dir = scratch_dir(tag);
        let t = Telemetry::disabled();
        let (h, _) = Historian::open(&dir, StoreConfig::default(), &t).unwrap();
        (
            MeasurementHub::new(
                h,
                HubConfig {
                    flush_samples: 64,
                    readings_keep: 8,
                    ..HubConfig::default()
                },
                &t,
            ),
            dir,
        )
    }

    fn tap(device: u64) -> TapSession {
        TapSession {
            conn_id: 1,
            peer: "test".to_string(),
            device_id: Some(device),
            output_rate_hz: 1000.0,
        }
    }

    fn clean_samples(start: u64, n: usize) -> Vec<HostSample> {
        (0..n)
            .map(|i| HostSample {
                index: start + i as u64,
                value_mmhg: 100.0 + i as f64,
                flag: SampleFlag::Clean,
            })
            .collect()
    }

    #[test]
    fn lifecycle_prepare_start_ingest_stop() {
        let (hub, dir) = hub("hub-lifecycle");
        let id = hub.prepare(42);
        assert_eq!(hub.status(id).unwrap().state, SessionState::Prepared);
        // Samples before start are unrouted.
        hub.on_samples(&tap(42), &clean_samples(0, 10));
        assert_eq!(hub.status(id).unwrap().samples, 0);
        hub.start(id).unwrap();
        // Second session on the same device is rejected.
        let id2 = hub.prepare(42);
        assert!(hub.start(id2).is_err());
        hub.on_samples(&tap(42), &clean_samples(0, 100));
        let st = hub.status(id).unwrap();
        assert_eq!(st.samples, 100);
        assert_eq!(st.clean, 100);
        assert!(
            st.flushed_records >= 1,
            "flush_samples=64 must have flushed"
        );
        let st = hub.stop(id).unwrap();
        assert_eq!(st.state, SessionState::Complete);
        // All 100 samples landed in the store.
        let snap = hub.historian().snapshot();
        assert_eq!(snap.session_span(42, id), Some((0, 100)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn discontinuity_splits_records_and_marks_concealed() {
        let (hub, dir) = hub("hub-gap");
        let id = hub.prepare(7);
        hub.start(id).unwrap();
        let mut samples = clean_samples(0, 10);
        samples.push(HostSample {
            index: 15, // jump: 10..15 missing
            value_mmhg: 90.0,
            flag: SampleFlag::Concealed,
        });
        hub.on_samples(&tap(7), &samples);
        hub.stop(id).unwrap();
        let snap = hub.historian().snapshot();
        let entries = snap.range(7, id, 0, 0, u64::MAX);
        assert_eq!(entries.len(), 2, "gap must split the record");
        assert_eq!(entries[0].clock_start, 0);
        assert_eq!(entries[0].clock_end, 10);
        assert_eq!(entries[1].clock_start, 15);
        let wave = hub
            .historian()
            .reader()
            .read_tier(7, id, 0, 15, 16)
            .unwrap();
        assert!(wave.points[0].raw.is_nan(), "concealed raw lane is NaN");
        assert_eq!(wave.points[0].mmhg, 90.0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_stop_fails_and_retry_rearms() {
        let (hub, dir) = hub("hub-retry");
        let id = hub.prepare(9);
        hub.start(id).unwrap();
        let st = hub.stop(id).unwrap();
        assert_eq!(st.state, SessionState::Failed);
        assert!(st.error.is_some());
        hub.retry(id).unwrap();
        assert_eq!(hub.status(id).unwrap().state, SessionState::Prepared);
        hub.start(id).unwrap();
        hub.on_samples(&tap(9), &clean_samples(100, 5));
        assert_eq!(hub.stop(id).unwrap().state, SessionState::Complete);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn terminal_sessions_are_evicted_past_the_cap() {
        let dir = scratch_dir("hub-evict");
        let t = Telemetry::disabled();
        let (h, _) = Historian::open(&dir, StoreConfig::default(), &t).unwrap();
        let hub = MeasurementHub::new(
            h,
            HubConfig {
                terminal_keep: 3,
                ..HubConfig::default()
            },
            &t,
        );
        let mut ids = Vec::new();
        for k in 0..6u64 {
            let id = hub.prepare(5);
            hub.start(id).unwrap();
            hub.on_samples(&tap(5), &clean_samples(k * 100, 10));
            hub.stop(id).unwrap();
            ids.push(id);
        }
        // A live session is never evicted, whatever its age.
        let live = hub.prepare(5);
        let listed = hub.list();
        assert_eq!(listed.len(), 4, "3 terminal + 1 prepared");
        assert!(listed.iter().any(|s| s.id == live));
        // Oldest completions are gone, newest survive.
        assert!(hub.status(ids[0]).is_none());
        assert!(hub.status(ids[5]).is_some());
        // Evicted records are still on disk.
        let snap = hub.historian().snapshot();
        assert_eq!(snap.session_span(5, ids[0]), Some((0, 10)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn link_close_auto_stops() {
        let (hub, dir) = hub("hub-close");
        let id = hub.prepare(3);
        hub.start(id).unwrap();
        hub.on_samples(&tap(3), &clean_samples(0, 5));
        hub.on_closed(&tap(3));
        assert_eq!(hub.status(id).unwrap().state, SessionState::Complete);
        std::fs::remove_dir_all(&dir).ok();
    }
}

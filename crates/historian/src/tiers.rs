//! The downsampling pyramid: deterministic, restart-stable block
//! decimation between storage tiers.
//!
//! Tier 0 is the stream as ingested (1 kS/s at paper defaults); tier
//! `t+1` holds every 16th sample of tier `t` after a 64-tap anti-alias
//! FIR. Two tiers above the base give 1:16 and 1:256 — a day of
//! tier-2 output is ~337 k samples, which is why a ranged read over a
//! month-long recording stays bounded.
//!
//! ## Why block decimation is stateless
//!
//! Compaction runs opportunistically (a fleet background task), may be
//! interrupted by a crash, and may re-run over the same source region
//! after recovery. The tier build therefore cannot carry hidden filter
//! state between runs: [`downsample_block`] constructs a **fresh**
//! decimator per block and re-primes it from a fixed-length warmup
//! window of the preceding source samples ([`WARMUP`], a multiple of
//! the ratio so the output phase is unchanged). Same block in, same
//! bytes out, no matter when — or how many times — compaction runs.

use std::sync::OnceLock;

use tonos_dsp::fir::{design_lowpass, FirDecimator};
use tonos_dsp::window::Window;

/// Source samples folded into one output sample at each tier step.
pub const TIER_RATIO: usize = 16;

/// Highest downsampled tier kept (tier 1 = 1:16, tier 2 = 1:256).
pub const MAX_TIER: u8 = 2;

/// Source samples fed (and discarded) ahead of each block to prime
/// the anti-alias filter — a multiple of [`TIER_RATIO`] so the
/// decimation phase of the block itself is unaffected.
pub const WARMUP: usize = 64;

/// Tier-0 clocks spanned by one sample of tier `tier`.
pub fn tier_stride(tier: u8) -> u64 {
    (TIER_RATIO as u64).pow(u32::from(tier))
}

/// Sample rate of tier `tier` given the tier-0 rate.
pub fn tier_sample_rate(base_rate_hz: f64, tier: u8) -> f64 {
    base_rate_hz / tier_stride(tier) as f64
}

/// The shared anti-alias taps: 64-tap windowed-sinc lowpass with the
/// cutoff at 80 % of the post-decimation Nyquist (0.8 · 0.5 / 16 of
/// the input rate), Hamming window. Designed once per process.
fn tier_taps() -> &'static [f64] {
    static TAPS: OnceLock<Vec<f64>> = OnceLock::new();
    TAPS.get_or_init(|| {
        design_lowpass(64, 0.8 * 0.5 / TIER_RATIO as f64, Window::Hamming)
            .expect("tier filter design parameters are valid")
    })
}

/// Replaces non-finite samples (the concealment provenance marker in
/// stored raw lanes) by the last finite value seen, so the FIR never
/// propagates a NaN across a whole block.
fn sanitize(held: &mut f64, x: f64) -> f64 {
    if x.is_finite() {
        *held = x;
    }
    *held
}

/// Decimates one `(raw, calibrated)` block by [`TIER_RATIO`].
///
/// `warmup` is the source tail immediately preceding `block` (empty at
/// a run start, otherwise [`WARMUP`] samples); its length must be a
/// multiple of [`TIER_RATIO`]. Returns exactly
/// `block.len() / TIER_RATIO` output pairs (the trailing
/// non-multiple remainder of `block` produces no output and should not
/// be passed — compaction blocks are ratio-aligned).
pub fn downsample_block(warmup: &[(f64, f64)], block: &[(f64, f64)]) -> Vec<(f64, f64)> {
    debug_assert!(warmup.len().is_multiple_of(TIER_RATIO));
    let taps = tier_taps().to_vec();
    let mut raw_fir = FirDecimator::new(taps.clone(), TIER_RATIO).expect("valid tier decimator");
    let mut cal_fir = FirDecimator::new(taps, TIER_RATIO).expect("valid tier decimator");
    let (mut held_raw, mut held_cal) = (0.0, 0.0);
    for &(r, c) in warmup {
        let _ = raw_fir.push(sanitize(&mut held_raw, r));
        let _ = cal_fir.push(sanitize(&mut held_cal, c));
    }
    let mut out = Vec::with_capacity(block.len() / TIER_RATIO);
    for &(r, c) in block {
        let y_raw = raw_fir.push(sanitize(&mut held_raw, r));
        let y_cal = cal_fir.push(sanitize(&mut held_cal, c));
        if let (Some(yr), Some(yc)) = (y_raw, y_cal) {
            out.push((yr, yc));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize, offset: f64) -> Vec<(f64, f64)> {
        (0..n)
            .map(|i| (offset + i as f64, 80.0 + (offset + i as f64) * 0.5))
            .collect()
    }

    #[test]
    fn block_output_length_is_ratio_exact() {
        let out = downsample_block(&[], &ramp(256, 0.0));
        assert_eq!(out.len(), 16);
    }

    #[test]
    fn rebuilding_the_same_block_is_bit_identical() {
        let warm = ramp(WARMUP, 1000.0);
        let block = ramp(512, 1064.0);
        let a = downsample_block(&warm, &block);
        let b = downsample_block(&warm, &block);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.0.to_bits(), y.0.to_bits());
            assert_eq!(x.1.to_bits(), y.1.to_bits());
        }
    }

    #[test]
    fn warmup_removes_the_cold_start_transient() {
        // DC input: a primed block settles to the DC value; a cold one
        // starts from zero-filled delay lines.
        let dc: Vec<(f64, f64)> = vec![(1.0, 1.0); 256];
        let warm_out = downsample_block(&vec![(1.0, 1.0); WARMUP], &dc);
        assert!((warm_out[2].0 - 1.0).abs() < 1e-6, "{}", warm_out[2].0);
        let cold_out = downsample_block(&[], &dc);
        assert!((cold_out[0].0 - 1.0).abs() > 1e-3, "{}", cold_out[0].0);
    }

    #[test]
    fn nan_provenance_markers_never_poison_the_output() {
        let mut block = ramp(256, 0.0);
        for slot in block.iter_mut().skip(40).take(30) {
            slot.0 = f64::NAN;
        }
        let out = downsample_block(&[], &block);
        assert!(out.iter().all(|(r, c)| r.is_finite() && c.is_finite()));
    }

    #[test]
    fn strides_and_rates() {
        assert_eq!(tier_stride(0), 1);
        assert_eq!(tier_stride(1), 16);
        assert_eq!(tier_stride(2), 256);
        assert_eq!(tier_sample_rate(1000.0, 2), 1000.0 / 256.0);
    }
}

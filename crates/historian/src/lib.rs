//! `tonos-historian` — the storage and query plane for continuous
//! blood-pressure streams.
//!
//! Everything upstream of this crate converts, ships, and observes
//! pressure waveforms; nothing kept them. The historian closes that
//! gap with three layers:
//!
//! * **An append-only segmented store** ([`Historian`]): waveform
//!   records — the exact [`tonos_core::export`] binary session-record
//!   codec the wire and the export path already speak — appended to
//!   fixed-size segment files, each record wrapped in a CRC-protected
//!   envelope keyed by `(device, session, device-clock range)`.
//!   A CRC-journaled index gives O(log n) seek; sealed segments carry
//!   a footer so the index can be rebuilt from the files alone; on
//!   open, crash recovery re-scans the unsealed tail, truncates a torn
//!   record, and loses nothing else.
//! * **Tiered downsampling** ([`tiers`]): background compaction (a
//!   fleet-pool task, [`push_compaction`]) folds tier-0 records into
//!   1:16 and 1:256 pyramids on the existing FIR decimator kernels, so
//!   a month-long recording answers a ranged waveform query in bounded
//!   bytes no matter how long it grew ([`HistorianReader::read_range`]
//!   picks the coarsest tier that fits the caller's point budget).
//! * **A measurement-session service** ([`MeasurementHub`] +
//!   [`MeasurementApi`]): the `prepare → start → poll-status → retry`
//!   lifecycle a frontend polls, served std-only over HTTP in the
//!   `tonos-scope` mould, with live readings and ranged waveform reads
//!   answered from the store. The hub implements
//!   [`tonos_link::IngestTap`], so plugging it into
//!   [`LinkServer::bind_with_tap`](tonos_link::LinkServer::bind_with_tap)
//!   journals every accepted link to disk as it streams.
//!
//! ## Concurrency model
//!
//! One writer, any number of readers, no reader-side blocking: the
//! writer appends the record bytes (and the journal entry) first, then
//! publishes a brand-new immutable index snapshot behind an
//! atomic-swap [`Arc`](std::sync::Arc). Readers clone the current
//! snapshot under a pointer-sized critical section and do all their
//! file IO against immutable, already-published offsets — a reader can
//! never observe a partially written record, and ingest never waits
//! for a scan.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod api;
pub mod hub;
pub mod store;
pub mod tiers;

pub use api::MeasurementApi;
pub use hub::{HubConfig, MeasurementHub, Reading, SessionState, SessionStatus};
pub use store::{
    push_compaction, CompactReport, FsyncPolicy, Historian, HistorianReader, IndexEntry,
    IndexSnapshot, RangedWave, RecoveryReport, StoreConfig, WavePoint,
};
pub use tiers::{downsample_block, tier_sample_rate, tier_stride, MAX_TIER, TIER_RATIO, WARMUP};

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A fresh, unique scratch directory under the system temp dir —
/// shared by this crate's tests, benches, and examples (the build
/// environment has no `tempfile` crate). The caller owns cleanup;
/// leaking it on a panicking test is acceptable for scratch space.
pub fn scratch_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "tonos-historian-{}-{}-{tag}",
        std::process::id(),
        n
    ));
    std::fs::create_dir_all(&dir).expect("scratch dir is creatable");
    dir
}

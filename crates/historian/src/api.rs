//! The measurement-session HTTP API: the lifecycle endpoints a
//! frontend polls, served `std`-only in the `tonos-scope` mould (one
//! accept thread, inline handling, short IO timeouts) — extended with
//! `POST` bodies, which telemetry scrapes never needed.
//!
//! Routes:
//!
//! * `POST /sessions/prepare` — body `{"device": N}`; allocates a
//!   session, returns `{"id": ...}`.
//! * `POST /sessions/{id}/start` — arms it; tap samples from its
//!   device start landing.
//! * `POST /sessions/{id}/stop` — settles it (`complete`/`failed`).
//! * `POST /sessions/{id}/retry` — re-arms a failed session.
//! * `GET /sessions` — every session's status.
//! * `GET /sessions/{id}/status` — one status snapshot.
//! * `GET /sessions/{id}/readings` — the live tail of calibrated
//!   readings (the "current pressure" a UI shows during a measurement).
//! * `GET /sessions/{id}/waveform?from=&to=&max_points=` — a ranged
//!   waveform read answered from the store through the downsampling
//!   pyramid; the response point count is bounded by `max_points`
//!   (default 512) no matter how long the recording is. `raw` is
//!   `null` where the link concealed the sample.
//!
//! All JSON is hand-rolled (the build is dependency-free); NaN
//! serializes as `null`.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use tonos_telemetry::{names, Counter, Telemetry};

use crate::hub::MeasurementHub;

/// Accept-loop poll interval.
const POLL: Duration = Duration::from_millis(2);

/// How long one request may stall on a slow client.
const IO_TIMEOUT: Duration = Duration::from_millis(500);

/// Request size cap (line + headers + small JSON body).
const MAX_REQUEST: usize = 8192;

/// A running measurement-session API server.
///
/// Bind with [`MeasurementApi::bind`], learn the ephemeral port from
/// [`MeasurementApi::local_addr`], stop with
/// [`MeasurementApi::shutdown`].
#[derive(Debug)]
pub struct MeasurementApi {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl MeasurementApi {
    /// Binds and starts serving `hub` at `addr` (`"127.0.0.1:0"` picks
    /// an ephemeral port); requests count into
    /// `historian.api_requests` on `telemetry`.
    ///
    /// # Errors
    ///
    /// Propagates bind/configuration I/O failures.
    pub fn bind(addr: &str, hub: MeasurementHub, telemetry: &Telemetry) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_accept = Arc::clone(&stop);
        let requests = telemetry.counter(names::HISTORIAN_API_REQUESTS);
        let accept_thread =
            thread::spawn(move || accept_loop(&listener, &hub, &stop_accept, &requests));
        Ok(MeasurementApi {
            addr: local,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins it.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            handle.join().expect("api accept thread never panics");
        }
    }
}

impl Drop for MeasurementApi {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    hub: &MeasurementHub,
    stop: &AtomicBool,
    requests: &Counter,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                requests.inc();
                let _ = serve(stream, hub);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => thread::sleep(POLL),
            Err(_) => thread::sleep(POLL),
        }
    }
}

fn serve(mut stream: TcpStream, hub: &MeasurementHub) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let request = read_request(&mut stream)?;
    let (status, body) = match parse_request(&request) {
        None => ("400 Bad Request", err_json("malformed request")),
        Some((method, target, body)) => route(method, target, body, hub),
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(response.as_bytes())
}

/// Reads one request: headers, then as much body as `Content-Length`
/// declares (bounded by the request cap).
fn read_request(stream: &mut TcpStream) -> std::io::Result<String> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        if request_complete(&buf) || buf.len() >= MAX_REQUEST {
            break;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                break
            }
            Err(e) => return Err(e),
        }
    }
    Ok(String::from_utf8_lossy(&buf).into_owned())
}

/// Headers terminated, and the declared body fully buffered.
fn request_complete(buf: &[u8]) -> bool {
    let Some(head_end) = buf.windows(4).position(|w| w == b"\r\n\r\n") else {
        return false;
    };
    let head = String::from_utf8_lossy(&buf[..head_end]);
    let declared = head
        .lines()
        .find_map(|l| {
            let (name, value) = l.split_once(':')?;
            name.eq_ignore_ascii_case("content-length")
                .then(|| value.trim().parse::<usize>().ok())?
        })
        .unwrap_or(0);
    buf.len() >= head_end + 4 + declared
}

/// `"POST /x HTTP/1.1\r\n...\r\n\r\nBODY"` →
/// `("POST", "/x", "BODY")`. The target keeps its query string.
fn parse_request(request: &str) -> Option<(&str, &str, &str)> {
    let line = request.lines().next()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?;
    let target = parts.next()?;
    let body = request.split_once("\r\n\r\n").map_or("", |(_, body)| body);
    Some((method, target, body))
}

fn err_json(msg: &str) -> String {
    format!("{{\"error\":{}}}", json_str(msg))
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// `f64` as JSON: NaN (the concealment marker) and infinities become
/// `null`, which is what a plotting frontend wants for a break.
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

fn json_opt_u64(x: Option<u64>) -> String {
    x.map_or_else(|| "null".to_string(), |v| v.to_string())
}

/// Pulls `"name": <integer>` out of a flat JSON object body. Not a
/// JSON parser — the API's only body is `{"device": N}`, and a
/// malformed body reads as "field absent".
fn extract_u64(body: &str, name: &str) -> Option<u64> {
    let key = format!("\"{name}\"");
    let rest = &body[body.find(&key)? + key.len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Pulls `name=<u64>` out of a query string.
fn query_u64(query: &str, name: &str) -> Option<u64> {
    query
        .split('&')
        .find_map(|kv| kv.strip_prefix(name)?.strip_prefix('='))
        .and_then(|v| v.parse().ok())
}

fn status_json(st: &crate::hub::SessionStatus) -> String {
    format!(
        concat!(
            "{{\"id\":{},\"device\":{},\"state\":{},\"sample_rate_hz\":{},",
            "\"first_clock\":{},\"last_clock\":{},\"samples\":{},\"clean\":{},",
            "\"concealed\":{},\"flushed_records\":{},\"error\":{}}}"
        ),
        st.id,
        st.device,
        json_str(st.state.as_str()),
        json_f64(st.sample_rate_hz),
        json_opt_u64(st.first_clock),
        json_opt_u64(st.last_clock),
        st.samples,
        st.clean,
        st.concealed,
        st.flushed_records,
        st.error
            .as_deref()
            .map_or_else(|| "null".to_string(), json_str),
    )
}

fn route(method: &str, target: &str, body: &str, hub: &MeasurementHub) -> (&'static str, String) {
    let (path, query) = target.split_once('?').unwrap_or((target, ""));
    match (method, path) {
        ("POST", "/sessions/prepare") => match extract_u64(body, "device") {
            Some(device) => {
                let id = hub.prepare(device);
                ("200 OK", format!("{{\"id\":{id}}}"))
            }
            None => ("400 Bad Request", err_json("body must carry \"device\"")),
        },
        ("GET", "/sessions") => {
            let items: Vec<String> = hub.list().iter().map(status_json).collect();
            ("200 OK", format!("[{}]", items.join(",")))
        }
        (_, path) => {
            let Some(rest) = path.strip_prefix("/sessions/") else {
                return ("404 Not Found", err_json("not found"));
            };
            let Some((id_str, action)) = rest.split_once('/') else {
                return ("404 Not Found", err_json("not found"));
            };
            let Ok(id) = id_str.parse::<u64>() else {
                return ("400 Bad Request", err_json("session id must be an integer"));
            };
            match (method, action) {
                ("POST", "start") => lifecycle(hub.start(id)),
                ("POST", "retry") => lifecycle(hub.retry(id)),
                ("POST", "stop") => match hub.stop(id) {
                    Ok(st) => ("200 OK", status_json(&st)),
                    Err(e) => ("409 Conflict", err_json(&e)),
                },
                ("GET", "status") => match hub.status(id) {
                    Some(st) => ("200 OK", status_json(&st)),
                    None => ("404 Not Found", err_json("unknown session")),
                },
                ("GET", "readings") => match hub.readings(id) {
                    Some(readings) => {
                        let items: Vec<String> = readings
                            .iter()
                            .map(|r| {
                                format!(
                                    "{{\"clock\":{},\"mmhg\":{},\"clean\":{}}}",
                                    r.clock,
                                    json_f64(r.mmhg),
                                    r.clean,
                                )
                            })
                            .collect();
                        ("200 OK", format!("[{}]", items.join(",")))
                    }
                    None => ("404 Not Found", err_json("unknown session")),
                },
                ("GET", "waveform") => waveform(hub, id, query),
                _ => ("404 Not Found", err_json("not found")),
            }
        }
    }
}

fn lifecycle(result: Result<(), String>) -> (&'static str, String) {
    match result {
        Ok(()) => ("200 OK", "{\"ok\":true}".to_string()),
        Err(e) => ("409 Conflict", err_json(&e)),
    }
}

fn waveform(hub: &MeasurementHub, id: u64, query: &str) -> (&'static str, String) {
    let Some(st) = hub.status(id) else {
        return ("404 Not Found", err_json("unknown session"));
    };
    let snap = hub.historian().snapshot();
    let span = snap.session_span(st.device, id);
    let from = query_u64(query, "from")
        .or(span.map(|(a, _)| a))
        .unwrap_or(0);
    let to = query_u64(query, "to")
        .or(span.map(|(_, b)| b))
        .unwrap_or(from);
    let max_points = query_u64(query, "max_points").unwrap_or(512).max(1) as usize;
    drop(snap);
    let reader = hub.historian().reader();
    match reader.read_range(st.device, id, from, to, max_points) {
        Ok(wave) => {
            let points: Vec<String> = wave
                .points
                .iter()
                .map(|p| {
                    format!(
                        "{{\"clock\":{},\"raw\":{},\"mmhg\":{}}}",
                        p.clock,
                        json_f64(p.raw),
                        json_f64(p.mmhg),
                    )
                })
                .collect();
            (
                "200 OK",
                format!(
                    concat!(
                        "{{\"id\":{},\"device\":{},\"tier\":{},\"sample_rate_hz\":{},",
                        "\"stride\":{},\"from\":{},\"to\":{},\"points\":[{}]}}"
                    ),
                    id,
                    st.device,
                    wave.tier,
                    json_f64(wave.sample_rate_hz),
                    wave.stride,
                    from,
                    to,
                    points.join(","),
                ),
            )
        }
        Err(e) => ("500 Internal Server Error", err_json(&e.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hub::HubConfig;
    use crate::scratch_dir;
    use crate::store::{Historian, StoreConfig};
    use tonos_link::{HostSample, IngestTap, SampleFlag, TapSession};

    fn request(addr: SocketAddr, method: &str, target: &str, body: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect to api server");
        write!(
            stream,
            "{method} {target} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
            body.len(),
        )
        .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response
            .split_once("\r\n\r\n")
            .expect("response has a header terminator");
        (head.to_string(), body.to_string())
    }

    #[test]
    fn body_and_query_extraction() {
        assert_eq!(extract_u64("{\"device\": 42}", "device"), Some(42));
        assert_eq!(extract_u64("{\"device\":7,\"x\":1}", "device"), Some(7));
        assert_eq!(extract_u64("{}", "device"), None);
        assert_eq!(query_u64("from=5&to=100", "to"), Some(100));
        assert_eq!(query_u64("from=5", "to"), None);
        assert_eq!(json_f64(f64::NAN), "null");
    }

    #[test]
    fn http_lifecycle_end_to_end() {
        let dir = scratch_dir("api-e2e");
        let t = Telemetry::disabled();
        let (historian, _) = Historian::open(&dir, StoreConfig::default(), &t).unwrap();
        let hub = MeasurementHub::new(historian, HubConfig::default(), &t);
        let api = MeasurementApi::bind("127.0.0.1:0", hub.clone(), &t).unwrap();
        let addr = api.local_addr();

        let (head, body) = request(addr, "POST", "/sessions/prepare", "{\"device\": 5}");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert_eq!(body, "{\"id\":1}");

        let (head, _) = request(addr, "POST", "/sessions/1/start", "");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        // Double-start conflicts.
        let (head, _) = request(addr, "POST", "/sessions/1/start", "");
        assert!(head.starts_with("HTTP/1.1 409"), "{head}");

        // Ingest through the tap while measuring.
        let tap = TapSession {
            conn_id: 1,
            peer: "test".to_string(),
            device_id: Some(5),
            output_rate_hz: 1000.0,
        };
        let samples: Vec<HostSample> = (0..50)
            .map(|i| HostSample {
                index: i,
                value_mmhg: 100.0 + i as f64,
                flag: SampleFlag::Clean,
            })
            .collect();
        hub.on_samples(&tap, &samples);

        let (_, body) = request(addr, "GET", "/sessions/1/status", "");
        assert!(body.contains("\"state\":\"measuring\""), "{body}");
        assert!(body.contains("\"samples\":50"), "{body}");

        let (_, body) = request(addr, "GET", "/sessions/1/readings", "");
        assert!(body.contains("\"mmhg\":149"), "{body}");

        let (head, body) = request(addr, "POST", "/sessions/1/stop", "");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.contains("\"state\":\"complete\""), "{body}");

        let (_, body) = request(addr, "GET", "/sessions/1/waveform?max_points=10", "");
        assert!(body.contains("\"points\":["), "{body}");
        // Bounded by the budget.
        assert!(body.matches("\"clock\":").count() <= 10, "{body}");

        let (_, body) = request(addr, "GET", "/sessions", "");
        assert!(body.starts_with("[{\"id\":1"), "{body}");

        let (head, _) = request(addr, "GET", "/nope", "");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
        api.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! The append-only segmented store: segment files, record envelopes,
//! the CRC-journaled index, crash recovery, and lock-free readers.
//!
//! ## At-rest format
//!
//! A store directory holds `seg-<id>.tseg` segment files plus one
//! `index.jnl` journal. Every multi-byte field is little-endian;
//! every structure is covered by the frame codec's CRC-32
//! ([`tonos_dsp::frame::crc32`]).
//!
//! **Segment header** (28 bytes): `TONOSEG1` magic, `u32` version,
//! `u64` segment id, `u32` reserved, `u32` CRC over the first 24.
//!
//! **Record envelope**: `TREC` magic, then `device`, `session`,
//! `clock_start`, `clock_end` (`u64` each, clocks always in tier-0
//! sample units), `tier` byte, 3 reserved bytes, `u32` payload length,
//! the payload — a complete [`tonos_core::export`] binary session
//! record — and a `u32` CRC over everything after the magic. The
//! payload's own meta frame must agree with the envelope
//! ([`validate_record_meta`] plus span arithmetic), so a torn or
//! forged envelope cannot smuggle a mismatched record past recovery.
//!
//! **Segment footer** (sealed segments only): `TSEF`, `u32` entry
//! count, 48-byte index entries, `u32` CRC, `u32` footer length,
//! `TSEZ`. The trailing 8 bytes locate the footer from EOF, so a
//! sealed segment is self-indexing even if the journal is lost.
//!
//! **Journal**: fixed 62-byte entries (`TIDX`, kind byte, the index
//! fields, CRC). Kind 0 publishes one record; kind 1 seals a segment.
//! The journal is an optimization — recovery rebuilds it — but it is
//! what makes reopening a large store O(records) in journal bytes
//! rather than O(bytes) in payload re-reads.
//!
//! ## Recovery
//!
//! On open: replay the journal, dropping a torn tail entry; segments
//! the journal says are sealed are trusted as-is; every other segment
//! (normally just the youngest) is re-scanned envelope-by-envelope —
//! CRC, meta gate, span arithmetic — and the file is truncated at the
//! first byte that fails, counting the torn tail. The journal is then
//! rewritten atomically (tmp + rename) to the recovered truth.
//!
//! ## Publish protocol
//!
//! The writer appends bytes, journals, **then** swaps in a rebuilt
//! immutable index snapshot (`Mutex<Arc<IndexSnapshot>>` held only for
//! the pointer exchange). Readers clone the `Arc` and never touch the
//! writer lock: a record is visible only after it is fully on disk,
//! which is the "readers never observe a partially published record"
//! property the concurrency test pins down.

use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use tonos_core::export::{read_session_record, validate_record_meta, write_record_parts};
use tonos_dsp::frame::{crc32, Frame, ParseOutcome};
use tonos_fleet::{FleetEngine, SessionSummary};
use tonos_mems::units::MillimetersHg;
use tonos_telemetry::{names, Counter, Gauge, Histogram, Severity, Telemetry};

use crate::tiers::{downsample_block, tier_stride, MAX_TIER, TIER_RATIO, WARMUP};

const SEG_MAGIC: &[u8; 8] = b"TONOSEG1";
const SEG_VERSION: u32 = 1;
const SEG_HEADER_LEN: u64 = 28;

const REC_MAGIC: &[u8; 4] = b"TREC";
const REC_HEADER_LEN: usize = 44;

const FOOTER_MAGIC: &[u8; 4] = b"TSEF";
const FOOTER_TRAILER: &[u8; 4] = b"TSEZ";
const FOOTER_ENTRY_LEN: usize = 48;

const JOURNAL_ENTRY_LEN: usize = 62;
const JOURNAL_MAGIC: &[u8; 4] = b"TIDX";

/// Upper bound on one record's payload — matches ~4 M samples; a
/// corrupt length field past this is rejected without allocation.
const MAX_PAYLOAD: u32 = 1 << 26;

fn corrupt(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// When the store calls `fsync`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Sync the segment file after every appended record — maximum
    /// durability, one disk round-trip per append.
    EveryRecord,
    /// Sync only when a segment seals (and on footer/journal writes).
    /// A crash can lose OS-buffered tail records of the active
    /// segment; recovery truncates to the last whole one.
    OnSeal,
}

/// Store tuning.
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// Segment roll threshold in bytes (a segment may exceed it by at
    /// most one record).
    pub segment_bytes: u64,
    /// Durability policy.
    pub fsync: FsyncPolicy,
    /// Source samples per compaction block (multiple of
    /// [`TIER_RATIO`], at least [`WARMUP`]).
    pub tier_block: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            segment_bytes: 8 * 1024 * 1024,
            fsync: FsyncPolicy::OnSeal,
            tier_block: 4096,
        }
    }
}

/// One published record's index entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexEntry {
    /// Segment file id.
    pub segment: u64,
    /// Envelope offset within the segment file.
    pub offset: u64,
    /// Originating device id.
    pub device: u64,
    /// Measurement-session id.
    pub session: u64,
    /// Downsampling tier (0 = as ingested).
    pub tier: u8,
    /// First sample's device clock, tier-0 units.
    pub clock_start: u64,
    /// One past the last sample's device clock, tier-0 units.
    pub clock_end: u64,
    /// Payload byte length.
    pub payload_len: u32,
}

impl IndexEntry {
    fn key(&self) -> (u64, u64, u8, u64) {
        (self.device, self.session, self.tier, self.clock_start)
    }

    /// Total envelope bytes on disk (header + payload + CRC).
    pub fn envelope_len(&self) -> u64 {
        REC_HEADER_LEN as u64 + u64::from(self.payload_len) + 4
    }

    /// Samples held, derived from the clock span and tier stride.
    pub fn samples(&self) -> u64 {
        (self.clock_end - self.clock_start) / tier_stride(self.tier)
    }
}

/// An immutable, totally ordered view of every published record.
#[derive(Debug, Default)]
pub struct IndexSnapshot {
    /// Sorted by `(device, session, tier, clock_start)`.
    entries: Vec<IndexEntry>,
}

impl IndexSnapshot {
    /// Number of published records.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Every entry, sorted.
    pub fn entries(&self) -> &[IndexEntry] {
        &self.entries
    }

    /// The entries of `(device, session, tier)` overlapping the
    /// half-open clock range `[from, to)` — two binary searches, so a
    /// seek into an N-record store costs O(log N).
    pub fn range(&self, device: u64, session: u64, tier: u8, from: u64, to: u64) -> &[IndexEntry] {
        let lo = self.entries.partition_point(|e| {
            (e.device, e.session, e.tier) < (device, session, tier)
                || ((e.device, e.session, e.tier) == (device, session, tier) && e.clock_end <= from)
        });
        let hi = self.entries.partition_point(|e| {
            (e.device, e.session, e.tier) < (device, session, tier)
                || ((e.device, e.session, e.tier) == (device, session, tier) && e.clock_start < to)
        });
        &self.entries[lo..hi]
    }

    /// The last (highest-clock) entry for a `(device, session, tier)`.
    pub fn last_for(&self, device: u64, session: u64, tier: u8) -> Option<&IndexEntry> {
        let hi = self
            .entries
            .partition_point(|e| (e.device, e.session, e.tier) <= (device, session, tier));
        let e = self.entries[..hi].last()?;
        ((e.device, e.session, e.tier) == (device, session, tier)).then_some(e)
    }

    /// Distinct `(device, session)` pairs holding tier-0 data.
    pub fn sessions(&self) -> Vec<(u64, u64)> {
        let mut out: Vec<(u64, u64)> = Vec::new();
        for e in &self.entries {
            if e.tier == 0 && out.last() != Some(&(e.device, e.session)) {
                out.push((e.device, e.session));
            }
        }
        out.dedup();
        out
    }

    /// The overall tier-0 clock span of one `(device, session)`.
    pub fn session_span(&self, device: u64, session: u64) -> Option<(u64, u64)> {
        let all = self.range(device, session, 0, 0, u64::MAX);
        Some((all.first()?.clock_start, all.last()?.clock_end))
    }
}

/// What recovery found (and repaired) while opening a store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Segment files present after open (active one included).
    pub segments: u64,
    /// Records recovered into the index.
    pub records: u64,
    /// Segments whose tail was truncated (torn records dropped).
    pub truncated_segments: u64,
    /// Bytes dropped by those truncations.
    pub dropped_bytes: u64,
}

/// What one compaction pass produced.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactReport {
    /// Downsampled records appended across all tiers.
    pub tier_records: u64,
    /// Source samples consumed building them.
    pub source_samples: u64,
}

/// One point of a ranged waveform read.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WavePoint {
    /// Device clock of the sample, tier-0 units.
    pub clock: u64,
    /// Raw lane value (`NaN` marks concealed/invalid provenance).
    pub raw: f64,
    /// Calibrated pressure, mmHg.
    pub mmhg: f64,
}

/// A ranged waveform read's result.
#[derive(Debug, Clone, PartialEq)]
pub struct RangedWave {
    /// Tier the points came from.
    pub tier: u8,
    /// Sample rate of that tier, Hz (0 when no points).
    pub sample_rate_hz: f64,
    /// Additional stride applied on top of the tier (1 = none) to honor
    /// the caller's point budget.
    pub stride: u64,
    /// The points, clock-ascending.
    pub points: Vec<WavePoint>,
}

/// Writer-side mutable state, guarded by one mutex.
struct Writer {
    seg_id: u64,
    seg_file: File,
    seg_len: u64,
    /// Entries of the active segment, for its eventual footer.
    seg_entries: Vec<IndexEntry>,
    journal: File,
    /// Bytes at rest across sealed segments (active excluded).
    sealed_bytes: u64,
    segments: u64,
}

struct Shared {
    dir: PathBuf,
    config: StoreConfig,
    writer: Mutex<Writer>,
    /// The publish point: held only to clone or swap the Arc.
    index: Mutex<Arc<IndexSnapshot>>,
    segments_gauge: Gauge,
    bytes_gauge: Gauge,
    appends: Counter,
    append_bytes: Counter,
    reads: Counter,
    read_bytes: Counter,
    readers_gauge: Gauge,
    seals: Counter,
    compactions: Counter,
    tier_records: Counter,
    fsync_hist: Histogram,
}

/// The append-only segmented waveform store. Cheap to clone (an
/// `Arc`); one logical writer, any number of [`HistorianReader`]s.
#[derive(Clone)]
pub struct Historian {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for Historian {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Historian")
            .field("dir", &self.shared.dir)
            .finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------
// Binary codecs
// ---------------------------------------------------------------------

fn seg_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("seg-{id:08}.tseg"))
}

fn journal_path(dir: &Path) -> PathBuf {
    dir.join("index.jnl")
}

fn encode_seg_header(id: u64) -> [u8; SEG_HEADER_LEN as usize] {
    let mut h = [0u8; SEG_HEADER_LEN as usize];
    h[0..8].copy_from_slice(SEG_MAGIC);
    h[8..12].copy_from_slice(&SEG_VERSION.to_le_bytes());
    h[12..20].copy_from_slice(&id.to_le_bytes());
    // 20..24 reserved
    let crc = crc32(&h[0..24]);
    h[24..28].copy_from_slice(&crc.to_le_bytes());
    h
}

fn parse_seg_header(h: &[u8]) -> Option<u64> {
    if h.len() < SEG_HEADER_LEN as usize || &h[0..8] != SEG_MAGIC {
        return None;
    }
    if u32::from_le_bytes(h[8..12].try_into().ok()?) != SEG_VERSION {
        return None;
    }
    let crc = u32::from_le_bytes(h[24..28].try_into().ok()?);
    if crc != crc32(&h[0..24]) {
        return None;
    }
    Some(u64::from_le_bytes(h[12..20].try_into().ok()?))
}

fn encode_envelope(entry: &IndexEntry, payload: &[u8], out: &mut Vec<u8>) {
    out.clear();
    out.extend_from_slice(REC_MAGIC);
    out.extend_from_slice(&entry.device.to_le_bytes());
    out.extend_from_slice(&entry.session.to_le_bytes());
    out.extend_from_slice(&entry.clock_start.to_le_bytes());
    out.extend_from_slice(&entry.clock_end.to_le_bytes());
    out.push(entry.tier);
    out.extend_from_slice(&[0u8; 3]);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    let crc = crc32(&out[4..]);
    out.extend_from_slice(&crc.to_le_bytes());
}

/// Validates one envelope in `bytes` at `offset` (segment-relative),
/// including the payload's meta frame. Returns the entry and the
/// total envelope length.
fn parse_envelope(
    segment: u64,
    offset: u64,
    bytes: &[u8],
) -> Result<(IndexEntry, usize), io::Error> {
    if bytes.len() < REC_HEADER_LEN {
        return Err(corrupt("envelope header runs past segment end"));
    }
    if &bytes[0..4] != REC_MAGIC {
        return Err(corrupt("bad record magic"));
    }
    let payload_len = u32::from_le_bytes(bytes[40..44].try_into().expect("4 bytes"));
    if payload_len > MAX_PAYLOAD {
        return Err(corrupt(format!("payload length {payload_len} exceeds cap")));
    }
    let total = REC_HEADER_LEN + payload_len as usize + 4;
    if bytes.len() < total {
        return Err(corrupt("envelope payload runs past segment end"));
    }
    let crc_stored = u32::from_le_bytes(bytes[total - 4..total].try_into().expect("4 bytes"));
    if crc_stored != crc32(&bytes[4..total - 4]) {
        return Err(corrupt("envelope CRC mismatch"));
    }
    let entry = IndexEntry {
        segment,
        offset,
        device: u64::from_le_bytes(bytes[4..12].try_into().expect("8 bytes")),
        session: u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes")),
        tier: bytes[36],
        clock_start: u64::from_le_bytes(bytes[20..28].try_into().expect("8 bytes")),
        clock_end: u64::from_le_bytes(bytes[28..36].try_into().expect("8 bytes")),
        payload_len,
    };
    if entry.tier > MAX_TIER {
        return Err(corrupt(format!("tier {} out of range", entry.tier)));
    }
    // The payload must open with a meta frame that agrees with the
    // envelope — the shared header gate plus span arithmetic.
    let payload = &bytes[REC_HEADER_LEN..REC_HEADER_LEN + payload_len as usize];
    let meta = match Frame::parse(payload) {
        ParseOutcome::Parsed { frame, .. } => frame,
        _ => return Err(corrupt("record payload does not open with a frame")),
    };
    let header = validate_record_meta(&meta, payload.len())
        .map_err(|e| corrupt(format!("record meta rejected: {e}")))?;
    let span = entry.clock_end.checked_sub(entry.clock_start);
    if header.acquisition_start != entry.clock_start
        || span != Some(header.samples * tier_stride(entry.tier))
    {
        return Err(corrupt("envelope clock span disagrees with record meta"));
    }
    Ok((entry, total))
}

fn encode_journal_entry(kind: u8, e: &IndexEntry) -> [u8; JOURNAL_ENTRY_LEN] {
    let mut b = [0u8; JOURNAL_ENTRY_LEN];
    b[0..4].copy_from_slice(JOURNAL_MAGIC);
    b[4] = kind;
    b[5..13].copy_from_slice(&e.segment.to_le_bytes());
    b[13..21].copy_from_slice(&e.offset.to_le_bytes());
    b[21..29].copy_from_slice(&e.device.to_le_bytes());
    b[29..37].copy_from_slice(&e.session.to_le_bytes());
    b[37..45].copy_from_slice(&e.clock_start.to_le_bytes());
    b[45..53].copy_from_slice(&e.clock_end.to_le_bytes());
    b[53] = e.tier;
    b[54..58].copy_from_slice(&e.payload_len.to_le_bytes());
    let crc = crc32(&b[0..58]);
    b[58..62].copy_from_slice(&crc.to_le_bytes());
    b
}

fn parse_journal_entry(b: &[u8]) -> Option<(u8, IndexEntry)> {
    if b.len() < JOURNAL_ENTRY_LEN || &b[0..4] != JOURNAL_MAGIC {
        return None;
    }
    let crc = u32::from_le_bytes(b[58..62].try_into().ok()?);
    if crc != crc32(&b[0..58]) {
        return None;
    }
    let entry = IndexEntry {
        segment: u64::from_le_bytes(b[5..13].try_into().ok()?),
        offset: u64::from_le_bytes(b[13..21].try_into().ok()?),
        device: u64::from_le_bytes(b[21..29].try_into().ok()?),
        session: u64::from_le_bytes(b[29..37].try_into().ok()?),
        clock_start: u64::from_le_bytes(b[37..45].try_into().ok()?),
        clock_end: u64::from_le_bytes(b[45..53].try_into().ok()?),
        tier: b[53],
        payload_len: u32::from_le_bytes(b[54..58].try_into().ok()?),
    };
    Some((b[4], entry))
}

fn encode_footer(entries: &[IndexEntry]) -> Vec<u8> {
    let mut f = Vec::with_capacity(16 + entries.len() * FOOTER_ENTRY_LEN);
    f.extend_from_slice(FOOTER_MAGIC);
    f.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for e in entries {
        f.extend_from_slice(&e.offset.to_le_bytes());
        f.extend_from_slice(&e.device.to_le_bytes());
        f.extend_from_slice(&e.session.to_le_bytes());
        f.extend_from_slice(&e.clock_start.to_le_bytes());
        f.extend_from_slice(&e.clock_end.to_le_bytes());
        f.extend_from_slice(&u32::from(e.tier).to_le_bytes());
        f.extend_from_slice(&e.payload_len.to_le_bytes());
    }
    let crc = crc32(&f);
    f.extend_from_slice(&crc.to_le_bytes());
    let footer_len = (f.len() + 8) as u32; // through the trailer
    f.extend_from_slice(&footer_len.to_le_bytes());
    f.extend_from_slice(FOOTER_TRAILER);
    f
}

/// Reads a sealed segment's footer entries from its trailing bytes.
fn parse_footer(segment: u64, bytes: &[u8]) -> Option<Vec<IndexEntry>> {
    if bytes.len() < 16 || &bytes[bytes.len() - 4..] != FOOTER_TRAILER {
        return None;
    }
    let footer_len =
        u32::from_le_bytes(bytes[bytes.len() - 8..bytes.len() - 4].try_into().ok()?) as usize;
    // The smallest well-formed footer (zero entries) is magic + count +
    // CRC + length + trailer = 20 bytes; a corrupt length outside
    // [20, file] must fall through to the torn-footer path, not slice
    // out of bounds or underflow below.
    if !(20..=bytes.len()).contains(&footer_len) {
        return None;
    }
    let f = &bytes[bytes.len() - footer_len..];
    if &f[0..4] != FOOTER_MAGIC {
        return None;
    }
    let body_len = footer_len - 8; // magic..crc
    let crc = u32::from_le_bytes(f[body_len - 4..body_len].try_into().ok()?);
    if crc != crc32(&f[..body_len - 4]) {
        return None;
    }
    let count = u32::from_le_bytes(f[4..8].try_into().ok()?) as usize;
    if 8 + count * FOOTER_ENTRY_LEN + 4 != body_len {
        return None;
    }
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let e = &f[8 + i * FOOTER_ENTRY_LEN..8 + (i + 1) * FOOTER_ENTRY_LEN];
        out.push(IndexEntry {
            segment,
            offset: u64::from_le_bytes(e[0..8].try_into().ok()?),
            device: u64::from_le_bytes(e[8..16].try_into().ok()?),
            session: u64::from_le_bytes(e[16..24].try_into().ok()?),
            clock_start: u64::from_le_bytes(e[24..32].try_into().ok()?),
            clock_end: u64::from_le_bytes(e[32..40].try_into().ok()?),
            tier: u32::from_le_bytes(e[40..44].try_into().ok()?) as u8,
            payload_len: u32::from_le_bytes(e[44..48].try_into().ok()?),
        });
    }
    Some(out)
}

// ---------------------------------------------------------------------
// Open + recovery
// ---------------------------------------------------------------------

struct ScannedSegment {
    entries: Vec<IndexEntry>,
    /// Valid prefix length (header + whole records).
    valid_len: u64,
    file_len: u64,
    /// The scan ended at a valid footer: the segment is sealed and
    /// must never be appended to again.
    sealed: bool,
}

/// Scans one segment file record-by-record; every returned entry has a
/// verified envelope CRC and meta gate. `valid_len < file_len` means a
/// torn tail (or trailing garbage) that the caller should truncate —
/// unless the scan stopped cleanly at a footer.
fn scan_segment(id: u64, bytes: &[u8]) -> ScannedSegment {
    let file_len = bytes.len() as u64;
    if parse_seg_header(bytes).is_none() {
        return ScannedSegment {
            entries: Vec::new(),
            valid_len: 0,
            file_len,
            sealed: false,
        };
    }
    let mut entries = Vec::new();
    let mut pos = SEG_HEADER_LEN as usize;
    while pos < bytes.len() {
        if bytes[pos..].len() >= 4 && &bytes[pos..pos + 4] == FOOTER_MAGIC {
            // Sealed segment: the footer (already CRC-covered) runs to
            // EOF; nothing after it to scan and nothing to truncate.
            if parse_footer(id, bytes).is_some() {
                return ScannedSegment {
                    entries,
                    valid_len: file_len,
                    file_len,
                    sealed: true,
                };
            }
            break; // torn footer: drop it, keep the records
        }
        match parse_envelope(id, pos as u64, &bytes[pos..]) {
            Ok((entry, total)) => {
                entries.push(entry);
                pos += total;
            }
            Err(_) => break,
        }
    }
    ScannedSegment {
        entries,
        valid_len: pos as u64,
        file_len,
        sealed: false,
    }
}

fn list_segments(dir: &Path) -> io::Result<BTreeMap<u64, PathBuf>> {
    let mut out = BTreeMap::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(id) = name
            .strip_prefix("seg-")
            .and_then(|s| s.strip_suffix(".tseg"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            out.insert(id, entry.path());
        }
    }
    Ok(out)
}

impl Historian {
    /// Opens (creating if needed) the store at `dir`, running crash
    /// recovery, and wires `historian.*` instruments into `telemetry`.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; corrupt data is *recovered from* (torn
    /// tails truncated, unreadable segments skipped), never an error.
    pub fn open(
        dir: impl Into<PathBuf>,
        config: StoreConfig,
        telemetry: &Telemetry,
    ) -> io::Result<(Historian, RecoveryReport)> {
        assert!(
            config.tier_block >= WARMUP && config.tier_block.is_multiple_of(TIER_RATIO),
            "tier_block must be a multiple of {TIER_RATIO} and at least {WARMUP}"
        );
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let mut report = RecoveryReport::default();

        // Journal replay: valid prefix only.
        let mut journal_records: Vec<IndexEntry> = Vec::new();
        let mut sealed: Vec<u64> = Vec::new();
        if let Ok(bytes) = fs::read(journal_path(&dir)) {
            for chunk in bytes.chunks(JOURNAL_ENTRY_LEN) {
                match parse_journal_entry(chunk) {
                    Some((0, e)) => journal_records.push(e),
                    Some((1, e)) => sealed.push(e.segment),
                    _ => break, // torn or corrupt tail: rebuilt below
                }
            }
        }

        let seg_files = list_segments(&dir)?;
        let mut entries: Vec<IndexEntry> = Vec::new();
        let mut sealed_bytes = 0u64;
        let trunc_counter = telemetry.counter(names::HISTORIAN_RECOVERY_TRUNCATIONS);
        let skip_counter = telemetry.counter(names::HISTORIAN_RECOVERY_SKIPPED_BYTES);
        let mut last_sealed = false;
        for (&id, path) in &seg_files {
            let is_last = Some(&id) == seg_files.keys().last();
            let file_len = fs::metadata(path)?.len();
            if sealed.contains(&id) {
                // Journal-sealed: trust its entries without re-reading
                // payload bytes (the footer was fsynced before the
                // journal's seal entry was written).
                entries.extend(journal_records.iter().filter(|e| e.segment == id));
                sealed_bytes += file_len;
                if is_last {
                    last_sealed = true;
                }
                continue;
            }
            let bytes = fs::read(path)?;
            let scanned = scan_segment(id, &bytes);
            if scanned.valid_len < scanned.file_len {
                let dropped = scanned.file_len - scanned.valid_len;
                report.truncated_segments += 1;
                report.dropped_bytes += dropped;
                trunc_counter.inc();
                skip_counter.add(dropped);
                telemetry.event(Severity::Warning, "historian.recover", || {
                    format!("segment {id}: truncated {dropped} torn tail bytes")
                });
                let f = OpenOptions::new().write(true).open(path)?;
                f.set_len(scanned.valid_len.max(SEG_HEADER_LEN.min(scanned.valid_len)))?;
                f.sync_data()?;
            }
            if !is_last || scanned.sealed {
                sealed_bytes += scanned.valid_len;
            }
            if is_last {
                last_sealed = scanned.sealed;
            }
            entries.extend(scanned.entries);
        }
        entries.sort_by_key(IndexEntry::key);
        report.records = entries.len() as u64;

        // Active segment: the highest id, re-opened for append — unless
        // that segment is already sealed (a crash landed between the
        // seal and creating its successor), in which case roll to a
        // fresh id so new records never land after a footer, where the
        // next recovery's scan would discard them.
        let active_id = match seg_files.keys().last().copied() {
            None => 0,
            Some(last) if last_sealed => last + 1,
            Some(last) => last,
        };
        let active_path = seg_path(&dir, active_id);
        let mut seg_file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(&active_path)?;
        let mut seg_len = seg_file.metadata()?.len();
        if seg_len < SEG_HEADER_LEN {
            seg_file.set_len(0)?;
            seg_file.write_all(&encode_seg_header(active_id))?;
            seg_file.sync_data()?;
            seg_len = SEG_HEADER_LEN;
        }
        seg_file.seek(SeekFrom::End(0))?;
        let seg_entries: Vec<IndexEntry> = entries
            .iter()
            .filter(|e| e.segment == active_id)
            .copied()
            .collect();

        // Rewrite the journal to the recovered truth, atomically.
        let tmp = dir.join("index.jnl.tmp");
        {
            let mut f = File::create(&tmp)?;
            let mut ordered: Vec<&IndexEntry> = entries.iter().collect();
            ordered.sort_by_key(|e| (e.segment, e.offset));
            for e in ordered {
                f.write_all(&encode_journal_entry(0, e))?;
            }
            for (&id, _) in seg_files.iter().filter(|(&id, _)| id != active_id) {
                let seal = IndexEntry {
                    segment: id,
                    offset: 0,
                    device: 0,
                    session: 0,
                    tier: 0,
                    clock_start: 0,
                    clock_end: 0,
                    payload_len: 0,
                };
                f.write_all(&encode_journal_entry(1, &seal))?;
            }
            f.sync_data()?;
        }
        fs::rename(&tmp, journal_path(&dir))?;
        let journal = OpenOptions::new().append(true).open(journal_path(&dir))?;

        let segments = (seg_files.len() as u64 + u64::from(last_sealed)).max(1);
        report.segments = segments;
        let shared = Shared {
            config,
            writer: Mutex::new(Writer {
                seg_id: active_id,
                seg_file,
                seg_len,
                seg_entries,
                journal,
                sealed_bytes,
                segments,
            }),
            index: Mutex::new(Arc::new(IndexSnapshot { entries })),
            segments_gauge: telemetry.gauge(names::HISTORIAN_SEGMENTS),
            bytes_gauge: telemetry.gauge(names::HISTORIAN_BYTES),
            appends: telemetry.counter(names::HISTORIAN_APPENDS),
            append_bytes: telemetry.counter(names::HISTORIAN_APPEND_BYTES),
            reads: telemetry.counter(names::HISTORIAN_READS),
            read_bytes: telemetry.counter(names::HISTORIAN_READ_BYTES),
            readers_gauge: telemetry.gauge(names::HISTORIAN_READERS),
            seals: telemetry.counter(names::HISTORIAN_SEALS),
            compactions: telemetry.counter(names::HISTORIAN_COMPACTIONS),
            tier_records: telemetry.counter(names::HISTORIAN_TIER_RECORDS),
            fsync_hist: telemetry.histogram(
                names::HISTORIAN_FSYNC_S,
                &[1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0],
            ),
            dir,
        };
        shared.segments_gauge.set(segments as f64);
        {
            let w = shared.writer.lock().expect("historian writer lock");
            shared.bytes_gauge.set((w.sealed_bytes + w.seg_len) as f64);
        }
        Ok((
            Historian {
                shared: Arc::new(shared),
            },
            report,
        ))
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.shared.dir
    }

    /// Clones the current published index snapshot.
    pub fn snapshot(&self) -> Arc<IndexSnapshot> {
        Arc::clone(&self.shared.index.lock().expect("historian index lock"))
    }

    /// Opens a reader handle; readers never block the writer.
    pub fn reader(&self) -> HistorianReader {
        self.shared.readers_gauge.add(1.0);
        HistorianReader {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Appends one tier-0 waveform record for `(device, session)`
    /// starting at device clock `clock_start`. Lanes must be equal
    /// length; empty lanes are a no-op. Appends per key must be
    /// clock-monotonic (`clock_start ≥` the previous record's end).
    ///
    /// # Errors
    ///
    /// I/O failures, mismatched lanes, or a non-monotonic clock.
    pub fn append(
        &self,
        device: u64,
        session: u64,
        clock_start: u64,
        sample_rate_hz: f64,
        raw: &[f64],
        calibrated: &[MillimetersHg],
    ) -> io::Result<()> {
        self.append_tier(
            device,
            session,
            0,
            clock_start,
            sample_rate_hz,
            raw,
            calibrated,
        )
    }

    /// Tier-aware append — compaction uses this for tier ≥ 1.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn append_tier(
        &self,
        device: u64,
        session: u64,
        tier: u8,
        clock_start: u64,
        sample_rate_hz: f64,
        raw: &[f64],
        calibrated: &[MillimetersHg],
    ) -> io::Result<()> {
        if raw.is_empty() && calibrated.is_empty() {
            return Ok(());
        }
        if tier > MAX_TIER {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("tier {tier} out of range"),
            ));
        }
        let mut payload = Vec::with_capacity(raw.len() * 16 + 64);
        write_record_parts(sample_rate_hz, clock_start, raw, calibrated, &mut payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        // Enforce the reader-side envelope cap before anything touches
        // disk: an over-cap payload would be rejected by every future
        // parse_envelope, turning it (and everything after it in the
        // segment) into a torn tail on the next recovery.
        if payload.len() > MAX_PAYLOAD as usize {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "record payload is {} bytes, over the {MAX_PAYLOAD}-byte cap; split the append",
                    payload.len()
                ),
            ));
        }
        let clock_end = clock_start + raw.len() as u64 * tier_stride(tier);
        let mut entry = IndexEntry {
            segment: 0,
            offset: 0,
            device,
            session,
            tier,
            clock_start,
            clock_end,
            payload_len: payload.len() as u32,
        };
        // Monotonicity per key keeps the index sorted and ranges
        // non-overlapping — checked against the *published* snapshot,
        // which the writer lock makes race-free.
        let mut w = self.shared.writer.lock().expect("historian writer lock");
        if let Some(last) = self.snapshot().last_for(device, session, tier) {
            if clock_start < last.clock_end {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!(
                        "append at clock {clock_start} overlaps published records (end {})",
                        last.clock_end
                    ),
                ));
            }
        }
        let mut env = Vec::with_capacity(payload.len() + REC_HEADER_LEN + 4);
        encode_envelope(&entry, &payload, &mut env);
        // Roll the segment first so one record never straddles two.
        if w.seg_len > SEG_HEADER_LEN
            && w.seg_len + env.len() as u64 > self.shared.config.segment_bytes
        {
            self.seal_locked(&mut w)?;
        }
        entry.segment = w.seg_id;
        entry.offset = w.seg_len;
        // Re-stamp the envelope header? Not needed: segment/offset are
        // index-side locators, not part of the on-disk envelope.
        w.seg_file.write_all(&env)?;
        if self.shared.config.fsync == FsyncPolicy::EveryRecord {
            let t0 = Instant::now();
            w.seg_file.sync_data()?;
            self.shared.fsync_hist.record(t0.elapsed().as_secs_f64());
        }
        w.seg_len += env.len() as u64;
        w.seg_entries.push(entry);
        w.journal.write_all(&encode_journal_entry(0, &entry))?;
        // Publish: build the successor snapshot and swap the Arc. The
        // record is fully on disk before any reader can see it.
        {
            let mut index = self.shared.index.lock().expect("historian index lock");
            let mut next = index.entries.clone();
            let at = next.partition_point(|e| e.key() <= entry.key());
            next.insert(at, entry);
            *index = Arc::new(IndexSnapshot { entries: next });
        }
        self.shared.appends.inc();
        self.shared.append_bytes.add(env.len() as u64);
        self.shared
            .bytes_gauge
            .set((w.sealed_bytes + w.seg_len) as f64);
        if entry.tier > 0 {
            self.shared.tier_records.inc();
        }
        Ok(())
    }

    /// Seals the active segment (footer + fsync + journal seal) and
    /// rolls to a fresh one. Public so operators can force a seal; a
    /// no-op on an empty active segment.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn seal_active(&self) -> io::Result<()> {
        let mut w = self.shared.writer.lock().expect("historian writer lock");
        if w.seg_len <= SEG_HEADER_LEN {
            return Ok(());
        }
        self.seal_locked(&mut w)
    }

    fn seal_locked(&self, w: &mut Writer) -> io::Result<()> {
        let footer = encode_footer(&w.seg_entries);
        w.seg_file.write_all(&footer)?;
        let t0 = Instant::now();
        w.seg_file.sync_data()?;
        self.shared.fsync_hist.record(t0.elapsed().as_secs_f64());
        w.seg_len += footer.len() as u64;
        let seal = IndexEntry {
            segment: w.seg_id,
            offset: w.seg_len,
            device: 0,
            session: 0,
            tier: 0,
            clock_start: 0,
            clock_end: 0,
            payload_len: 0,
        };
        w.journal.write_all(&encode_journal_entry(1, &seal))?;
        w.journal.sync_data()?;
        w.sealed_bytes += w.seg_len;
        let next_id = w.seg_id + 1;
        let mut f = OpenOptions::new()
            .create_new(true)
            .read(true)
            .write(true)
            .open(seg_path(&self.shared.dir, next_id))?;
        f.write_all(&encode_seg_header(next_id))?;
        w.seg_id = next_id;
        w.seg_file = f;
        w.seg_len = SEG_HEADER_LEN;
        w.seg_entries.clear();
        w.segments += 1;
        self.shared.seals.inc();
        self.shared.segments_gauge.set(w.segments as f64);
        self.shared
            .bytes_gauge
            .set((w.sealed_bytes + w.seg_len) as f64);
        Ok(())
    }

    /// One compaction pass: for every `(device, session)` and tier
    /// step, folds complete source blocks that have no downsampled
    /// counterpart yet into tier-above records (1:16 per step, fresh
    /// FIR per block — see [`crate::tiers`]). Idempotent and
    /// restart-stable: re-running over the same data appends nothing.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from source reads or tier appends.
    pub fn compact(&self) -> io::Result<CompactReport> {
        let mut report = CompactReport::default();
        let block = self.shared.config.tier_block;
        for source_tier in 0..MAX_TIER {
            // Re-snapshot per tier step so tier-1 records built this
            // pass are visible as sources for tier 2.
            let snap = self.snapshot();
            let sessions = snap.sessions();
            for (device, session) in sessions {
                report.merge(self.compact_key(&snap, device, session, source_tier, block)?);
            }
        }
        self.shared.compactions.inc();
        Ok(report)
    }

    fn compact_key(
        &self,
        snap: &IndexSnapshot,
        device: u64,
        session: u64,
        source_tier: u8,
        block: usize,
    ) -> io::Result<CompactReport> {
        let mut report = CompactReport::default();
        let target_tier = source_tier + 1;
        let src_stride = tier_stride(source_tier);
        let block_clocks = block as u64 * src_stride;
        let reader = self.reader();
        let sources = snap.range(device, session, source_tier, 0, u64::MAX);
        // Contiguous runs: a discontinuity (stream reset, re-based
        // clock) starts a new run with its own block alignment.
        let mut runs: Vec<(u64, u64)> = Vec::new();
        for e in sources {
            match runs.last_mut() {
                Some((_, end)) if *end == e.clock_start => *end = e.clock_end,
                _ => runs.push((e.clock_start, e.clock_end)),
            }
        }
        for (run_start, run_end) in runs {
            // Resume where the target tier already reaches within this
            // run; block alignment off run_start keeps rebuilds
            // deterministic.
            let built = snap
                .range(device, session, target_tier, run_start, run_end)
                .last()
                .map_or(run_start, |e| e.clock_end);
            let mut pos = built.max(run_start);
            // Align to the run's block grid (recovery from odd target
            // spans would otherwise misphase the decimator).
            let into = (pos - run_start) % block_clocks;
            if into != 0 {
                pos += block_clocks - into;
            }
            while pos + block_clocks <= run_end {
                let warm_clocks = if pos == run_start {
                    0
                } else {
                    WARMUP as u64 * src_stride
                };
                let (rate, mut samples) = reader.read_lanes(
                    snap,
                    device,
                    session,
                    source_tier,
                    pos - warm_clocks,
                    pos + block_clocks,
                )?;
                let warm_n = (warm_clocks / src_stride) as usize;
                let blk = samples.split_off(warm_n);
                let out = downsample_block(&samples, &blk);
                let raw: Vec<f64> = out.iter().map(|&(r, _)| r).collect();
                let cal: Vec<MillimetersHg> = out.iter().map(|&(_, c)| MillimetersHg(c)).collect();
                self.append_tier(
                    device,
                    session,
                    target_tier,
                    pos,
                    rate / TIER_RATIO as f64,
                    &raw,
                    &cal,
                )?;
                report.tier_records += 1;
                report.source_samples += blk.len() as u64;
                pos += block_clocks;
            }
        }
        Ok(report)
    }
}

impl CompactReport {
    fn merge(&mut self, other: CompactReport) {
        self.tier_records += other.tier_records;
        self.source_samples += other.source_samples;
    }
}

/// Submits one compaction pass as a fleet background task; returns the
/// fleet session id. The pass runs on a pool worker, contained like
/// any session (a panicking compaction cannot take down ingest).
pub fn push_compaction(engine: &mut FleetEngine, historian: &Historian) -> u64 {
    let h = historian.clone();
    engine.push_task("historian:compact", move |ctx| {
        let report = h.compact().map_err(|e| e.to_string())?;
        ctx.telemetry
            .event(Severity::Info, "historian.compact", || {
                format!(
                    "compaction: {} tier records from {} source samples",
                    report.tier_records, report.source_samples
                )
            });
        Ok(SessionSummary::from_stream(
            0,
            0.0,
            0.0,
            0.0,
            report.source_samples as usize,
            0.0,
            0,
        ))
    })
}

// ---------------------------------------------------------------------
// Readers
// ---------------------------------------------------------------------

/// A read handle: clones the published snapshot per query and does its
/// file IO against immutable offsets. Never blocks (or is blocked by)
/// the writer.
pub struct HistorianReader {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for HistorianReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HistorianReader")
            .field("dir", &self.shared.dir)
            .finish_non_exhaustive()
    }
}

impl Drop for HistorianReader {
    fn drop(&mut self) {
        self.shared.readers_gauge.add(-1.0);
    }
}

impl HistorianReader {
    /// The current published index snapshot.
    pub fn snapshot(&self) -> Arc<IndexSnapshot> {
        Arc::clone(&self.shared.index.lock().expect("historian index lock"))
    }

    /// Reads one record's verified sample lanes by index entry.
    fn read_record(
        &self,
        entry: &IndexEntry,
        file: &mut File,
    ) -> io::Result<(f64, Vec<(f64, f64)>)> {
        let total = entry.envelope_len() as usize;
        let mut bytes = vec![0u8; total];
        file.seek(SeekFrom::Start(entry.offset))?;
        file.read_exact(&mut bytes)?;
        let (parsed, _) = parse_envelope(entry.segment, entry.offset, &bytes)?;
        if parsed != *entry {
            return Err(corrupt("index entry disagrees with on-disk envelope"));
        }
        let payload = &bytes[REC_HEADER_LEN..REC_HEADER_LEN + entry.payload_len as usize];
        let record = read_session_record(payload)
            .map_err(|e| corrupt(format!("record payload rejected: {e}")))?;
        self.shared.read_bytes.add(total as u64);
        Ok((
            record.sample_rate,
            record
                .raw
                .iter()
                .zip(&record.calibrated)
                .map(|(&r, c)| (r, c.value()))
                .collect(),
        ))
    }

    /// Reads the contiguous `(raw, mmhg)` lanes of `[from, to)` at one
    /// tier. Errors if the range is not fully covered by published
    /// records (compaction only asks for ranges inside one run).
    fn read_lanes(
        &self,
        snap: &IndexSnapshot,
        device: u64,
        session: u64,
        tier: u8,
        from: u64,
        to: u64,
    ) -> io::Result<(f64, Vec<(f64, f64)>)> {
        let stride = tier_stride(tier);
        let entries = snap.range(device, session, tier, from, to);
        let mut out = Vec::with_capacity(((to - from) / stride) as usize);
        let mut rate = 0.0;
        let mut expect = from;
        let mut file: Option<(u64, File)> = None;
        for e in entries {
            if e.clock_start.max(from) != expect {
                return Err(corrupt(format!(
                    "range [{from}, {to}) tier {tier} has a hole at clock {expect}"
                )));
            }
            let f = match &mut file {
                Some((id, f)) if *id == e.segment => f,
                _ => {
                    let f = File::open(seg_path(&self.shared.dir, e.segment))?;
                    &mut file.insert((e.segment, f)).1
                }
            };
            let (r, lanes) = self.read_record(e, f)?;
            rate = r;
            let lo = ((expect - e.clock_start) / stride) as usize;
            let hi = ((to.min(e.clock_end) - e.clock_start) / stride) as usize;
            out.extend_from_slice(&lanes[lo..hi]);
            expect = to.min(e.clock_end);
        }
        if expect != to {
            return Err(corrupt(format!(
                "range [{from}, {to}) tier {tier} ends short at clock {expect}"
            )));
        }
        Ok((rate, out))
    }

    /// Reads `[from, to)` of one `(device, session)` at an explicit
    /// tier, returning whatever published records cover (holes simply
    /// yield fewer points — this is the query path, not compaction).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures and envelope verification failures.
    pub fn read_tier(
        &self,
        device: u64,
        session: u64,
        tier: u8,
        from: u64,
        to: u64,
    ) -> io::Result<RangedWave> {
        self.shared.reads.inc();
        let snap = self.snapshot();
        let stride = tier_stride(tier);
        let mut points = Vec::new();
        let mut rate = 0.0;
        let mut file: Option<(u64, File)> = None;
        for e in snap.range(device, session, tier, from, to) {
            let f = match &mut file {
                Some((id, f)) if *id == e.segment => f,
                _ => {
                    let f = File::open(seg_path(&self.shared.dir, e.segment))?;
                    &mut file.insert((e.segment, f)).1
                }
            };
            let (r, lanes) = self.read_record(e, f)?;
            rate = r;
            // div_ceil on both bounds keeps the result inside the
            // half-open [from, to): flooring `lo` would let the first
            // point of an unaligned coarse-tier read precede `from`.
            let lo = (from.max(e.clock_start) - e.clock_start).div_ceil(stride);
            let hi = (to.min(e.clock_end) - e.clock_start).div_ceil(stride);
            for (i, &(raw, mmhg)) in lanes[lo as usize..hi as usize].iter().enumerate() {
                points.push(WavePoint {
                    clock: e.clock_start + (lo + i as u64) * stride,
                    raw,
                    mmhg,
                });
            }
        }
        Ok(RangedWave {
            tier,
            sample_rate_hz: rate,
            stride: 1,
            points,
        })
    }

    /// Ranged waveform read under a point budget: picks the finest
    /// tier whose point count over `[from, to)` fits `max_points`
    /// (skipping tiers the compaction pyramid has not built yet), and
    /// when even the coarsest built tier overshoots the budget, reads
    /// that coarsest tier and stride-subsamples it down. The returned
    /// byte volume is therefore bounded by `max_points`, and the read
    /// volume by the coarsest tier's resolution — never the full
    /// tier-0 recording unless tier 0 is all there is.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; an uncovered range returns empty
    /// points, not an error.
    pub fn read_range(
        &self,
        device: u64,
        session: u64,
        from: u64,
        to: u64,
        max_points: usize,
    ) -> io::Result<RangedWave> {
        let max_points = max_points.max(1);
        let span = to.saturating_sub(from).max(1);
        let snap = self.snapshot();
        // Finest-first among tiers that fit the budget; if none fits,
        // the coarsest tier with any data minimizes what must be read
        // before subsampling.
        let mut pick = None;
        let mut coarsest = 0u8;
        for tier in 0..=MAX_TIER {
            if snap.range(device, session, tier, from, to).is_empty() {
                continue;
            }
            coarsest = tier;
            if pick.is_none() && span / tier_stride(tier) <= max_points as u64 {
                pick = Some(tier);
            }
        }
        let pick = pick.unwrap_or(coarsest);
        drop(snap);
        let mut wave = self.read_tier(device, session, pick, from, to)?;
        if wave.points.len() > max_points {
            let stride = wave.points.len().div_ceil(max_points);
            wave.points = wave.points.iter().step_by(stride).copied().collect();
            wave.stride = stride as u64;
        }
        Ok(wave)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scratch_dir;

    fn lanes(n: usize, base: f64) -> (Vec<f64>, Vec<MillimetersHg>) {
        let raw: Vec<f64> = (0..n).map(|i| base + i as f64).collect();
        let cal = raw.iter().map(|&r| MillimetersHg(80.0 + r * 0.1)).collect();
        (raw, cal)
    }

    #[test]
    fn envelope_round_trips_and_rejects_flips() {
        let (raw, cal) = lanes(100, 0.0);
        let mut payload = Vec::new();
        write_record_parts(1000.0, 7, &raw, &cal, &mut payload).unwrap();
        let entry = IndexEntry {
            segment: 3,
            offset: 28,
            device: 1,
            session: 2,
            tier: 0,
            clock_start: 7,
            clock_end: 107,
            payload_len: payload.len() as u32,
        };
        let mut env = Vec::new();
        encode_envelope(&entry, &payload, &mut env);
        let (parsed, total) = parse_envelope(3, 28, &env).unwrap();
        assert_eq!(total, env.len());
        assert_eq!(parsed, entry);
        for at in [0usize, 5, 20, 50, env.len() - 1] {
            let mut bad = env.clone();
            bad[at] ^= 0x10;
            assert!(parse_envelope(3, 28, &bad).is_err(), "flip at {at}");
        }
    }

    #[test]
    fn journal_entry_round_trips() {
        let e = IndexEntry {
            segment: 9,
            offset: 1234,
            device: 5,
            session: 6,
            tier: 1,
            clock_start: 100,
            clock_end: 1700,
            payload_len: 321,
        };
        let b = encode_journal_entry(0, &e);
        assert_eq!(parse_journal_entry(&b), Some((0, e)));
        let mut bad = b;
        bad[30] ^= 1;
        assert_eq!(parse_journal_entry(&bad), None);
    }

    #[test]
    fn footer_round_trips_through_a_sealed_file_tail() {
        let entries: Vec<IndexEntry> = (0..5)
            .map(|i| IndexEntry {
                segment: 2,
                offset: 28 + i * 100,
                device: 1,
                session: i,
                tier: 0,
                clock_start: i * 1000,
                clock_end: i * 1000 + 500,
                payload_len: 48,
            })
            .collect();
        let mut file = vec![0xAAu8; 400]; // stand-in for records
        file.extend_from_slice(&encode_footer(&entries));
        assert_eq!(parse_footer(2, &file).unwrap(), entries);
        let mut torn = file.clone();
        let len = torn.len();
        torn[len - 10] ^= 1;
        assert!(parse_footer(2, &torn).is_none());
    }

    #[test]
    fn append_read_round_trip_and_monotonicity() {
        let dir = scratch_dir("store-rt");
        let t = Telemetry::disabled();
        let (h, rep) = Historian::open(&dir, StoreConfig::default(), &t).unwrap();
        assert_eq!(rep.records, 0);
        let (raw, cal) = lanes(500, 1.0);
        h.append(1, 1, 0, 1000.0, &raw, &cal).unwrap();
        h.append(1, 1, 500, 1000.0, &raw, &cal).unwrap();
        // Overlap rejected.
        assert!(h.append(1, 1, 900, 1000.0, &raw, &cal).is_err());
        let r = h.reader();
        let wave = r.read_tier(1, 1, 0, 100, 700).unwrap();
        assert_eq!(wave.points.len(), 600);
        assert_eq!(wave.points[0].clock, 100);
        assert_eq!(wave.points[0].raw, 101.0);
        assert_eq!(wave.points[599].clock, 699);
        assert_eq!(wave.points[599].raw, 1.0 + 199.0);
        drop(r);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn segments_roll_and_reopen_finds_everything() {
        let dir = scratch_dir("store-roll");
        let t = Telemetry::disabled();
        let config = StoreConfig {
            segment_bytes: 16 * 1024,
            ..StoreConfig::default()
        };
        let (h, _) = Historian::open(&dir, config, &t).unwrap();
        let (raw, cal) = lanes(256, 0.0);
        for k in 0..40 {
            h.append(1, 1, k * 256, 1000.0, &raw, &cal).unwrap();
        }
        let before = h.snapshot();
        assert_eq!(before.len(), 40);
        assert!(list_segments(&dir).unwrap().len() > 1, "no roll happened");
        drop(h);
        let (h2, rep) = Historian::open(&dir, config, &t).unwrap();
        assert_eq!(rep.records, 40);
        assert_eq!(rep.truncated_segments, 0);
        let after = h2.snapshot();
        assert_eq!(after.entries(), before.entries());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_builds_both_tiers_and_is_idempotent() {
        let dir = scratch_dir("store-tiers");
        let t = Telemetry::disabled();
        let config = StoreConfig {
            tier_block: 256,
            ..StoreConfig::default()
        };
        let (h, _) = Historian::open(&dir, config, &t).unwrap();
        // 16 × 512 = 8192 tier-0 samples → 512 tier-1 → 32 tier-2.
        for k in 0..16u64 {
            let (raw, cal) = lanes(512, k as f64);
            h.append(7, 1, k * 512, 1000.0, &raw, &cal).unwrap();
        }
        let r1 = h.compact().unwrap();
        assert!(r1.tier_records > 0);
        let snap = h.snapshot();
        let t1: u64 = snap
            .range(7, 1, 1, 0, u64::MAX)
            .iter()
            .map(IndexEntry::samples)
            .sum();
        let t2: u64 = snap
            .range(7, 1, 2, 0, u64::MAX)
            .iter()
            .map(IndexEntry::samples)
            .sum();
        assert_eq!(t1, 512);
        // Tier 2 builds from tier-1 runs: 512 tier-1 samples = 8192
        // clocks ≥ one 256-sample tier-1 block (65536 clocks)? No:
        // 256 tier-1 samples span 4096 clocks; 512 span 8192 → two
        // blocks exactly.
        assert_eq!(t2, 32);
        let r2 = h.compact().unwrap();
        assert_eq!(r2.tier_records, 0, "compaction must be idempotent");
        // Downsampled read picks a coarse tier and bounds the points.
        let reader = h.reader();
        let wave = reader.read_range(7, 1, 0, 8192, 64).unwrap();
        assert!(wave.tier >= 1, "tier {}", wave.tier);
        assert!(wave.points.len() <= 64);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_footer_length_is_rejected_without_panicking() {
        let entries = vec![IndexEntry {
            segment: 2,
            offset: 28,
            device: 1,
            session: 1,
            tier: 0,
            clock_start: 0,
            clock_end: 500,
            payload_len: 48,
        }];
        let mut file = vec![0xAAu8; 100];
        file.extend_from_slice(&encode_footer(&entries));
        let len = file.len();
        assert!(parse_footer(2, &file).is_some());
        // A flipped length field must fall through to the torn-footer
        // path — for every undersized and oversized value.
        for bad in [0u32, 3, 5, 7, 12, 19, len as u32 + 1, u32::MAX] {
            let mut f = file.clone();
            f[len - 8..len - 4].copy_from_slice(&bad.to_le_bytes());
            assert!(parse_footer(2, &f).is_none(), "footer_len {bad}");
        }
    }

    #[test]
    fn reopening_a_sealed_last_segment_rolls_to_a_fresh_one() {
        // Simulate the crash window inside seal_locked: the footer and
        // the journal's seal entry are on disk, but the successor
        // segment was never created. Reopening must not append past
        // the footer (the next recovery would discard everything after
        // it) — it must roll to a fresh segment id.
        let dir = scratch_dir("store-seal-crash");
        let t = Telemetry::disabled();
        let (h, _) = Historian::open(&dir, StoreConfig::default(), &t).unwrap();
        let (raw, cal) = lanes(300, 0.0);
        for k in 0..3 {
            h.append(1, 1, k * 300, 1000.0, &raw, &cal).unwrap();
        }
        h.seal_active().unwrap();
        drop(h);
        let segs = list_segments(&dir).unwrap();
        assert_eq!(segs.keys().copied().collect::<Vec<_>>(), vec![0, 1]);
        fs::remove_file(&segs[&1]).unwrap();
        let sealed_len = fs::metadata(&segs[&0]).unwrap().len();

        // Journal-sealed path: the seal entry alone marks segment 0.
        let (h2, rep) = Historian::open(&dir, StoreConfig::default(), &t).unwrap();
        assert_eq!(rep.records, 3);
        assert_eq!(rep.truncated_segments, 0);
        h2.append(1, 1, 900, 1000.0, &raw, &cal).unwrap();
        drop(h2);
        let segs = list_segments(&dir).unwrap();
        assert_eq!(segs.keys().copied().collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(
            fs::metadata(&segs[&0]).unwrap().len(),
            sealed_len,
            "sealed segment must not grow"
        );
        let (h3, rep) = Historian::open(&dir, StoreConfig::default(), &t).unwrap();
        assert_eq!(rep.records, 4);
        assert_eq!(rep.truncated_segments, 0);
        let wave = h3.reader().read_tier(1, 1, 0, 0, 1200).unwrap();
        assert_eq!(wave.points.len(), 1200);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn footer_scan_alone_detects_a_sealed_last_segment() {
        // Same crash window as above, but with the journal lost too:
        // recovery must detect the seal from the footer scan.
        let dir = scratch_dir("store-seal-scan");
        let t = Telemetry::disabled();
        let (h, _) = Historian::open(&dir, StoreConfig::default(), &t).unwrap();
        let (raw, cal) = lanes(300, 0.0);
        for k in 0..3 {
            h.append(1, 1, k * 300, 1000.0, &raw, &cal).unwrap();
        }
        h.seal_active().unwrap();
        drop(h);
        let segs = list_segments(&dir).unwrap();
        fs::remove_file(&segs[&1]).unwrap();
        fs::remove_file(journal_path(&dir)).unwrap();
        let (h2, rep) = Historian::open(&dir, StoreConfig::default(), &t).unwrap();
        assert_eq!(rep.records, 3);
        assert_eq!(rep.truncated_segments, 0);
        h2.append(1, 1, 900, 1000.0, &raw, &cal).unwrap();
        drop(h2);
        let (h3, rep) = Historian::open(&dir, StoreConfig::default(), &t).unwrap();
        assert_eq!(rep.records, 4);
        assert_eq!(rep.truncated_segments, 0);
        let wave = h3.reader().read_tier(1, 1, 0, 0, 1200).unwrap();
        assert_eq!(wave.points.len(), 1200);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn oversized_append_is_rejected_before_touching_disk() {
        let dir = scratch_dir("store-cap");
        let t = Telemetry::disabled();
        let (h, _) = Historian::open(&dir, StoreConfig::default(), &t).unwrap();
        // Enough samples that the encoded payload exceeds MAX_PAYLOAD.
        let n = MAX_PAYLOAD as usize / 16 + 1024;
        let raw = vec![0.0f64; n];
        let cal = vec![MillimetersHg(0.0); n];
        let err = h.append(1, 1, 0, 1000.0, &raw, &cal).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(h.snapshot().is_empty());
        assert_eq!(
            fs::metadata(seg_path(&dir, 0)).unwrap().len(),
            SEG_HEADER_LEN,
            "nothing may reach the segment file"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tier_reads_honor_the_half_open_range_on_unaligned_bounds() {
        let dir = scratch_dir("store-tier-bounds");
        let t = Telemetry::disabled();
        let (h, _) = Historian::open(&dir, StoreConfig::default(), &t).unwrap();
        let (raw, cal) = lanes(64, 0.0);
        // Tier-1 record: clocks 0, 16, …, 1008.
        h.append_tier(1, 1, 1, 0, 62.5, &raw, &cal).unwrap();
        let r = h.reader();
        let wave = r.read_tier(1, 1, 1, 5, 100).unwrap();
        assert!(wave.points.iter().all(|p| p.clock >= 5 && p.clock < 100));
        assert_eq!(wave.points.first().map(|p| p.clock), Some(16));
        assert_eq!(wave.points.len(), 6);
        // Aligned bounds are unchanged.
        let wave = r.read_tier(1, 1, 1, 0, 160).unwrap();
        assert_eq!(wave.points.len(), 10);
        assert_eq!(wave.points[0].clock, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_tail_is_recovered_and_survivors_are_bit_identical() {
        let dir = scratch_dir("store-crash");
        let t = Telemetry::disabled();
        let (h, _) = Historian::open(&dir, StoreConfig::default(), &t).unwrap();
        let (raw, cal) = lanes(300, 0.0);
        for k in 0..5 {
            h.append(1, 9, k * 300, 1000.0, &raw, &cal).unwrap();
        }
        let survivors = h.reader().read_tier(1, 9, 0, 0, 1200).unwrap();
        drop(h);
        // Tear the last record mid-payload.
        let segs = list_segments(&dir).unwrap();
        let (_, path) = segs.iter().next_back().unwrap();
        let len = fs::metadata(path).unwrap().len();
        let f = OpenOptions::new().write(true).open(path).unwrap();
        f.set_len(len - 100).unwrap();
        drop(f);
        let (h2, rep) = Historian::open(&dir, StoreConfig::default(), &t).unwrap();
        assert_eq!(rep.truncated_segments, 1);
        assert_eq!(rep.records, 4);
        let after = h2.reader().read_tier(1, 9, 0, 0, 1200).unwrap();
        assert_eq!(after.points, survivors.points);
        // The store keeps appending where the survivors end.
        h2.append(1, 9, 1200, 1000.0, &raw, &cal).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}

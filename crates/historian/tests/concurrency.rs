//! Writers racing readers, and recovery mid-flight: the store's
//! "readers never observe a partially published record" contract,
//! exercised with real threads and a real crash-reopen in the middle
//! of the test.
//!
//! Every sample a writer appends is a pure function of its `(device,
//! clock)`, so any reader can verify any point it is handed without
//! coordination — a torn read, a partially visible record, or a
//! mis-sliced range all surface as a value mismatch.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use tonos_historian::{Historian, StoreConfig};
use tonos_mems::units::MillimetersHg;
use tonos_telemetry::Telemetry;

const WRITERS: u64 = 4;
const READERS: usize = 3;
const RECORDS_PER_WRITER: u64 = 60;
const SAMPLES_PER_RECORD: u64 = 256;

/// The deterministic truth: what sample `clock` of `device` holds.
fn truth(device: u64, clock: u64) -> (f64, f64) {
    let raw = (device * 1_000_000 + clock) as f64;
    (raw, 80.0 + raw * 1e-7)
}

fn spawn_writer(h: Historian, device: u64) -> thread::JoinHandle<()> {
    thread::spawn(move || {
        for k in 0..RECORDS_PER_WRITER {
            let start = k * SAMPLES_PER_RECORD;
            let raw: Vec<f64> = (0..SAMPLES_PER_RECORD)
                .map(|i| truth(device, start + i).0)
                .collect();
            let cal: Vec<MillimetersHg> = (0..SAMPLES_PER_RECORD)
                .map(|i| MillimetersHg(truth(device, start + i).1))
                .collect();
            h.append(device, 1, start, 1000.0, &raw, &cal)
                .expect("concurrent append");
        }
    })
}

fn spawn_reader(h: Historian, stop: Arc<AtomicBool>, seed: u64) -> thread::JoinHandle<u64> {
    thread::spawn(move || {
        let reader = h.reader();
        let mut verified = 0u64;
        let mut x = seed | 1;
        while !stop.load(Ordering::Relaxed) {
            // Cheap xorshift: pick a device and a range.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let device = x % WRITERS;
            let total = RECORDS_PER_WRITER * SAMPLES_PER_RECORD;
            let from = x % total;
            let to = (from + 1 + (x >> 32) % 2048).min(total);
            let wave = reader
                .read_range(device, 1, from, to, usize::MAX)
                .expect("concurrent ranged read");
            for p in &wave.points {
                let (raw, mmhg) = truth(device, p.clock);
                assert_eq!(p.raw, raw, "device {device} clock {}", p.clock);
                assert_eq!(p.mmhg, mmhg, "device {device} clock {}", p.clock);
                verified += 1;
            }
        }
        verified
    })
}

#[test]
fn writers_race_readers_then_crash_recovery_reopens_mid_test() {
    let dir = tonos_historian::scratch_dir("concurrency");
    let t = Telemetry::disabled();
    // Small segments so the race also crosses seal/roll boundaries.
    let config = StoreConfig {
        segment_bytes: 256 * 1024,
        ..StoreConfig::default()
    };
    let (h, _) = Historian::open(&dir, config, &t).unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..READERS)
        .map(|i| spawn_reader(h.clone(), Arc::clone(&stop), 0x9E37 + i as u64))
        .collect();
    let writers: Vec<_> = (0..WRITERS).map(|d| spawn_writer(h.clone(), d)).collect();
    for w in writers {
        w.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let verified: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
    assert!(verified > 0, "readers never verified a point mid-race");

    // Everything the writers appended is present and correct.
    let total = RECORDS_PER_WRITER * SAMPLES_PER_RECORD;
    for device in 0..WRITERS {
        let wave = h
            .reader()
            .read_tier(device, 1, 0, 0, total)
            .expect("full read");
        assert_eq!(wave.points.len(), total as usize);
    }
    let snapshot_before = h.snapshot().entries().to_vec();
    drop(h);

    // Crash mid-test: tear bytes off the youngest segment, then reopen
    // with fresh reader traffic against the recovered store.
    let mut segs: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| {
            let p = e.unwrap().path();
            p.extension().is_some_and(|x| x == "tseg").then_some(p)
        })
        .collect();
    segs.sort();
    let last = segs.last().unwrap();
    let len = std::fs::metadata(last).unwrap().len();
    let torn = 137.min(len / 2);
    std::fs::OpenOptions::new()
        .write(true)
        .open(last)
        .unwrap()
        .set_len(len - torn)
        .unwrap();

    let (h2, report) = Historian::open(&dir, config, &t).unwrap();
    // Only the torn tail is gone; every surviving record is the one
    // the first instance published, bit for bit.
    assert!(report.records as usize <= snapshot_before.len());
    assert!(report.records as usize >= snapshot_before.len() - 2);
    let survivors = h2.snapshot();
    for e in survivors.entries() {
        let wave = h2
            .reader()
            .read_tier(e.device, e.session, e.tier, e.clock_start, e.clock_end)
            .expect("survivor read");
        assert_eq!(wave.points.len(), e.samples() as usize);
        for p in &wave.points {
            let (raw, mmhg) = truth(e.device, p.clock);
            assert_eq!(p.raw, raw);
            assert_eq!(p.mmhg, mmhg);
        }
    }
    // The recovered store keeps accepting appends and serving readers
    // under race, exactly as before the crash.
    let stop2 = Arc::new(AtomicBool::new(false));
    let post_readers: Vec<_> = (0..READERS)
        .map(|i| spawn_reader(h2.clone(), Arc::clone(&stop2), 0xDEAD + i as u64))
        .collect();
    // A fifth device writes fresh data while the old four are re-read.
    spawn_writer(h2.clone(), WRITERS).join().unwrap();
    stop2.store(true, Ordering::Relaxed);
    for r in post_readers {
        r.join().unwrap();
    }
    let wave = h2
        .reader()
        .read_tier(WRITERS, 1, 0, 0, total)
        .expect("post-recovery read");
    assert_eq!(wave.points.len(), total as usize);
    std::fs::remove_dir_all(&dir).ok();
}

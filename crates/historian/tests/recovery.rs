//! The crash-recovery property from the issue, as a property test:
//! truncate the store's youngest segment at an **arbitrary** byte
//! (and optionally lose the index journal entirely), reopen, and
//!
//! * only the torn tail is lost — every record whose envelope lies
//!   fully below the cut survives,
//! * every survivor reads back bit-identical to what was appended,
//! * the reopened store accepts appends exactly where the survivors
//!   end.

use proptest::prelude::*;
use tonos_historian::{Historian, StoreConfig};
use tonos_mems::units::MillimetersHg;
use tonos_telemetry::Telemetry;

const SAMPLES_PER_RECORD: u64 = 64;

fn truth(clock: u64) -> (f64, f64) {
    let raw = clock as f64 * 0.5 + 3.0;
    (raw, 100.0 + (clock as f64).sin())
}

fn fill(h: &Historian, records: u64) {
    for k in 0..records {
        let start = k * SAMPLES_PER_RECORD;
        let raw: Vec<f64> = (0..SAMPLES_PER_RECORD)
            .map(|i| truth(start + i).0)
            .collect();
        let cal: Vec<MillimetersHg> = (0..SAMPLES_PER_RECORD)
            .map(|i| MillimetersHg(truth(start + i).1))
            .collect();
        h.append(1, 1, start, 1000.0, &raw, &cal).unwrap();
    }
}

fn seg_files(dir: &std::path::Path) -> Vec<std::path::PathBuf> {
    let mut segs: Vec<_> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| {
            let p = e.unwrap().path();
            p.extension().is_some_and(|x| x == "tseg").then_some(p)
        })
        .collect();
    segs.sort();
    segs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn arbitrary_truncation_loses_only_the_torn_tail(
        records in 1u64..20,
        cut_frac in 0.0f64..1.0,
        lose_journal in any::<bool>(),
    ) {
        let dir = tonos_historian::scratch_dir("recovery-prop");
        let t = Telemetry::disabled();
        // Small segments force rolls, so the cut can land in a store
        // with sealed history behind the active segment.
        let config = StoreConfig { segment_bytes: 8 * 1024, ..StoreConfig::default() };
        let (h, _) = Historian::open(&dir, config, &t).unwrap();
        fill(&h, records);
        let published = h.snapshot().entries().to_vec();
        drop(h);

        let segs = seg_files(&dir);
        let last = segs.last().unwrap();
        let last_id: u64 = last
            .file_stem().unwrap().to_str().unwrap()
            .strip_prefix("seg-").unwrap().parse().unwrap();
        let len = std::fs::metadata(last).unwrap().len();
        let cut = (len as f64 * cut_frac) as u64;
        std::fs::OpenOptions::new().write(true).open(last).unwrap()
            .set_len(cut).unwrap();
        if lose_journal {
            // The journal is an optimization, not the truth: recovery
            // must rebuild the same index from the files alone.
            std::fs::remove_file(dir.join("index.jnl")).unwrap();
        }

        let (h2, report) = Historian::open(&dir, config, &t).unwrap();
        // Exactly the records fully below the cut survive; everything
        // in older (sealed) segments is untouched.
        let expected: Vec<_> = published.iter()
            .filter(|e| e.segment != last_id
                || e.offset + e.envelope_len() <= cut)
            .copied()
            .collect();
        let survivors = h2.snapshot();
        prop_assert_eq!(survivors.entries(), expected.as_slice());
        prop_assert_eq!(report.records, expected.len() as u64);

        // Survivors are bit-identical to what was appended.
        let reader = h2.reader();
        for e in survivors.entries() {
            let wave = reader
                .read_tier(e.device, e.session, e.tier, e.clock_start, e.clock_end)
                .expect("survivor read");
            prop_assert_eq!(wave.points.len(), e.samples() as usize);
            for p in &wave.points {
                let (raw, mmhg) = truth(p.clock);
                prop_assert_eq!(p.raw.to_bits(), raw.to_bits());
                prop_assert_eq!(p.mmhg.to_bits(), mmhg.to_bits());
            }
        }

        // The store keeps working: append after the surviving end.
        let resume = survivors.session_span(1, 1).map_or(0, |(_, end)| end);
        let raw: Vec<f64> = (0..SAMPLES_PER_RECORD).map(|i| truth(resume + i).0).collect();
        let cal: Vec<MillimetersHg> =
            (0..SAMPLES_PER_RECORD).map(|i| MillimetersHg(truth(resume + i).1)).collect();
        h2.append(1, 1, resume, 1000.0, &raw, &cal).unwrap();
        let wave = h2.reader()
            .read_tier(1, 1, 0, resume, resume + SAMPLES_PER_RECORD)
            .unwrap();
        prop_assert_eq!(wave.points.len(), SAMPLES_PER_RECORD as usize);
        drop(reader);
        drop(h2);
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! The measurement-session E2E from the issue: `prepare` → `start`
//! over the HTTP API, a real device streaming through a
//! [`FaultyTransport`] into a real [`LinkServer`] wired to the hub's
//! ingest tap, status polled to completion, then a ranged waveform
//! read whose Clean samples match the lossless in-process stream
//! bit for bit.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use tonos_core::config::SystemConfig;
use tonos_historian::{Historian, HubConfig, MeasurementApi, MeasurementHub, StoreConfig};
use tonos_link::{
    DeviceSimulator, FaultConfig, FaultyTransport, GapPolicy, HostPipeline, HostSample,
    LinkCalibration, LinkKey, LinkServer, LinkServerConfig,
};
use tonos_physio::patient::PatientProfile;
use tonos_telemetry::Telemetry;

const DEVICE: u64 = 42;
const DURATION_S: f64 = 1.0;

fn http(addr: SocketAddr, method: &str, target: &str, body: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to api");
    write!(
        stream,
        "{method} {target} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
        body.len(),
    )
    .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let (head, body) = response.split_once("\r\n\r\n").expect("http response");
    (head.to_string(), body.to_string())
}

/// The lossless truth: the identical device stream pushed straight
/// through an in-process pipeline, no wire at all.
fn lossless_samples(config: &SystemConfig, patient: &PatientProfile) -> Vec<HostSample> {
    let mut device = DeviceSimulator::new(config, patient, DURATION_S).unwrap();
    let mut pipe = HostPipeline::new(
        &config.decimator,
        LinkCalibration::identity(),
        GapPolicy::HoldLast,
    )
    .unwrap();
    let mut out = Vec::new();
    while let Some(packet) = device.next_packet().unwrap() {
        pipe.push_bytes(&packet, &mut out);
    }
    out
}

#[test]
fn measurement_session_end_to_end_over_a_faulty_link() {
    let dir = tonos_historian::scratch_dir("lifecycle-e2e");
    let t = Telemetry::disabled();
    let config = SystemConfig::paper_default();
    let patient = PatientProfile::normotensive().with_seed(0x7E57);
    let expected = lossless_samples(&config, &patient);
    assert!(!expected.is_empty());

    // Store + hub + API + ingest server, wired the way a deployment
    // would be: the hub taps the link server, the API fronts the hub.
    let (historian, _) = Historian::open(&dir, StoreConfig::default(), &t).unwrap();
    let hub = MeasurementHub::new(historian, HubConfig::default(), &t);
    let api = MeasurementApi::bind("127.0.0.1:0", hub.clone(), &t).unwrap();
    let key = LinkKey::from_bytes(*b"ward-shared-key!");
    let server = LinkServer::bind_with_tap(
        "127.0.0.1:0",
        LinkServerConfig {
            workers: 2,
            decimator: config.decimator,
            auth_key: Some(key),
            require_auth: true,
            // The client streams fire-and-forget (it never reads the
            // server's NAKs back), so disable the reorder window: a
            // dropped chunk becomes an immediate concealed gap instead
            // of a retransmit wait that EOF would strand.
            reorder_window: 0,
            ..LinkServerConfig::default()
        },
        Some(Arc::new(hub.clone())),
    )
    .unwrap();
    let api_addr = api.local_addr();
    let link_addr = server.local_addr();

    // prepare → start over HTTP.
    let (head, body) = http(api_addr, "POST", "/sessions/prepare", "{\"device\": 42}");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert_eq!(body, "{\"id\":1}");
    let (head, _) = http(api_addr, "POST", "/sessions/1/start", "");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");

    // The device streams through a lossy wire. The first packets (the
    // authenticated hello and the stream head) go through clean so the
    // session routes; after that the transport mangles freely.
    let client = thread::spawn(move || {
        let mut device = DeviceSimulator::new(&config, &patient, DURATION_S)
            .unwrap()
            .with_auth(key, DEVICE, 7);
        let mut transport = FaultyTransport::new(
            FaultConfig {
                bit_flip_per_byte: 5e-5,
                drop_chunk: 0.01,
                ..FaultConfig::clean()
            },
            0xFA17,
        );
        let mut stream = TcpStream::connect(link_addr).unwrap();
        let mut sent = 0u64;
        while let Some(packet) = device.next_packet().unwrap() {
            let wire = if sent < 3 {
                packet
            } else {
                transport.transmit(&packet)
            };
            stream.write_all(&wire).unwrap();
            sent += 1;
        }
        stream.write_all(&transport.flush()).unwrap();
        stream.flush().unwrap();
        // Half-close: signal EOF but keep draining the server's
        // control write-back (the hello ack). Dropping the socket with
        // unread bytes queued would RST the connection and destroy the
        // server's still-buffered ingest data.
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_millis(500)))
            .unwrap();
        let mut sink = [0u8; 1024];
        loop {
            match stream.read(&mut sink) {
                Ok(0) => break,
                Ok(_) => {}
                Err(_) => break,
            }
        }
    });
    client.join().unwrap();

    // Poll status over HTTP until the link close auto-settles the
    // session — the lifecycle a frontend actually runs.
    let deadline = Instant::now() + Duration::from_secs(10);
    let final_body = loop {
        let (_, body) = http(api_addr, "GET", "/sessions/1/status", "");
        if body.contains("\"state\":\"complete\"") {
            break body;
        }
        assert!(
            Instant::now() < deadline,
            "session never completed; last status: {body}"
        );
        thread::sleep(Duration::from_millis(20));
    };
    assert!(final_body.contains("\"device\":42"), "{final_body}");

    // Every Clean sample the store holds is bit-identical to the
    // lossless stream at the same device clock — the link's
    // no-silent-corruption contract carried all the way to disk.
    let snap = hub.historian().snapshot();
    let (from, to) = snap.session_span(DEVICE, 1).expect("session has data");
    let wave = hub
        .historian()
        .reader()
        .read_tier(DEVICE, 1, 0, from, to)
        .unwrap();
    assert!(!wave.points.is_empty());
    let mut clean = 0u64;
    let mut concealed = 0u64;
    for p in &wave.points {
        if p.raw.is_finite() {
            let truth = &expected[p.clock as usize];
            assert_eq!(
                p.mmhg.to_bits(),
                truth.value_mmhg.to_bits(),
                "clean sample at clock {} diverged from lossless",
                p.clock
            );
            clean += 1;
        } else {
            concealed += 1;
        }
    }
    assert!(
        clean > expected.len() as u64 / 2,
        "too few clean samples survived: {clean} clean / {concealed} concealed"
    );

    // The ranged HTTP read is bounded by its point budget regardless
    // of recording length.
    let (_, body) = http(api_addr, "GET", "/sessions/1/waveform?max_points=32", "");
    let points = body.matches("\"clock\":").count();
    assert!(points <= 32, "unbounded waveform read: {points} points");
    assert!(points > 0, "{body}");

    server.shutdown();
    api.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

//! Property-based tests of the physiological models.

use proptest::prelude::*;
use tonos_mems::units::MillimetersHg;
use tonos_physio::cuff::CuffDevice;
use tonos_physio::patient::PressureTransient;
use tonos_physio::variability::{RespiratoryModulation, RrIntervalGenerator};
use tonos_physio::waveform::{ArterialParams, PulseWaveform};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// For any physiological parameter set, the synthesized samples stay
    /// within the diastolic/systolic envelope (plus modulation margins).
    #[test]
    fn waveform_respects_its_envelope(
        sys in 100.0_f64..180.0,
        dia in 50.0_f64..90.0,
        hr in 45.0_f64..160.0,
        seed in any::<u64>(),
    ) {
        prop_assume!(sys > dia + 20.0);
        let params = ArterialParams {
            systolic: MillimetersHg(sys),
            diastolic: MillimetersHg(dia),
            heart_rate_bpm: hr,
            seed,
            ..ArterialParams::normotensive()
        };
        let record = PulseWaveform::new(params).unwrap().record(200.0, 10.0).unwrap();
        let margin = params.respiration.amplitude_mmhg + params.drift_bound_mmhg + 0.5;
        for p in &record.samples {
            prop_assert!(p.value() > dia - margin, "sample {p} below envelope");
            prop_assert!(p.value() < sys + margin, "sample {p} above envelope");
        }
        // Beat truths stay in the envelope too.
        for b in &record.beats {
            prop_assert!(b.systolic.value() <= sys + margin);
            prop_assert!(b.diastolic.value() >= dia - margin);
            prop_assert!(b.systolic > b.diastolic);
        }
    }

    /// Beat count always matches the requested heart rate within a few
    /// percent for long-enough records.
    #[test]
    fn beat_count_matches_rate(hr in 45.0_f64..150.0, seed in any::<u64>()) {
        let params = ArterialParams {
            heart_rate_bpm: hr,
            seed,
            ..ArterialParams::normotensive()
        };
        let record = PulseWaveform::new(params).unwrap().record(100.0, 60.0).unwrap();
        let expected = hr; // beats per 60 s
        let got = record.beats.len() as f64;
        prop_assert!(
            (got - expected).abs() <= expected * 0.06 + 2.0,
            "{got} beats at {hr} bpm"
        );
    }

    /// RR intervals never leave the ±3σ clamp.
    #[test]
    fn rr_is_clamped(hr in 40.0_f64..180.0, sigma in 0.0_f64..0.2, seed in any::<u64>()) {
        let mut gen = RrIntervalGenerator::new(hr, sigma, seed).unwrap();
        let mean = gen.mean_rr();
        for _ in 0..500 {
            let rr = gen.next_rr();
            prop_assert!(rr >= mean * (1.0 - 3.0 * sigma) - 1e-12);
            prop_assert!(rr <= mean * (1.0 + 3.0 * sigma) + 1e-12);
        }
    }

    /// Respiration is bounded by its amplitude for all time.
    #[test]
    fn respiration_is_bounded(rate in 0.05_f64..1.0, amp in 0.0_f64..10.0, t in 0.0_f64..1e4) {
        let r = RespiratoryModulation { rate_hz: rate, amplitude_mmhg: amp };
        prop_assert!(r.at(t).abs() <= amp + 1e-12);
    }

    /// The transient envelope is always within [0, 1] and zero outside
    /// the episode.
    #[test]
    fn transient_envelope_is_unit_bounded(t in -10.0_f64..500.0) {
        let e = PressureTransient::episode();
        let v = e.envelope(t);
        prop_assert!((0.0..=1.0).contains(&v));
        if t < e.onset_s || t > e.onset_s + 2.0 * e.ramp_s + e.hold_s {
            prop_assert_eq!(v, 0.0);
        }
    }

    /// Cuff displays always quantize to the configured step and stay
    /// within a few sigma of the truth.
    #[test]
    fn cuff_quantizes_and_bounds(
        sys in 90.0_f64..200.0,
        dia in 50.0_f64..89.0,
        seed in any::<u64>(),
    ) {
        let mut cuff = CuffDevice::clinical(seed);
        let r = cuff
            .measure(0.0, MillimetersHg(sys), MillimetersHg(dia))
            .unwrap();
        prop_assert_eq!(r.systolic.value() as i64 % 2, 0);
        prop_assert_eq!(r.diastolic.value() as i64 % 2, 0);
        // Gaussian errors: 6 sigma + quantization bound.
        prop_assert!((r.systolic.value() - sys).abs() < 6.0 * 3.0 + 2.0);
        prop_assert!((r.diastolic.value() - dia).abs() < 6.0 * 2.0 + 2.0);
    }

    /// Ectopic beats always carry the PVC signature: premature RR and
    /// reduced pulse pressure relative to the running rhythm.
    #[test]
    fn ectopic_beats_have_the_pvc_signature(rate in 2.0_f64..15.0, seed in any::<u64>()) {
        let params = ArterialParams {
            ectopic_rate_per_min: rate,
            rr_sigma: 0.0,
            seed,
            ..ArterialParams::normotensive()
        };
        let record = PulseWaveform::new(params).unwrap().record(100.0, 60.0).unwrap();
        let nominal_rr = 60.0 / params.heart_rate_bpm;
        let nominal_pulse =
            params.systolic.value() - params.diastolic.value();
        for b in record.beats.iter().filter(|b| b.ectopic) {
            prop_assert!(b.rr_s < 0.8 * nominal_rr, "RR {}", b.rr_s);
            let pulse = b.systolic.value() - b.diastolic.value();
            prop_assert!(pulse < 0.8 * nominal_pulse, "pulse {pulse}");
        }
    }

    /// The normalized beat template is bounded in [0, 1] everywhere.
    #[test]
    fn template_is_normalized(phase in -2.0_f64..3.0) {
        let wave = PulseWaveform::new(ArterialParams::normotensive()).unwrap();
        let v = wave.template(phase);
        // The min/max normalization samples a 4096-point grid, so values
        // between grid points can undershoot by O(1e-7).
        prop_assert!((-1e-6..=1.0 + 1e-6).contains(&v), "template({phase}) = {v}");
    }
}

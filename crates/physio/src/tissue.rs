//! Vessel-to-skin pressure transmission (the tonometric coupling).
//!
//! Paper Fig. 1: the overpressure inside a vessel moves the vessel wall,
//! which displaces the skin surface locally; a force sensor "applied at
//! the right place of the surface" picks that up. Two properties of this
//! coupling shape the system design:
//!
//! 1. transmission is **lossy** — only a fraction of the intra-arterial
//!    pulse reaches the surface, decaying with vessel depth;
//! 2. transmission is **local** — the surface disturbance falls off with
//!    lateral distance from the vessel, which is why the paper uses an
//!    *array* and selects "the sensor element with the strongest signal",
//!    and why the same array "can also be used for localizing blood
//!    vessels, buried in tissue" (§2).
//!
//! The model is a Gaussian surface kernel centered above the vessel with
//! depth-dependent amplitude and width — the standard half-space estimate
//! for a shallow line load.

use tonos_mems::contact::PressureField;
use tonos_mems::units::{Meters, MillimetersHg, Pascals};

use crate::PhysioError;

/// Tissue transmission model between an artery and the skin surface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TissueModel {
    /// Vessel depth below the skin surface.
    depth: Meters,
    /// Lateral position of the vessel axis in chip coordinates (meters),
    /// x across the array, the vessel running along y.
    vessel_x: f64,
    /// Transmission fraction at zero depth.
    surface_coupling: f64,
    /// Depth at which coupling decays by 1/e.
    coupling_depth: Meters,
    /// Minimum lateral kernel width (adds to depth-driven spreading).
    min_width: Meters,
}

impl TissueModel {
    /// Creates a tissue model.
    ///
    /// # Errors
    ///
    /// Returns [`PhysioError::InvalidParameter`] for non-positive depth,
    /// coupling outside (0, 1], or non-positive widths.
    pub fn new(
        depth: Meters,
        vessel_x: f64,
        surface_coupling: f64,
        coupling_depth: Meters,
        min_width: Meters,
    ) -> Result<Self, PhysioError> {
        if !(depth.value() > 0.0) {
            return Err(PhysioError::InvalidParameter(
                "vessel depth must be positive".into(),
            ));
        }
        if !(surface_coupling > 0.0 && surface_coupling <= 1.0) {
            return Err(PhysioError::InvalidParameter(format!(
                "surface coupling {surface_coupling} must be in (0, 1]"
            )));
        }
        if !(coupling_depth.value() > 0.0) || !(min_width.value() > 0.0) {
            return Err(PhysioError::InvalidParameter(
                "coupling depth and kernel width must be positive".into(),
            ));
        }
        if !vessel_x.is_finite() {
            return Err(PhysioError::InvalidParameter(
                "vessel position must be finite".into(),
            ));
        }
        Ok(TissueModel {
            depth,
            vessel_x,
            surface_coupling,
            coupling_depth,
            min_width,
        })
    }

    /// The radial artery at the wrist: ≈ 2.5 mm deep, centered over the
    /// array, 60 % surface transmission with a 4 mm decay depth and a
    /// 0.8 mm minimum kernel width.
    ///
    /// NOTE: the Gaussian width at 2.5 mm depth (millimeters) is much
    /// larger than the 150 µm array pitch, so adjacent elements see
    /// *similar but not identical* pressures — exactly the regime in which
    /// strongest-element selection relaxes placement accuracy (§2).
    pub fn radial_artery() -> Self {
        TissueModel::new(Meters(2.5e-3), 0.0, 0.6, Meters(4.0e-3), Meters(0.8e-3))
            .expect("radial artery preset is valid")
    }

    /// Direct epicardial contact — the paper's invasive scenario: "an
    /// invasive application, e.g., on the beating heart during surgery is
    /// also possible" (§1). The sensor sits on the vessel wall itself:
    /// minimal covering tissue (0.3 mm), near-unity transmission, and a
    /// broad contact kernel.
    pub fn epicardial() -> Self {
        TissueModel::new(Meters(0.3e-3), 0.0, 0.9, Meters(4.0e-3), Meters(0.5e-3))
            .expect("epicardial preset is valid")
    }

    /// Returns a copy with the vessel laterally displaced (meters) — the
    /// localization experiment's sweep knob.
    pub fn with_vessel_offset(mut self, x: f64) -> Self {
        self.vessel_x = x;
        self
    }

    /// Returns a copy with a different vessel depth.
    ///
    /// # Errors
    ///
    /// Returns [`PhysioError::InvalidParameter`] for a non-positive depth.
    pub fn with_depth(self, depth: Meters) -> Result<Self, PhysioError> {
        TissueModel::new(
            depth,
            self.vessel_x,
            self.surface_coupling,
            self.coupling_depth,
            self.min_width,
        )
    }

    /// Vessel depth.
    pub fn depth(&self) -> Meters {
        self.depth
    }

    /// Lateral vessel position in chip coordinates.
    pub fn vessel_x(&self) -> f64 {
        self.vessel_x
    }

    /// Effective transmission at the vessel's epicenter: surface coupling
    /// attenuated by depth.
    pub fn epicenter_coupling(&self) -> f64 {
        self.surface_coupling * (-self.depth.value() / self.coupling_depth.value()).exp()
    }

    /// Lateral 1-sigma width of the surface kernel: the deeper the vessel,
    /// the more the disturbance spreads (`σ ≈ depth/2 + min_width`).
    pub fn kernel_width(&self) -> Meters {
        Meters(self.depth.value() / 2.0 + self.min_width.value())
    }

    /// Surface pressure at lateral position `x` for a given intra-arterial
    /// pressure (the vessel runs along y, so the field is y-invariant).
    pub fn surface_pressure(&self, arterial: MillimetersHg, x: f64) -> Pascals {
        let sigma = self.kernel_width().value();
        let d = x - self.vessel_x;
        let kernel = (-0.5 * (d / sigma) * (d / sigma)).exp();
        Pascals::from_mmhg(arterial) * (self.epicenter_coupling() * kernel)
    }

    /// Builds a [`PressureField`] snapshot for one arterial pressure
    /// value, ready for [`tonos_mems::contact::ContactInterface`].
    pub fn field(&self, arterial: MillimetersHg) -> TissueField {
        TissueField {
            model: *self,
            arterial,
        }
    }
}

/// A frozen surface pressure field at one arterial pressure value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TissueField {
    model: TissueModel,
    arterial: MillimetersHg,
}

impl PressureField for TissueField {
    fn pressure_at(&self, x: f64, _y: f64) -> Pascals {
        self.model.surface_pressure(self.arterial, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epicenter_transmits_the_most() {
        let t = TissueModel::radial_artery();
        let p = MillimetersHg(100.0);
        let center = t.surface_pressure(p, 0.0).value();
        let off = t.surface_pressure(p, 2.0e-3).value();
        let far = t.surface_pressure(p, 10.0e-3).value();
        assert!(center > off);
        assert!(off > far);
        assert!(far < 0.01 * center, "10 mm away is essentially decoupled");
    }

    #[test]
    fn transmission_is_lossy_but_substantial() {
        let t = TissueModel::radial_artery();
        let frac = t.epicenter_coupling();
        assert!(
            (0.2..0.6).contains(&frac),
            "epicenter coupling {frac} out of plausible band"
        );
    }

    #[test]
    fn deeper_vessels_transmit_less_and_spread_more() {
        let shallow = TissueModel::radial_artery();
        let deep = shallow.with_depth(Meters(6.0e-3)).unwrap();
        assert!(deep.epicenter_coupling() < shallow.epicenter_coupling());
        assert!(deep.kernel_width().value() > shallow.kernel_width().value());
    }

    #[test]
    fn epicardial_contact_transmits_far_more_than_the_wrist() {
        let wrist = TissueModel::radial_artery();
        let epi = TissueModel::epicardial();
        assert!(
            epi.epicenter_coupling() > 2.0 * wrist.epicenter_coupling(),
            "epicardial {} vs wrist {}",
            epi.epicenter_coupling(),
            wrist.epicenter_coupling()
        );
        assert!(epi.epicenter_coupling() > 0.7, "near-direct contact");
    }

    #[test]
    fn field_is_linear_in_arterial_pressure() {
        let t = TissueModel::radial_artery();
        let p1 = t.surface_pressure(MillimetersHg(50.0), 1e-3).value();
        let p2 = t.surface_pressure(MillimetersHg(100.0), 1e-3).value();
        assert!((p2 / p1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn vessel_offset_moves_the_peak() {
        let t = TissueModel::radial_artery().with_vessel_offset(1.5e-3);
        let p = MillimetersHg(100.0);
        assert!(t.surface_pressure(p, 1.5e-3) > t.surface_pressure(p, 0.0));
        assert_eq!(t.vessel_x(), 1.5e-3);
    }

    #[test]
    fn array_scale_contrast_exists_but_is_small() {
        // Across the 150 µm pitch the field must differ measurably (for
        // element selection) but not by an order of magnitude.
        let t = TissueModel::radial_artery().with_vessel_offset(-2.0e-3);
        let p = MillimetersHg(100.0);
        let a = t.surface_pressure(p, -75e-6).value();
        let b = t.surface_pressure(p, 75e-6).value();
        assert!(a > b, "element closer to the vessel sees more pressure");
        let contrast = (a - b) / a;
        assert!(
            (1e-4..0.3).contains(&contrast),
            "pitch-scale contrast {contrast}"
        );
    }

    #[test]
    fn field_snapshot_implements_pressure_field() {
        let t = TissueModel::radial_artery();
        let field = t.field(MillimetersHg(120.0));
        let via_field = field.pressure_at(0.5e-3, 123.0);
        let direct = t.surface_pressure(MillimetersHg(120.0), 0.5e-3);
        assert_eq!(via_field, direct, "y must be ignored (vessel along y)");
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(TissueModel::new(Meters(0.0), 0.0, 0.5, Meters(4e-3), Meters(1e-3)).is_err());
        assert!(TissueModel::new(Meters(2e-3), 0.0, 0.0, Meters(4e-3), Meters(1e-3)).is_err());
        assert!(TissueModel::new(Meters(2e-3), 0.0, 1.5, Meters(4e-3), Meters(1e-3)).is_err());
        assert!(TissueModel::new(Meters(2e-3), f64::NAN, 0.5, Meters(4e-3), Meters(1e-3)).is_err());
        assert!(TissueModel::radial_artery()
            .with_depth(Meters(-1.0))
            .is_err());
    }
}

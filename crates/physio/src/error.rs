//! Error type for the physiology substrate.

use std::error::Error;
use std::fmt;

/// Errors produced by the physiological models.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysioError {
    /// A waveform or device parameter was non-physiological.
    InvalidParameter(String),
    /// A cuff measurement was requested before the device finished its
    /// inflation cycle.
    CuffBusy {
        /// Seconds remaining until the device is ready again.
        ready_in_s: f64,
    },
}

impl fmt::Display for PhysioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhysioError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            PhysioError::CuffBusy { ready_in_s } => {
                write!(f, "cuff busy: ready in {ready_in_s:.1} s")
            }
        }
    }
}

impl Error for PhysioError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        assert!(PhysioError::InvalidParameter("heart rate".into())
            .to_string()
            .contains("heart rate"));
        assert!(PhysioError::CuffBusy { ready_in_s: 12.5 }
            .to_string()
            .contains("12.5"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PhysioError>();
    }
}

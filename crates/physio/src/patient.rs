//! Patient presets and measurement scenarios.
//!
//! Bundles [`crate::waveform::ArterialParams`] into named profiles and
//! provides the pressure-transient scenario used by experiment E6 (cuff
//! vs. continuous tracking during a blood-pressure excursion — the
//! situation where beat-to-beat monitoring clinically matters).

use tonos_mems::units::MillimetersHg;

use crate::variability::RespiratoryModulation;
use crate::waveform::{ArterialParams, PulseWaveform, WaveformRecord};
use crate::PhysioError;

/// A named physiological profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PatientProfile {
    /// Profile name for reports.
    pub name: &'static str,
    /// Arterial parameters.
    pub params: ArterialParams,
}

impl PatientProfile {
    /// Healthy resting adult, 120/80 at 72 bpm.
    pub fn normotensive() -> Self {
        PatientProfile {
            name: "normotensive",
            params: ArterialParams::normotensive(),
        }
    }

    /// Stage-2 hypertensive, 165/105 at 80 bpm with reduced variability.
    pub fn hypertensive() -> Self {
        PatientProfile {
            name: "hypertensive",
            params: ArterialParams {
                systolic: MillimetersHg(165.0),
                diastolic: MillimetersHg(105.0),
                heart_rate_bpm: 80.0,
                rr_sigma: 0.02,
                drift_step_mmhg: 0.4,
                drift_bound_mmhg: 6.0,
                seed: 0x481,
                ..ArterialParams::normotensive()
            },
        }
    }

    /// Hypotensive patient, 95/60 at 64 bpm (intensive-care scenario,
    /// the setting of the paper's tonometry reference \[2\]).
    pub fn hypotensive() -> Self {
        PatientProfile {
            name: "hypotensive",
            params: ArterialParams {
                systolic: MillimetersHg(95.0),
                diastolic: MillimetersHg(60.0),
                heart_rate_bpm: 64.0,
                rr_sigma: 0.04,
                seed: 0x4B2,
                ..ArterialParams::normotensive()
            },
        }
    }

    /// Light exercise, 140/75 at 110 bpm, faster breathing, more HRV.
    pub fn exercise() -> Self {
        PatientProfile {
            name: "exercise",
            params: ArterialParams {
                systolic: MillimetersHg(140.0),
                diastolic: MillimetersHg(75.0),
                heart_rate_bpm: 110.0,
                rr_sigma: 0.05,
                respiration: RespiratoryModulation {
                    rate_hz: 0.4,
                    amplitude_mmhg: 3.0,
                },
                drift_step_mmhg: 0.6,
                drift_bound_mmhg: 8.0,
                ectopic_rate_per_min: 0.0,
                seed: 0xE7,
            },
        }
    }

    /// Normotensive patient with frequent premature ventricular
    /// contractions (6 PVC/min) — the rhythm-robustness scenario.
    pub fn arrhythmic() -> Self {
        PatientProfile {
            name: "arrhythmic",
            params: ArterialParams {
                ectopic_rate_per_min: 6.0,
                seed: 0xA44,
                ..ArterialParams::normotensive()
            },
        }
    }

    /// All built-in profiles (for sweep experiments).
    pub fn all() -> Vec<PatientProfile> {
        vec![
            PatientProfile::normotensive(),
            PatientProfile::hypertensive(),
            PatientProfile::hypotensive(),
            PatientProfile::exercise(),
            PatientProfile::arrhythmic(),
        ]
    }

    /// Returns a copy with a different waveform seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.params.seed = seed;
        self
    }

    /// Synthesizes a recording for this profile.
    ///
    /// # Errors
    ///
    /// Propagates waveform validation/synthesis errors.
    pub fn record(&self, sample_rate: f64, duration_s: f64) -> Result<WaveformRecord, PhysioError> {
        PulseWaveform::new(self.params)?.record(sample_rate, duration_s)
    }
}

/// A blood-pressure excursion scenario: baseline, a linear climb, a
/// plateau, and recovery — the textbook situation where a 30-second cuff
/// misses the event a continuous monitor catches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PressureTransient {
    /// Baseline profile.
    pub profile: PatientProfile,
    /// Time the excursion starts, seconds.
    pub onset_s: f64,
    /// Ramp duration to the plateau, seconds.
    pub ramp_s: f64,
    /// Plateau duration, seconds.
    pub hold_s: f64,
    /// Systolic excursion magnitude, mmHg.
    pub sys_delta: MillimetersHg,
    /// Diastolic excursion magnitude, mmHg.
    pub dia_delta: MillimetersHg,
}

impl PressureTransient {
    /// A hypertensive episode: +35/+15 mmHg climbing over 20 s, holding
    /// 30 s, recovering over 20 s, starting at t = 60 s.
    pub fn episode() -> Self {
        PressureTransient {
            profile: PatientProfile::normotensive(),
            onset_s: 60.0,
            ramp_s: 20.0,
            hold_s: 30.0,
            sys_delta: MillimetersHg(35.0),
            dia_delta: MillimetersHg(15.0),
        }
    }

    /// The excursion envelope at time `t` in [0, 1].
    pub fn envelope(&self, t: f64) -> f64 {
        let t0 = self.onset_s;
        let t1 = t0 + self.ramp_s;
        let t2 = t1 + self.hold_s;
        let t3 = t2 + self.ramp_s;
        if t < t0 {
            0.0
        } else if t < t1 {
            (t - t0) / self.ramp_s
        } else if t < t2 {
            1.0
        } else if t < t3 {
            1.0 - (t - t2) / self.ramp_s
        } else {
            0.0
        }
    }

    /// Synthesizes the scenario recording.
    ///
    /// # Errors
    ///
    /// Propagates waveform validation/synthesis errors.
    pub fn record(&self, sample_rate: f64, duration_s: f64) -> Result<WaveformRecord, PhysioError> {
        let base = self.profile.params;
        let wave = PulseWaveform::new(base)?;
        wave.record_with_trend(sample_rate, duration_s, |t| {
            let e = self.envelope(t);
            (
                MillimetersHg(base.systolic.value() + e * self.sys_delta.value()),
                MillimetersHg(base.diastolic.value() + e * self.dia_delta.value()),
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_synthesize() {
        for profile in PatientProfile::all() {
            let r = profile.record(250.0, 5.0).unwrap();
            assert_eq!(r.samples.len(), 1250, "{}", profile.name);
            assert!(!r.beats.is_empty(), "{}", profile.name);
        }
    }

    #[test]
    fn profiles_differ_in_rate_and_pressure() {
        let normo = PatientProfile::normotensive().record(250.0, 30.0).unwrap();
        let hyper = PatientProfile::hypertensive().record(250.0, 30.0).unwrap();
        let exercise = PatientProfile::exercise().record(250.0, 30.0).unwrap();
        assert!(hyper.mean_pressure().value() > normo.mean_pressure().value() + 20.0);
        assert!(exercise.mean_heart_rate_bpm() > normo.mean_heart_rate_bpm() + 25.0);
    }

    #[test]
    fn with_seed_changes_the_realization_only() {
        let a = PatientProfile::normotensive().record(250.0, 5.0).unwrap();
        let b = PatientProfile::normotensive()
            .with_seed(123)
            .record(250.0, 5.0)
            .unwrap();
        assert_ne!(a, b);
        // Same targets though.
        assert!((a.mean_pressure().value() - b.mean_pressure().value()).abs() < 4.0);
    }

    #[test]
    fn transient_envelope_shape() {
        let t = PressureTransient::episode();
        assert_eq!(t.envelope(0.0), 0.0);
        assert_eq!(t.envelope(59.9), 0.0);
        assert!((t.envelope(70.0) - 0.5).abs() < 1e-12, "mid-ramp");
        assert_eq!(t.envelope(85.0), 1.0, "plateau");
        assert!((t.envelope(120.0) - 0.5).abs() < 1e-12, "mid-recovery");
        assert_eq!(t.envelope(200.0), 0.0, "recovered");
    }

    #[test]
    fn transient_recording_shows_the_excursion() {
        let scenario = PressureTransient::episode();
        let r = scenario.record(100.0, 160.0).unwrap();
        // Beats during the plateau carry elevated pressure.
        let plateau: Vec<_> = r
            .beats
            .iter()
            .filter(|b| b.onset_s > 85.0 && b.onset_s < 105.0)
            .collect();
        let baseline: Vec<_> = r.beats.iter().filter(|b| b.onset_s < 50.0).collect();
        assert!(!plateau.is_empty() && !baseline.is_empty());
        let mean = |v: &[&crate::waveform::BeatTruth]| {
            v.iter().map(|b| b.systolic.value()).sum::<f64>() / v.len() as f64
        };
        let lift = mean(&plateau) - mean(&baseline);
        assert!((lift - 35.0).abs() < 5.0, "systolic lift {lift}");
    }
}

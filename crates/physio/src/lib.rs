//! # tonos-physio — physiological pressure sources and the cuff baseline
//!
//! The DATE'05 tactile sensor measures "the displacement of a surface
//! caused by the movement of a blood vessel wall, due to its overpressure
//! inside" — tonometry (paper §1/§2, Fig. 1). Reproducing the paper's
//! blood-pressure experiment (Fig. 9) therefore needs three things the
//! authors got from a test person's wrist and a conventional hand-cuff
//! device, none of which a simulation has:
//!
//! * an **arterial pressure source** — [`waveform`] synthesizes beat-by-beat
//!   radial-artery pressure with controlled systolic/diastolic targets,
//!   heart-rate variability ([`variability`]), and motion artifacts
//!   ([`artifact`]); every beat's ground truth is recorded so calibration
//!   error can be quantified (the paper could only eyeball this);
//! * a **tissue transmission model** — [`tissue`] maps intra-arterial
//!   pressure to the skin-surface pressure field above the vessel, with
//!   spatial falloff (which is what makes the 2×2 *array* and the
//!   strongest-element selection of §2 meaningful);
//! * the **hand-cuff reference** — [`cuff`] simulates the sparse, quantized
//!   oscillometric readings used both as the paper's calibration source
//!   and as the baseline modality the introduction argues against.
//!
//! [`patient`] bundles presets (normotensive, hypertensive, exercise, …).
//!
//! ## Example
//!
//! ```
//! use tonos_physio::patient::PatientProfile;
//!
//! # fn main() -> Result<(), tonos_physio::PhysioError> {
//! let record = PatientProfile::normotensive().record(250.0, 10.0)?;
//! assert_eq!(record.samples.len(), 2500);
//! assert!(record.beats.len() >= 10, "about 12 beats in 10 s at 72 bpm");
//! # Ok(())
//! # }
//! ```

pub mod artifact;
pub mod cuff;
pub mod patient;
pub mod tissue;
pub mod variability;
pub mod waveform;

mod error;

pub use error::PhysioError;

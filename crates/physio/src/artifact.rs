//! Motion and probe artifacts.
//!
//! Wrist tonometry is notoriously sensitive to motion: a wrist flex or a
//! probe slip injects pressure excursions far larger than the pulse. The
//! paper's outlook explicitly calls for field tests of "reliability and
//! stability" — this module provides the controlled failure-injection
//! those tests need in simulation: exponentially-decaying motion spikes
//! and persistent probe-pressure steps at seeded random times.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use tonos_mems::units::MillimetersHg;

use crate::PhysioError;

/// One injected artifact event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArtifactEvent {
    /// Onset time in seconds.
    pub onset_s: f64,
    /// Peak magnitude in mmHg (signed).
    pub magnitude: MillimetersHg,
    /// Event kind.
    pub kind: ArtifactKind,
}

/// The artifact classes seen in wrist measurements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactKind {
    /// A transient bump that decays exponentially (wrist motion);
    /// time constant ≈ 0.3 s.
    MotionSpike,
    /// A persistent change in hold-down pressure (probe shifted).
    ProbeShift,
}

/// Seeded artifact generator producing an additive mmHg track.
#[derive(Debug, Clone)]
pub struct ArtifactGenerator {
    /// Mean event rate in events per second.
    rate_hz: f64,
    /// Peak magnitude scale in mmHg.
    magnitude_mmhg: f64,
    seed: u64,
}

/// Decay time constant of a motion spike, seconds.
const SPIKE_TAU_S: f64 = 0.3;

impl ArtifactGenerator {
    /// Creates a generator.
    ///
    /// # Errors
    ///
    /// Returns [`PhysioError::InvalidParameter`] for negative rate or
    /// magnitude.
    pub fn new(rate_hz: f64, magnitude_mmhg: f64, seed: u64) -> Result<Self, PhysioError> {
        if rate_hz < 0.0 || magnitude_mmhg < 0.0 {
            return Err(PhysioError::InvalidParameter(
                "artifact rate and magnitude must be non-negative".into(),
            ));
        }
        Ok(ArtifactGenerator {
            rate_hz,
            magnitude_mmhg,
            seed,
        })
    }

    /// A generator that never fires.
    pub fn none() -> Self {
        ArtifactGenerator {
            rate_hz: 0.0,
            magnitude_mmhg: 0.0,
            seed: 0,
        }
    }

    /// Draws the event schedule for a recording of `duration_s` seconds
    /// (Poisson arrivals, 80 % motion spikes / 20 % probe shifts, signed
    /// magnitudes uniform in ±[0.5, 1.0]·scale).
    pub fn events(&self, duration_s: f64) -> Vec<ArtifactEvent> {
        if self.rate_hz == 0.0 || duration_s <= 0.0 {
            return Vec::new();
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut events = Vec::new();
        let mut t = 0.0;
        loop {
            // Exponential inter-arrival times.
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            t += -u.ln() / self.rate_hz;
            if t >= duration_s {
                break;
            }
            let kind = if rng.gen_range(0.0..1.0) < 0.8 {
                ArtifactKind::MotionSpike
            } else {
                ArtifactKind::ProbeShift
            };
            let sign = if rng.gen_range(0.0..1.0) < 0.5 {
                1.0
            } else {
                -1.0
            };
            let mag = sign * self.magnitude_mmhg * rng.gen_range(0.5..1.0);
            events.push(ArtifactEvent {
                onset_s: t,
                magnitude: MillimetersHg(mag),
                kind,
            });
        }
        events
    }

    /// Renders the additive artifact track for a recording.
    pub fn track(&self, sample_rate: f64, duration_s: f64) -> Vec<MillimetersHg> {
        let n = (sample_rate * duration_s).round().max(0.0) as usize;
        let mut out = vec![0.0_f64; n];
        for event in self.events(duration_s) {
            let i0 = (event.onset_s * sample_rate) as usize;
            match event.kind {
                ArtifactKind::MotionSpike => {
                    for (i, v) in out.iter_mut().enumerate().skip(i0) {
                        let dt = (i - i0) as f64 / sample_rate;
                        let contrib = event.magnitude.value() * (-dt / SPIKE_TAU_S).exp();
                        if contrib.abs() < 1e-6 {
                            break;
                        }
                        *v += contrib;
                    }
                }
                ArtifactKind::ProbeShift => {
                    for v in out.iter_mut().skip(i0) {
                        *v += event.magnitude.value();
                    }
                }
            }
        }
        out.into_iter().map(MillimetersHg).collect()
    }

    /// Adds the artifact track to an existing sample buffer in place.
    pub fn apply(&self, samples: &mut [MillimetersHg], sample_rate: f64) {
        let duration = samples.len() as f64 / sample_rate;
        for (s, a) in samples.iter_mut().zip(self.track(sample_rate, duration)) {
            *s += a;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_generator_is_silent() {
        let g = ArtifactGenerator::none();
        assert!(g.events(100.0).is_empty());
        let track = g.track(100.0, 10.0);
        assert!(track.iter().all(|v| v.value() == 0.0));
    }

    #[test]
    fn event_rate_is_approximately_poisson() {
        let g = ArtifactGenerator::new(0.5, 20.0, 3).unwrap();
        let events = g.events(2000.0);
        let rate = events.len() as f64 / 2000.0;
        assert!((rate - 0.5).abs() < 0.05, "rate {rate}");
        // Both kinds occur, with spikes the majority.
        let spikes = events
            .iter()
            .filter(|e| e.kind == ArtifactKind::MotionSpike)
            .count();
        assert!(spikes * 2 > events.len(), "spikes should dominate");
        assert!(spikes < events.len(), "shifts must occur too");
    }

    #[test]
    fn events_are_deterministic_per_seed() {
        let a = ArtifactGenerator::new(0.2, 10.0, 7).unwrap().events(100.0);
        let b = ArtifactGenerator::new(0.2, 10.0, 7).unwrap().events(100.0);
        assert_eq!(a, b);
        let c = ArtifactGenerator::new(0.2, 10.0, 8).unwrap().events(100.0);
        assert_ne!(a, c);
    }

    #[test]
    fn motion_spikes_decay_and_shifts_persist() {
        // Construct a track from a known schedule by using a rate that
        // produces at least one of each kind, then verify the end-of-track
        // residue equals the sum of shift magnitudes only.
        let g = ArtifactGenerator::new(0.3, 15.0, 5).unwrap();
        let duration = 120.0;
        let fs = 50.0;
        let events = g.events(duration);
        assert!(!events.is_empty());
        let track = g.track(fs, duration);
        let shift_sum: f64 = events
            .iter()
            .filter(|e| e.kind == ArtifactKind::ProbeShift)
            .map(|e| e.magnitude.value())
            .sum();
        // Residual of last sample ≈ shift sum + negligible spike tails
        // (only spikes in the last ~2 s contribute).
        let last = track.last().unwrap().value();
        let late_spike_bound: f64 = events
            .iter()
            .filter(|e| e.kind == ArtifactKind::MotionSpike && e.onset_s > duration - 3.0)
            .map(|e| e.magnitude.value().abs())
            .sum();
        assert!(
            (last - shift_sum).abs() <= late_spike_bound + 0.2,
            "residual {last} vs shifts {shift_sum}"
        );
    }

    #[test]
    fn apply_adds_in_place() {
        let g = ArtifactGenerator::new(1.0, 30.0, 11).unwrap();
        let fs = 100.0;
        let mut samples = vec![MillimetersHg(100.0); 1000];
        g.apply(&mut samples, fs);
        let track = g.track(fs, 10.0);
        for (s, a) in samples.iter().zip(&track) {
            assert!((s.value() - 100.0 - a.value()).abs() < 1e-12);
        }
        // At least one sample visibly disturbed.
        assert!(samples.iter().any(|s| (s.value() - 100.0).abs() > 5.0));
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(ArtifactGenerator::new(-1.0, 10.0, 0).is_err());
        assert!(ArtifactGenerator::new(1.0, -10.0, 0).is_err());
    }
}

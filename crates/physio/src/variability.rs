//! Beat-to-beat and slow physiological variability.
//!
//! Real arterial pressure is not periodic: the RR interval jitters
//! (heart-rate variability), respiration modulates the baseline by a few
//! mmHg, and slow regulation drifts the operating point over minutes.
//! These generators supply that structure to [`crate::waveform`]; all are
//! seeded and deterministic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::PhysioError;

/// Gaussian-jittered RR-interval generator.
#[derive(Debug, Clone)]
pub struct RrIntervalGenerator {
    mean_rr_s: f64,
    sigma_fraction: f64,
    rng: StdRng,
}

impl RrIntervalGenerator {
    /// Creates a generator from a heart rate in beats/minute and a
    /// relative 1-sigma RR jitter (e.g. 0.03 = 3 %).
    ///
    /// # Errors
    ///
    /// Returns [`PhysioError::InvalidParameter`] for a heart rate outside
    /// 20..=250 bpm or a negative/large (> 0.3) jitter fraction.
    pub fn new(heart_rate_bpm: f64, sigma_fraction: f64, seed: u64) -> Result<Self, PhysioError> {
        if !(20.0..=250.0).contains(&heart_rate_bpm) {
            return Err(PhysioError::InvalidParameter(format!(
                "heart rate {heart_rate_bpm} bpm outside 20..=250"
            )));
        }
        if !(0.0..=0.3).contains(&sigma_fraction) {
            return Err(PhysioError::InvalidParameter(format!(
                "RR jitter fraction {sigma_fraction} outside 0..=0.3"
            )));
        }
        Ok(RrIntervalGenerator {
            mean_rr_s: 60.0 / heart_rate_bpm,
            sigma_fraction,
            rng: StdRng::seed_from_u64(seed),
        })
    }

    /// Mean RR interval in seconds.
    pub fn mean_rr(&self) -> f64 {
        self.mean_rr_s
    }

    /// Draws the next RR interval in seconds (clamped to ±3 sigma so a
    /// tail sample can never produce a non-physiological interval).
    pub fn next_rr(&mut self) -> f64 {
        let g = gaussian(&mut self.rng).clamp(-3.0, 3.0);
        self.mean_rr_s * (1.0 + self.sigma_fraction * g)
    }
}

/// Sinusoidal respiratory modulation of the pressure baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RespiratoryModulation {
    /// Breathing rate in Hz (≈ 0.2–0.3 for an adult at rest).
    pub rate_hz: f64,
    /// Peak modulation amplitude in mmHg.
    pub amplitude_mmhg: f64,
}

impl RespiratoryModulation {
    /// Resting adult defaults: 0.25 Hz (15 breaths/min), ±2 mmHg.
    pub fn resting() -> Self {
        RespiratoryModulation {
            rate_hz: 0.25,
            amplitude_mmhg: 2.0,
        }
    }

    /// No modulation.
    pub fn none() -> Self {
        RespiratoryModulation {
            rate_hz: 0.25,
            amplitude_mmhg: 0.0,
        }
    }

    /// The modulation value in mmHg at time `t` (seconds).
    pub fn at(&self, t: f64) -> f64 {
        self.amplitude_mmhg * (2.0 * std::f64::consts::PI * self.rate_hz * t).sin()
    }
}

/// Bounded-random-walk baseline drift (slow autonomic regulation).
#[derive(Debug, Clone)]
pub struct BaselineDrift {
    /// RMS drift step per update, mmHg.
    step_mmhg: f64,
    /// Hard bound on the accumulated drift, mmHg.
    bound_mmhg: f64,
    value: f64,
    rng: StdRng,
}

impl BaselineDrift {
    /// Creates a drift process updated once per heartbeat.
    ///
    /// # Errors
    ///
    /// Returns [`PhysioError::InvalidParameter`] for negative magnitudes.
    pub fn new(step_mmhg: f64, bound_mmhg: f64, seed: u64) -> Result<Self, PhysioError> {
        if step_mmhg < 0.0 || bound_mmhg < 0.0 {
            return Err(PhysioError::InvalidParameter(
                "drift magnitudes must be non-negative".into(),
            ));
        }
        Ok(BaselineDrift {
            step_mmhg,
            bound_mmhg,
            value: 0.0,
            rng: StdRng::seed_from_u64(seed),
        })
    }

    /// Current drift value in mmHg.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Advances the walk one step and returns the new value.
    pub fn step(&mut self) -> f64 {
        self.value += self.step_mmhg * gaussian(&mut self.rng);
        self.value = self.value.clamp(-self.bound_mmhg, self.bound_mmhg);
        self.value
    }
}

/// Standard-normal sample via Box–Muller.
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rr_mean_matches_heart_rate() {
        let mut gen = RrIntervalGenerator::new(72.0, 0.03, 1).unwrap();
        assert!((gen.mean_rr() - 60.0 / 72.0).abs() < 1e-12);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| gen.next_rr()).sum::<f64>() / n as f64;
        assert!((mean - gen.mean_rr()).abs() < 0.002, "mean RR {mean}");
    }

    #[test]
    fn rr_jitter_scales_with_sigma() {
        let spread = |sigma: f64| {
            let mut gen = RrIntervalGenerator::new(60.0, sigma, 2).unwrap();
            let xs: Vec<f64> = (0..5000).map(|_| gen.next_rr()).collect();
            let m = xs.iter().sum::<f64>() / xs.len() as f64;
            (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
        };
        let s_small = spread(0.01);
        let s_big = spread(0.05);
        assert!(s_big > 3.0 * s_small, "{s_big} vs {s_small}");
        // Zero jitter is strictly periodic.
        let mut fixed = RrIntervalGenerator::new(60.0, 0.0, 3).unwrap();
        assert_eq!(fixed.next_rr(), 1.0);
        assert_eq!(fixed.next_rr(), 1.0);
    }

    #[test]
    fn rr_intervals_stay_physiological() {
        let mut gen = RrIntervalGenerator::new(72.0, 0.1, 4).unwrap();
        for _ in 0..10_000 {
            let rr = gen.next_rr();
            assert!(rr > 0.4 && rr < 1.4, "RR {rr} out of band");
        }
    }

    #[test]
    fn rr_validation() {
        assert!(RrIntervalGenerator::new(10.0, 0.0, 0).is_err());
        assert!(RrIntervalGenerator::new(300.0, 0.0, 0).is_err());
        assert!(RrIntervalGenerator::new(70.0, 0.5, 0).is_err());
        assert!(RrIntervalGenerator::new(70.0, -0.1, 0).is_err());
    }

    #[test]
    fn respiration_is_a_bounded_sinusoid() {
        let r = RespiratoryModulation::resting();
        let mut peak = 0.0_f64;
        for i in 0..1000 {
            let v = r.at(i as f64 * 0.01);
            assert!(v.abs() <= r.amplitude_mmhg + 1e-12);
            peak = peak.max(v.abs());
        }
        assert!(peak > 0.9 * r.amplitude_mmhg);
        assert_eq!(RespiratoryModulation::none().at(1.23), 0.0);
        // Period check: value repeats after 1/rate.
        let t = 0.37;
        assert!((r.at(t) - r.at(t + 1.0 / r.rate_hz)).abs() < 1e-9);
    }

    #[test]
    fn drift_is_bounded_and_deterministic() {
        let mut a = BaselineDrift::new(0.5, 5.0, 9).unwrap();
        let mut b = BaselineDrift::new(0.5, 5.0, 9).unwrap();
        for _ in 0..10_000 {
            let va = a.step();
            assert_eq!(va, b.step());
            assert!(va.abs() <= 5.0);
        }
        // It actually moves.
        assert!(a.value().abs() > 0.0);
    }

    #[test]
    fn zero_drift_stays_zero() {
        let mut d = BaselineDrift::new(0.0, 5.0, 0).unwrap();
        for _ in 0..100 {
            assert_eq!(d.step(), 0.0);
        }
    }

    #[test]
    fn drift_validation() {
        assert!(BaselineDrift::new(-0.1, 5.0, 0).is_err());
        assert!(BaselineDrift::new(0.1, -5.0, 0).is_err());
    }
}

//! Oscillometric hand-cuff simulator — the paper's baseline modality and
//! calibration source.
//!
//! The introduction's case against cuffs: "external methods based on hand
//! cuffs … are only able to accomplish single measurements", so "the
//! continuous recording of a blood pressure waveform is not possible"
//! (§1). Yet the cuff is also indispensable to the paper: Fig. 9's
//! absolute scale comes from "measuring the systolic and diastolic
//! pressure with a conventional hand cuff device" (§3.2).
//!
//! The simulator reproduces both roles: sparse readings (an inflation
//! cycle takes ~30 s and cannot be repeated immediately), oscillometric
//! estimation error (a few mmHg, worse for systolic), and the 2 mmHg
//! display quantization of clinical devices.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use tonos_mems::units::MillimetersHg;

use crate::waveform::WaveformRecord;
use crate::PhysioError;

/// One cuff measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CuffReading {
    /// Time at which the reading completed, seconds.
    pub time_s: f64,
    /// Displayed systolic pressure.
    pub systolic: MillimetersHg,
    /// Displayed diastolic pressure.
    pub diastolic: MillimetersHg,
}

impl CuffReading {
    /// Mean arterial pressure estimate (diastolic + pulse pressure / 3).
    pub fn mean_arterial(&self) -> MillimetersHg {
        MillimetersHg(
            self.diastolic.value() + (self.systolic.value() - self.diastolic.value()) / 3.0,
        )
    }
}

/// A conventional oscillometric cuff device.
#[derive(Debug, Clone)]
pub struct CuffDevice {
    /// Full inflate–deflate cycle time, seconds.
    cycle_s: f64,
    /// 1-sigma systolic estimation error, mmHg.
    sys_sigma: f64,
    /// 1-sigma diastolic estimation error, mmHg.
    dia_sigma: f64,
    /// Display quantization step, mmHg.
    quantization: f64,
    rng: StdRng,
    /// Time the device becomes ready again.
    ready_at_s: f64,
}

impl CuffDevice {
    /// Creates a cuff device.
    ///
    /// # Errors
    ///
    /// Returns [`PhysioError::InvalidParameter`] for non-positive cycle
    /// time or quantization, or negative error sigmas.
    pub fn new(
        cycle_s: f64,
        sys_sigma: f64,
        dia_sigma: f64,
        quantization: f64,
        seed: u64,
    ) -> Result<Self, PhysioError> {
        if !(cycle_s > 0.0) {
            return Err(PhysioError::InvalidParameter(
                "cuff cycle time must be positive".into(),
            ));
        }
        if sys_sigma < 0.0 || dia_sigma < 0.0 {
            return Err(PhysioError::InvalidParameter(
                "error sigmas must be non-negative".into(),
            ));
        }
        if !(quantization > 0.0) {
            return Err(PhysioError::InvalidParameter(
                "display quantization must be positive".into(),
            ));
        }
        Ok(CuffDevice {
            cycle_s,
            sys_sigma,
            dia_sigma,
            quantization,
            rng: StdRng::seed_from_u64(seed),
            ready_at_s: 0.0,
        })
    }

    /// A typical clinical automatic cuff: 30 s cycle, ±3 mmHg systolic /
    /// ±2 mmHg diastolic error, 2 mmHg (even-number) display.
    pub fn clinical(seed: u64) -> Self {
        CuffDevice::new(30.0, 3.0, 2.0, 2.0, seed).expect("clinical preset is valid")
    }

    /// An idealized error-free cuff (still sparse and quantized at
    /// 1 mmHg) for analytic tests.
    pub fn ideal(seed: u64) -> Self {
        CuffDevice::new(30.0, 0.0, 0.0, 1.0, seed).expect("ideal preset is valid")
    }

    /// Full cycle time in seconds.
    pub fn cycle_time(&self) -> f64 {
        self.cycle_s
    }

    /// Takes a measurement at time `time_s` against the true pressures.
    ///
    /// # Errors
    ///
    /// Returns [`PhysioError::CuffBusy`] when called before the previous
    /// inflation cycle completed.
    pub fn measure(
        &mut self,
        time_s: f64,
        true_systolic: MillimetersHg,
        true_diastolic: MillimetersHg,
    ) -> Result<CuffReading, PhysioError> {
        if time_s < self.ready_at_s {
            return Err(PhysioError::CuffBusy {
                ready_in_s: self.ready_at_s - time_s,
            });
        }
        self.ready_at_s = time_s + self.cycle_s;
        let sys = true_systolic.value() + self.sys_sigma * gaussian(&mut self.rng);
        let dia = true_diastolic.value() + self.dia_sigma * gaussian(&mut self.rng);
        Ok(CuffReading {
            time_s: time_s + self.cycle_s,
            systolic: MillimetersHg(self.quantize(sys)),
            diastolic: MillimetersHg(self.quantize(dia)),
        })
    }

    /// Monitors a whole recording the way a bedside cuff would: one
    /// measurement per cycle, each reading taken against the true
    /// systolic/diastolic of the beat nearest the measurement time.
    ///
    /// This is the baseline of experiment E6: compare its output density
    /// and tracking against the continuous tonometric waveform.
    pub fn monitor(&mut self, record: &WaveformRecord) -> Vec<CuffReading> {
        let duration = record.samples.len() as f64 / record.sample_rate;
        let mut readings = Vec::new();
        let mut t = 0.0;
        while t + self.cycle_s <= duration {
            // The oscillometric estimate reflects the beats during the
            // deflation, i.e. around t + cycle/2.
            let probe = t + self.cycle_s / 2.0;
            if let Some(beat) = record.beats.iter().min_by(|a, b| {
                (a.onset_s - probe)
                    .abs()
                    .partial_cmp(&(b.onset_s - probe).abs())
                    .expect("finite times")
            }) {
                // measure() cannot be busy here because we step by cycle_s.
                let reading = self
                    .measure(t, beat.systolic, beat.diastolic)
                    .expect("schedule respects the cycle time");
                readings.push(reading);
            }
            t += self.cycle_s;
        }
        readings
    }

    fn quantize(&self, mmhg: f64) -> f64 {
        (mmhg / self.quantization).round() * self.quantization
    }
}

/// Standard-normal sample via Box–Muller.
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waveform::{ArterialParams, PulseWaveform};

    #[test]
    fn ideal_cuff_reads_the_truth_quantized() {
        let mut cuff = CuffDevice::ideal(1);
        let r = cuff
            .measure(0.0, MillimetersHg(119.6), MillimetersHg(80.4))
            .unwrap();
        assert_eq!(r.systolic.value(), 120.0);
        assert_eq!(r.diastolic.value(), 80.0);
        assert!((r.mean_arterial().value() - (80.0 + 40.0 / 3.0)).abs() < 1e-9);
    }

    #[test]
    fn clinical_cuff_quantizes_to_even_mmhg() {
        let mut cuff = CuffDevice::clinical(2);
        for i in 0..20 {
            let r = cuff
                .measure(i as f64 * 30.0, MillimetersHg(121.0), MillimetersHg(79.0))
                .unwrap();
            assert_eq!(r.systolic.value() as i64 % 2, 0, "odd systolic display");
            assert_eq!(r.diastolic.value() as i64 % 2, 0, "odd diastolic display");
        }
    }

    #[test]
    fn cuff_is_busy_during_its_cycle() {
        let mut cuff = CuffDevice::clinical(3);
        cuff.measure(0.0, MillimetersHg(120.0), MillimetersHg(80.0))
            .unwrap();
        let err = cuff
            .measure(10.0, MillimetersHg(120.0), MillimetersHg(80.0))
            .unwrap_err();
        assert!(
            matches!(err, PhysioError::CuffBusy { ready_in_s } if (ready_in_s - 20.0).abs() < 1e-9)
        );
        // Ready again after the cycle.
        assert!(cuff
            .measure(30.0, MillimetersHg(120.0), MillimetersHg(80.0))
            .is_ok());
    }

    #[test]
    fn reading_errors_have_the_configured_spread() {
        let mut cuff = CuffDevice::new(1.0, 3.0, 2.0, 0.001, 5).unwrap();
        let n = 4000;
        let mut sys_err = Vec::with_capacity(n);
        for i in 0..n {
            let r = cuff
                .measure(i as f64, MillimetersHg(120.0), MillimetersHg(80.0))
                .unwrap();
            sys_err.push(r.systolic.value() - 120.0);
        }
        let mean = sys_err.iter().sum::<f64>() / n as f64;
        let std = (sys_err.iter().map(|e| (e - mean) * (e - mean)).sum::<f64>() / n as f64).sqrt();
        assert!(mean.abs() < 0.2, "bias {mean}");
        assert!((std - 3.0).abs() < 0.2, "std {std}");
    }

    #[test]
    fn monitor_produces_sparse_readings_only() {
        let record = PulseWaveform::new(ArterialParams::normotensive())
            .unwrap()
            .record(250.0, 120.0)
            .unwrap();
        let mut cuff = CuffDevice::clinical(9);
        let readings = cuff.monitor(&record);
        // 120 s / 30 s cycle = 4 readings — versus 30_000 waveform samples.
        assert_eq!(readings.len(), 4);
        assert!(record.samples.len() > 1000 * readings.len());
        // All readings in the plausible band around 120/80.
        for r in &readings {
            assert!((r.systolic.value() - 120.0).abs() < 15.0);
            assert!((r.diastolic.value() - 80.0).abs() < 12.0);
            assert!(r.time_s >= 30.0);
        }
    }

    #[test]
    fn monitor_is_deterministic_per_seed() {
        let record = PulseWaveform::new(ArterialParams::normotensive())
            .unwrap()
            .record(100.0, 90.0)
            .unwrap();
        let a = CuffDevice::clinical(4).monitor(&record);
        let b = CuffDevice::clinical(4).monitor(&record);
        assert_eq!(a, b);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(CuffDevice::new(0.0, 1.0, 1.0, 2.0, 0).is_err());
        assert!(CuffDevice::new(30.0, -1.0, 1.0, 2.0, 0).is_err());
        assert!(CuffDevice::new(30.0, 1.0, -1.0, 2.0, 0).is_err());
        assert!(CuffDevice::new(30.0, 1.0, 1.0, 0.0, 0).is_err());
    }
}

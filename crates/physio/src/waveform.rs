//! Arterial pulse-waveform synthesis with per-beat ground truth.
//!
//! Each beat's morphology is a normalized template built from three
//! Gaussian components on the beat phase — the systolic upstroke/peak, the
//! reflected wave, and the dicrotic wave after valve closure — which is
//! the standard compact parameterization of a radial-artery pressure
//! pulse. The template is scaled each beat so its minimum hits the
//! diastolic target and its maximum the systolic target; beat-to-beat
//! variability, respiration, and drift come from [`crate::variability`].
//!
//! Unlike the paper's test person, the synthesizer knows the exact truth:
//! [`WaveformRecord::beats`] carries every beat's true systolic/diastolic
//! pressure and timing, so calibration error (Fig. 9) can be *measured*
//! instead of eyeballed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tonos_mems::units::MillimetersHg;

use crate::variability::{BaselineDrift, RespiratoryModulation, RrIntervalGenerator};
use crate::PhysioError;

/// One Gaussian component of a beat template.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MorphologyComponent {
    /// Center on the beat phase in [0, 1).
    pub center: f64,
    /// Width (phase units).
    pub width: f64,
    /// Relative amplitude.
    pub amplitude: f64,
}

/// A beat-shape template: a sum of Gaussian components on the beat phase.
///
/// Pulse morphology carries clinical information — arterial stiffening
/// with age advances and enlarges the reflected wave (a larger
/// augmentation index), while young compliant arteries show a small
/// reflection and a crisp dicrotic wave. The presets expose those
/// regimes for experiments on waveform-feature fidelity.
#[derive(Debug, Clone, PartialEq)]
pub struct BeatMorphology {
    components: Vec<MorphologyComponent>,
}

impl BeatMorphology {
    /// Builds a morphology from components.
    ///
    /// # Errors
    ///
    /// Returns [`PhysioError::InvalidParameter`] for an empty list, or
    /// components with non-positive width/amplitude or centers outside
    /// `[0, 1)`.
    pub fn new(components: Vec<MorphologyComponent>) -> Result<Self, PhysioError> {
        if components.is_empty() {
            return Err(PhysioError::InvalidParameter(
                "morphology needs at least one component".into(),
            ));
        }
        for c in &components {
            if !(0.0..1.0).contains(&c.center) || !(c.width > 0.0) || !(c.amplitude > 0.0) {
                return Err(PhysioError::InvalidParameter(format!(
                    "invalid morphology component {c:?}"
                )));
            }
        }
        Ok(BeatMorphology { components })
    }

    /// The default radial-artery template of a healthy adult: systolic
    /// peak, moderate reflection, dicrotic wave.
    pub fn radial_adult() -> Self {
        BeatMorphology::new(vec![
            MorphologyComponent {
                center: 0.16,
                width: 0.062,
                amplitude: 1.0,
            },
            MorphologyComponent {
                center: 0.36,
                width: 0.12,
                amplitude: 0.42,
            },
            MorphologyComponent {
                center: 0.58,
                width: 0.05,
                amplitude: 0.20,
            },
        ])
        .expect("preset is valid")
    }

    /// Stiff (elderly) arteries: the reflected wave arrives earlier and
    /// larger, merging into the systolic peak (high augmentation index).
    pub fn radial_elderly() -> Self {
        BeatMorphology::new(vec![
            MorphologyComponent {
                center: 0.16,
                width: 0.062,
                amplitude: 1.0,
            },
            MorphologyComponent {
                center: 0.28,
                width: 0.11,
                amplitude: 0.75,
            },
            MorphologyComponent {
                center: 0.58,
                width: 0.05,
                amplitude: 0.12,
            },
        ])
        .expect("preset is valid")
    }

    /// Compliant (young) arteries: small late reflection, pronounced
    /// dicrotic wave.
    pub fn radial_young() -> Self {
        BeatMorphology::new(vec![
            MorphologyComponent {
                center: 0.15,
                width: 0.058,
                amplitude: 1.0,
            },
            MorphologyComponent {
                center: 0.40,
                width: 0.13,
                amplitude: 0.25,
            },
            MorphologyComponent {
                center: 0.56,
                width: 0.045,
                amplitude: 0.28,
            },
        ])
        .expect("preset is valid")
    }

    /// The components.
    pub fn components(&self) -> &[MorphologyComponent] {
        &self.components
    }

    /// Evaluates the unnormalized template at a phase in [0, 1).
    fn raw(&self, phase: f64) -> f64 {
        self.components
            .iter()
            .map(|c| {
                let d = phase - c.center;
                c.amplitude * (-0.5 * (d / c.width) * (d / c.width)).exp()
            })
            .sum()
    }

    /// Relative level of the reflection shoulder: the template value at
    /// the second component's center divided by the peak — a proxy for
    /// the augmentation index.
    pub fn reflection_index(&self) -> f64 {
        let mut peak = 0.0_f64;
        for i in 0..512 {
            peak = peak.max(self.raw(i as f64 / 512.0));
        }
        if self.components.len() < 2 || peak <= 0.0 {
            return 0.0;
        }
        self.raw(self.components[1].center) / peak
    }
}

impl Default for BeatMorphology {
    fn default() -> Self {
        BeatMorphology::radial_adult()
    }
}

/// Parameters of the arterial pressure synthesizer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArterialParams {
    /// Target systolic pressure.
    pub systolic: MillimetersHg,
    /// Target diastolic pressure.
    pub diastolic: MillimetersHg,
    /// Mean heart rate in beats per minute.
    pub heart_rate_bpm: f64,
    /// Relative 1-sigma RR-interval jitter.
    pub rr_sigma: f64,
    /// Respiratory modulation.
    pub respiration: RespiratoryModulation,
    /// Per-beat baseline drift RMS step in mmHg.
    pub drift_step_mmhg: f64,
    /// Bound on accumulated drift in mmHg.
    pub drift_bound_mmhg: f64,
    /// Premature ventricular contractions (ectopic beats) per minute;
    /// 0.0 for a regular rhythm. An ectopic beat comes early (short RR),
    /// ejects weakly (reduced pulse pressure), and is followed by a
    /// compensatory pause — the classic PVC signature a robust monitor
    /// must not mistake for two beats or a dropout.
    pub ectopic_rate_per_min: f64,
    /// Seed for all stochastic components.
    pub seed: u64,
}

impl ArterialParams {
    /// A healthy resting adult: 120/80 at 72 bpm with mild variability.
    pub fn normotensive() -> Self {
        ArterialParams {
            systolic: MillimetersHg(120.0),
            diastolic: MillimetersHg(80.0),
            heart_rate_bpm: 72.0,
            rr_sigma: 0.03,
            respiration: RespiratoryModulation::resting(),
            drift_step_mmhg: 0.3,
            drift_bound_mmhg: 4.0,
            ectopic_rate_per_min: 0.0,
            seed: 0xB10D,
        }
    }

    /// Validates physiological plausibility.
    ///
    /// # Errors
    ///
    /// Returns [`PhysioError::InvalidParameter`] when systolic ≤ diastolic,
    /// either pressure is outside 10..=300 mmHg, or variability parameters
    /// are out of range (checked by the sub-generators).
    pub fn validate(&self) -> Result<(), PhysioError> {
        let s = self.systolic.value();
        let d = self.diastolic.value();
        if !(10.0..=300.0).contains(&s) || !(10.0..=300.0).contains(&d) {
            return Err(PhysioError::InvalidParameter(format!(
                "pressures {s}/{d} mmHg outside 10..=300"
            )));
        }
        if s <= d + 5.0 {
            return Err(PhysioError::InvalidParameter(format!(
                "systolic {s} must exceed diastolic {d} by at least 5 mmHg"
            )));
        }
        RrIntervalGenerator::new(self.heart_rate_bpm, self.rr_sigma, 0)?;
        BaselineDrift::new(self.drift_step_mmhg, self.drift_bound_mmhg, 0)?;
        if !(0.0..=30.0).contains(&self.ectopic_rate_per_min) {
            return Err(PhysioError::InvalidParameter(format!(
                "ectopic rate {} per minute outside 0..=30",
                self.ectopic_rate_per_min
            )));
        }
        Ok(())
    }
}

impl Default for ArterialParams {
    fn default() -> Self {
        ArterialParams::normotensive()
    }
}

/// Ground truth for one synthesized beat.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BeatTruth {
    /// Beat onset time in seconds.
    pub onset_s: f64,
    /// RR interval of this beat in seconds.
    pub rr_s: f64,
    /// True systolic pressure of this beat (including drift/respiration
    /// at the systolic instant).
    pub systolic: MillimetersHg,
    /// True diastolic pressure of this beat.
    pub diastolic: MillimetersHg,
    /// True when this beat is an ectopic (premature) contraction.
    pub ectopic: bool,
}

/// A synthesized pressure recording with per-beat ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct WaveformRecord {
    /// Pressure samples.
    pub samples: Vec<MillimetersHg>,
    /// Sample rate in Hz.
    pub sample_rate: f64,
    /// Per-beat ground truth, in onset order.
    pub beats: Vec<BeatTruth>,
}

impl WaveformRecord {
    /// Mean arterial pressure of the whole record.
    pub fn mean_pressure(&self) -> MillimetersHg {
        let sum: f64 = self.samples.iter().map(|p| p.value()).sum();
        MillimetersHg(sum / self.samples.len().max(1) as f64)
    }

    /// Mean heart rate over the record in beats/minute (from the recorded
    /// RR intervals).
    pub fn mean_heart_rate_bpm(&self) -> f64 {
        if self.beats.is_empty() {
            return 0.0;
        }
        let mean_rr: f64 = self.beats.iter().map(|b| b.rr_s).sum::<f64>() / self.beats.len() as f64;
        60.0 / mean_rr
    }
}

/// The arterial pressure synthesizer.
#[derive(Debug, Clone)]
pub struct PulseWaveform {
    params: ArterialParams,
    morphology: BeatMorphology,
    template_min: f64,
    template_max: f64,
}

impl PulseWaveform {
    /// Creates a synthesizer after validating the parameters.
    ///
    /// # Errors
    ///
    /// Propagates [`ArterialParams::validate`].
    pub fn new(params: ArterialParams) -> Result<Self, PhysioError> {
        PulseWaveform::with_morphology(params, BeatMorphology::radial_adult())
    }

    /// Creates a synthesizer with an explicit beat morphology.
    ///
    /// # Errors
    ///
    /// Propagates [`ArterialParams::validate`].
    pub fn with_morphology(
        params: ArterialParams,
        morphology: BeatMorphology,
    ) -> Result<Self, PhysioError> {
        params.validate()?;
        // Normalize the template over a dense phase grid once.
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for i in 0..4096 {
            let v = morphology.raw(i as f64 / 4096.0);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        Ok(PulseWaveform {
            params,
            morphology,
            template_min: lo,
            template_max: hi,
        })
    }

    /// The beat morphology in use.
    pub fn morphology(&self) -> &BeatMorphology {
        &self.morphology
    }

    /// The configured parameters.
    pub fn params(&self) -> &ArterialParams {
        &self.params
    }

    /// Normalized beat template: 0 at the diastolic minimum, 1 at the
    /// systolic peak.
    pub fn template(&self, phase: f64) -> f64 {
        let p = phase.rem_euclid(1.0);
        (self.morphology.raw(p) - self.template_min) / (self.template_max - self.template_min)
    }

    /// Synthesizes `duration_s` seconds at `sample_rate` Hz.
    ///
    /// The optional `trend` closure lets scenarios move the
    /// (systolic, diastolic) targets over time — e.g. the exercise
    /// transient of experiment E6 — and receives the beat onset time.
    ///
    /// # Errors
    ///
    /// Returns [`PhysioError::InvalidParameter`] for a non-positive rate
    /// or duration.
    pub fn record_with_trend<F>(
        &self,
        sample_rate: f64,
        duration_s: f64,
        mut trend: F,
    ) -> Result<WaveformRecord, PhysioError>
    where
        F: FnMut(f64) -> (MillimetersHg, MillimetersHg),
    {
        if !(sample_rate > 0.0) || !(duration_s > 0.0) {
            return Err(PhysioError::InvalidParameter(
                "sample rate and duration must be positive".into(),
            ));
        }
        let mut rr_gen = RrIntervalGenerator::new(
            self.params.heart_rate_bpm,
            self.params.rr_sigma,
            self.params.seed,
        )?;
        let mut drift = BaselineDrift::new(
            self.params.drift_step_mmhg,
            self.params.drift_bound_mmhg,
            self.params.seed ^ 0xD81F,
        )?;
        let mut ectopy_rng = StdRng::seed_from_u64(self.params.seed ^ 0xEC70);

        let n = (duration_s * sample_rate).round() as usize;
        let dt = 1.0 / sample_rate;
        let mut samples = Vec::with_capacity(n);
        let mut beats = Vec::new();

        // Per-beat state.
        let mut beat_onset = 0.0;
        let mut rr = rr_gen.next_rr();
        let mut beat_drift = drift.step();
        let (mut sys_t, mut dia_t) = trend(0.0);
        // Ectopy state: the current beat's pulse-pressure factor and
        // whether the *next* beat carries the compensatory pause.
        let mut amp_factor = 1.0;
        let mut ectopic = false;
        let mut compensatory_pending = false;
        let record_beat = |onset: f64,
                           rr: f64,
                           sys: MillimetersHg,
                           dia: MillimetersHg,
                           amp: f64,
                           ectopic: bool,
                           drift_v: f64,
                           beats: &mut Vec<BeatTruth>| {
            let pulse = (sys.value() - dia.value()) * amp;
            beats.push(BeatTruth {
                onset_s: onset,
                rr_s: rr,
                systolic: MillimetersHg(dia.value() + pulse + drift_v),
                diastolic: MillimetersHg(dia.value() + drift_v),
                ectopic,
            });
        };
        record_beat(
            beat_onset, rr, sys_t, dia_t, amp_factor, ectopic, beat_drift, &mut beats,
        );

        for i in 0..n {
            let t = i as f64 * dt;
            // Advance to the next beat when the RR interval elapses.
            while t - beat_onset >= rr {
                beat_onset += rr;
                rr = rr_gen.next_rr();
                // PVC logic: an ectopic beat is premature and weak; the
                // beat after it pauses compensatorily.
                if compensatory_pending {
                    rr *= 1.45;
                    amp_factor = 1.0;
                    ectopic = false;
                    compensatory_pending = false;
                } else {
                    let p_ectopic = self.params.ectopic_rate_per_min * rr_gen.mean_rr() / 60.0;
                    if self.params.ectopic_rate_per_min > 0.0
                        && ectopy_rng.gen_range(0.0..1.0) < p_ectopic
                    {
                        rr *= 0.55;
                        amp_factor = 0.65;
                        ectopic = true;
                        compensatory_pending = true;
                    } else {
                        amp_factor = 1.0;
                        ectopic = false;
                    }
                }
                beat_drift = drift.step();
                let targets = trend(beat_onset);
                sys_t = targets.0;
                dia_t = targets.1;
                record_beat(
                    beat_onset, rr, sys_t, dia_t, amp_factor, ectopic, beat_drift, &mut beats,
                );
            }
            let phase = (t - beat_onset) / rr;
            let tpl = self.template(phase);
            let p = dia_t.value()
                + (sys_t.value() - dia_t.value()) * amp_factor * tpl
                + beat_drift
                + self.params.respiration.at(t);
            samples.push(MillimetersHg(p));
        }

        Ok(WaveformRecord {
            samples,
            sample_rate,
            beats,
        })
    }

    /// Synthesizes with constant systolic/diastolic targets.
    ///
    /// # Errors
    ///
    /// See [`PulseWaveform::record_with_trend`].
    pub fn record(&self, sample_rate: f64, duration_s: f64) -> Result<WaveformRecord, PhysioError> {
        let sys = self.params.systolic;
        let dia = self.params.diastolic;
        self.record_with_trend(sample_rate, duration_s, |_| (sys, dia))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_params() -> ArterialParams {
        ArterialParams {
            rr_sigma: 0.0,
            respiration: RespiratoryModulation::none(),
            drift_step_mmhg: 0.0,
            ..ArterialParams::normotensive()
        }
    }

    #[test]
    fn template_is_normalized_and_peaks_early() {
        let w = PulseWaveform::new(quiet_params()).unwrap();
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        let mut peak_phase = 0.0;
        for i in 0..2048 {
            let p = i as f64 / 2048.0;
            let v = w.template(p);
            if v > hi {
                hi = v;
                peak_phase = p;
            }
            lo = lo.min(v);
        }
        assert!(lo.abs() < 1e-3, "min {lo}");
        assert!((hi - 1.0).abs() < 1e-3, "max {hi}");
        assert!(
            (0.1..0.25).contains(&peak_phase),
            "systolic peak at phase {peak_phase}"
        );
    }

    #[test]
    fn quiet_record_hits_targets_exactly() {
        let w = PulseWaveform::new(quiet_params()).unwrap();
        let r = w.record(500.0, 5.0).unwrap();
        let max = r.samples.iter().map(|p| p.value()).fold(f64::MIN, f64::max);
        let min = r.samples.iter().map(|p| p.value()).fold(f64::MAX, f64::min);
        assert!((max - 120.0).abs() < 0.5, "systolic {max}");
        assert!((min - 80.0).abs() < 0.5, "diastolic {min}");
    }

    #[test]
    fn beat_count_matches_heart_rate() {
        let w = PulseWaveform::new(quiet_params()).unwrap();
        let r = w.record(250.0, 30.0).unwrap();
        // 72 bpm for 30 s = 36 beats, ± the partial beats at the ends.
        assert!(
            (35..=38).contains(&r.beats.len()),
            "{} beats in 30 s at 72 bpm",
            r.beats.len()
        );
        assert!((r.mean_heart_rate_bpm() - 72.0).abs() < 0.5);
    }

    #[test]
    fn ground_truth_matches_waveform_extrema_per_beat() {
        let w = PulseWaveform::new(quiet_params()).unwrap();
        let r = w.record(1000.0, 10.0).unwrap();
        // For each full beat, the recorded samples in the beat window must
        // peak at the truth's systolic value.
        for pair in r.beats.windows(2) {
            let (b, next) = (&pair[0], &pair[1]);
            let i0 = (b.onset_s * r.sample_rate) as usize;
            let i1 = ((next.onset_s) * r.sample_rate) as usize;
            if i1 >= r.samples.len() {
                break;
            }
            let seg = &r.samples[i0..i1];
            let max = seg.iter().map(|p| p.value()).fold(f64::MIN, f64::max);
            let min = seg.iter().map(|p| p.value()).fold(f64::MAX, f64::min);
            assert!((max - b.systolic.value()).abs() < 1.0, "beat systolic");
            assert!((min - b.diastolic.value()).abs() < 1.0, "beat diastolic");
        }
    }

    #[test]
    fn records_are_deterministic_per_seed() {
        let p = ArterialParams::normotensive();
        let a = PulseWaveform::new(p).unwrap().record(250.0, 5.0).unwrap();
        let b = PulseWaveform::new(p).unwrap().record(250.0, 5.0).unwrap();
        assert_eq!(a, b);
        let mut p2 = p;
        p2.seed ^= 1;
        let c = PulseWaveform::new(p2).unwrap().record(250.0, 5.0).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn respiration_widens_the_envelope() {
        let mut p = quiet_params();
        p.respiration = RespiratoryModulation {
            rate_hz: 0.25,
            amplitude_mmhg: 3.0,
        };
        let w = PulseWaveform::new(p).unwrap();
        let r = w.record(250.0, 20.0).unwrap();
        let max = r.samples.iter().map(|s| s.value()).fold(f64::MIN, f64::max);
        assert!(max > 121.5, "respiration must push peaks above 120: {max}");
    }

    #[test]
    fn trend_moves_the_targets() {
        let w = PulseWaveform::new(quiet_params()).unwrap();
        // Ramp systolic from 120 to 150 over 20 s.
        let r = w
            .record_with_trend(250.0, 20.0, |t| {
                (
                    MillimetersHg(120.0 + 1.5 * t),
                    MillimetersHg(80.0 + 0.5 * t),
                )
            })
            .unwrap();
        let first = r.beats.first().unwrap();
        let last = r.beats.last().unwrap();
        assert!(last.systolic.value() > first.systolic.value() + 20.0);
        assert!(last.diastolic.value() > first.diastolic.value() + 5.0);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let mut p = ArterialParams::normotensive();
        p.systolic = MillimetersHg(80.0); // below diastolic
        assert!(PulseWaveform::new(p).is_err());
        let mut p = ArterialParams::normotensive();
        p.diastolic = MillimetersHg(5.0);
        assert!(PulseWaveform::new(p).is_err());
        let mut p = ArterialParams::normotensive();
        p.heart_rate_bpm = 500.0;
        assert!(PulseWaveform::new(p).is_err());
        let w = PulseWaveform::new(ArterialParams::normotensive()).unwrap();
        assert!(w.record(0.0, 10.0).is_err());
        assert!(w.record(250.0, -1.0).is_err());
    }

    #[test]
    fn morphology_presets_rank_by_reflection_index() {
        let young = BeatMorphology::radial_young().reflection_index();
        let adult = BeatMorphology::radial_adult().reflection_index();
        let elderly = BeatMorphology::radial_elderly().reflection_index();
        assert!(
            young < adult && adult < elderly,
            "stiffer arteries reflect more: {young} < {adult} < {elderly}"
        );
        assert!(elderly > 0.6, "elderly shoulder {elderly}");
        assert!(young < 0.45, "young shoulder {young}");
    }

    #[test]
    fn morphology_changes_the_waveform_not_the_envelope() {
        let p = quiet_params();
        let adult = PulseWaveform::new(p).unwrap().record(250.0, 5.0).unwrap();
        let elderly = PulseWaveform::with_morphology(p, BeatMorphology::radial_elderly())
            .unwrap()
            .record(250.0, 5.0)
            .unwrap();
        assert_ne!(adult.samples, elderly.samples, "different pulse shapes");
        // Both still hit the same systolic/diastolic targets.
        for r in [&adult, &elderly] {
            let max = r.samples.iter().map(|s| s.value()).fold(f64::MIN, f64::max);
            let min = r.samples.iter().map(|s| s.value()).fold(f64::MAX, f64::min);
            assert!((max - 120.0).abs() < 0.5);
            assert!((min - 80.0).abs() < 0.5);
        }
    }

    #[test]
    fn invalid_morphologies_are_rejected() {
        assert!(BeatMorphology::new(vec![]).is_err());
        assert!(BeatMorphology::new(vec![MorphologyComponent {
            center: 1.2,
            width: 0.1,
            amplitude: 1.0
        }])
        .is_err());
        assert!(BeatMorphology::new(vec![MorphologyComponent {
            center: 0.5,
            width: 0.0,
            amplitude: 1.0
        }])
        .is_err());
        assert!(BeatMorphology::new(vec![MorphologyComponent {
            center: 0.5,
            width: 0.1,
            amplitude: -1.0
        }])
        .is_err());
    }

    #[test]
    fn regular_rhythm_has_no_ectopic_beats() {
        let w = PulseWaveform::new(quiet_params()).unwrap();
        let r = w.record(250.0, 30.0).unwrap();
        assert!(r.beats.iter().all(|b| !b.ectopic));
    }

    #[test]
    fn ectopic_beats_appear_at_the_configured_rate() {
        let mut p = quiet_params();
        p.ectopic_rate_per_min = 6.0;
        let w = PulseWaveform::new(p).unwrap();
        let r = w.record(250.0, 120.0).unwrap();
        let ectopic = r.beats.iter().filter(|b| b.ectopic).count();
        // 6/min over 120 s = ~12 expected; Poisson-ish spread.
        assert!(
            (6..=20).contains(&ectopic),
            "{ectopic} ectopic beats in 2 minutes at 6/min"
        );
    }

    #[test]
    fn pvc_signature_short_weak_then_pause() {
        let mut p = quiet_params();
        p.ectopic_rate_per_min = 8.0;
        let w = PulseWaveform::new(p).unwrap();
        let r = w.record(500.0, 120.0).unwrap();
        let normal_rr = 60.0 / p.heart_rate_bpm;
        let mut found = 0;
        for (i, b) in r.beats.iter().enumerate() {
            if !b.ectopic || i + 1 >= r.beats.len() {
                continue;
            }
            found += 1;
            // Premature: clearly shorter than the nominal RR.
            assert!(
                b.rr_s < 0.7 * normal_rr,
                "ectopic RR {} not premature",
                b.rr_s
            );
            // Weak: reduced pulse pressure.
            let pulse = b.systolic.value() - b.diastolic.value();
            assert!((pulse - 0.65 * 40.0).abs() < 2.0, "ectopic pulse {pulse}");
            // Compensatory pause on the next beat.
            let next = &r.beats[i + 1];
            assert!(
                next.rr_s > 1.2 * normal_rr,
                "compensatory RR {} too short",
                next.rr_s
            );
            assert!(!next.ectopic, "the pause beat itself is a normal beat");
        }
        assert!(found >= 5, "only {found} full PVC signatures found");
    }

    #[test]
    fn ectopy_validation() {
        let mut p = ArterialParams::normotensive();
        p.ectopic_rate_per_min = -1.0;
        assert!(PulseWaveform::new(p).is_err());
        p.ectopic_rate_per_min = 60.0;
        assert!(PulseWaveform::new(p).is_err());
    }

    #[test]
    fn mean_pressure_sits_between_dia_and_sys() {
        let w = PulseWaveform::new(quiet_params()).unwrap();
        let r = w.record(250.0, 10.0).unwrap();
        let map = r.mean_pressure().value();
        assert!((80.0..120.0).contains(&map), "MAP {map}");
        // Radial MAP is typically dia + ~1/3 pulse pressure.
        assert!((map - 93.0).abs() < 8.0, "MAP {map} implausible");
    }
}

//! Locating a buried vessel with the tactile array (paper §2).
//!
//! Scans the array while a synthetic artery pulses at a lateral offset,
//! selects the strongest element, and estimates the vessel position from
//! the score centroid — the "localizing blood vessels, buried in tissue"
//! use-case of the paper.
//!
//! Run with: `cargo run --release --example vessel_localization`

use tonos::mems::contact::PressureField;
use tonos::physio::patient::PatientProfile;
use tonos::physio::tissue::TissueModel;
use tonos::system::config::SystemConfig;
use tonos::system::localize::localize_vessel;
use tonos::system::readout::ReadoutSystem;
use tonos::system::select::scan_strongest;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let truth = PatientProfile::normotensive().record(1000.0, 15.0)?;
    let config = SystemConfig::paper_default();
    let contact = config.contact;

    // A shallow vessel 120 um to the left of the array center.
    let tissue = TissueModel::radial_artery().with_vessel_offset(-120e-6);
    println!("true vessel offset: -120.0 um (radial artery preset, 2.5 mm deep)");

    let mut system = ReadoutSystem::new(config)?;
    let layout = system.chip().array().layout();
    let samples = truth.samples.clone();
    let mut t = 0usize;
    let scan = scan_strongest(
        &mut system,
        move || {
            let arterial = samples[t % samples.len()];
            t += 1;
            let field = tissue.field(arterial);
            let mut frame = Vec::with_capacity(layout.len());
            for row in 0..layout.rows {
                for col in 0..layout.cols {
                    let (x, y) = layout.position(row, col);
                    frame.push(contact.net_element_pressure(field.pressure_at(x, y)));
                }
            }
            frame
        },
        500,
    )?;

    println!("\nper-element pulsatile scores:");
    for &((row, col), score) in &scan.scores {
        let (x, y) = layout.position(row, col);
        println!(
            "  element ({row},{col}) at ({:+.0}, {:+.0}) um: {:.6}",
            x * 1e6,
            y * 1e6,
            score
        );
    }
    println!("strongest element: ({}, {})", scan.best.0, scan.best.1);

    let estimate = localize_vessel(&scan, layout)?;
    println!(
        "centroid estimate: x = {:+.1} um (confidence {:.2})",
        estimate.x * 1e6,
        estimate.confidence
    );
    println!(
        "\nNote: at 2.5 mm depth the surface kernel is ~2 mm wide — an order of magnitude \
         beyond the 150 um pitch — so the 2x2 array yields a coarse side decision; see the \
         vessel_localization experiment binary for the extended-array version with sub-pitch \
         estimates."
    );
    Ok(())
}

//! The storage plane end to end: a measurement session driven over
//! the HTTP API, ingested from a (slightly lossy) wire into the
//! append-only historian, then replayed — live readings while it
//! runs, ranged waveform reads at three zoom levels afterwards, and
//! a crash-recovery reopen at the end.
//!
//! Run with: `cargo run --release --example historian_replay`

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use tonos::historian::{Historian, HubConfig, MeasurementApi, MeasurementHub, StoreConfig};
use tonos::link::{
    DeviceSimulator, FaultConfig, FaultyTransport, LinkKey, LinkServer, LinkServerConfig,
};
use tonos::physio::patient::PatientProfile;
use tonos::system::config::SystemConfig;
use tonos::telemetry::Telemetry;

const DEVICE: u64 = 7;
const DURATION_S: f64 = 2.0;

/// One blocking HTTP/1.1 request against the measurement API.
fn http(addr: SocketAddr, method: &str, target: &str, body: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect api");
    write!(
        stream,
        "{method} {target} HTTP/1.1\r\nHost: replay\r\nContent-Length: {}\r\n\r\n{body}",
        body.len(),
    )
    .expect("request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("response");
    response
        .split_once("\r\n\r\n")
        .map_or(String::new(), |(_, b)| b.to_string())
}

fn main() {
    let dir = std::env::temp_dir().join(format!("tonos-historian-replay-{}", std::process::id()));
    let t = Telemetry::disabled();
    let config = SystemConfig::paper_default();
    let patient = PatientProfile::normotensive().with_seed(0x51DE);

    // The deployment wiring: store ← hub ← ingest tap, API in front.
    // A small tier block so a two-second recording is long enough for
    // the downsampling tiers to show up in the replay below.
    let store_config = StoreConfig {
        tier_block: 256,
        ..StoreConfig::default()
    };
    let (historian, _) = Historian::open(&dir, store_config, &t).expect("open store");
    let hub = MeasurementHub::new(historian, HubConfig::default(), &t);
    let api = MeasurementApi::bind("127.0.0.1:0", hub.clone(), &t).expect("bind api");
    let key = LinkKey::from_bytes(*b"ward-shared-key!");
    let link = LinkServer::bind_with_tap(
        "127.0.0.1:0",
        LinkServerConfig {
            decimator: config.decimator,
            auth_key: Some(key),
            require_auth: true,
            // Fire-and-forget device below: no NAK round trip, so a
            // dropped chunk becomes an immediate concealed gap.
            reorder_window: 0,
            ..LinkServerConfig::default()
        },
        Some(Arc::new(hub.clone())),
    )
    .expect("bind ingest server");
    let api_addr = api.local_addr();
    let link_addr = link.local_addr();
    println!("measurement API on {api_addr}, ingest on {link_addr}");

    // prepare → start over HTTP, exactly as a frontend would.
    println!(
        "POST /sessions/prepare -> {}",
        http(api_addr, "POST", "/sessions/prepare", "{\"device\": 7}")
    );
    println!(
        "POST /sessions/1/start -> {}",
        http(api_addr, "POST", "/sessions/1/start", "")
    );

    // The device streams through a mildly lossy wire (hello unmangled
    // so the session routes), then half-closes and drains the server's
    // control write-back before hanging up.
    let device_thread = thread::spawn(move || {
        let mut device = DeviceSimulator::new(&config, &patient, DURATION_S)
            .expect("device")
            .with_auth(key, DEVICE, 1);
        let mut transport = FaultyTransport::new(
            FaultConfig {
                bit_flip_per_byte: 2e-5,
                drop_chunk: 0.005,
                ..FaultConfig::clean()
            },
            0x0DDB,
        );
        let mut stream = TcpStream::connect(link_addr).expect("connect ingest");
        let mut sent = 0u64;
        while let Some(packet) = device.next_packet().expect("conversion") {
            let wire = if sent < 3 {
                packet
            } else {
                transport.transmit(&packet)
            };
            stream.write_all(&wire).expect("stream");
            sent += 1;
        }
        stream.write_all(&transport.flush()).expect("stream");
        stream
            .shutdown(std::net::Shutdown::Write)
            .expect("half-close");
        stream
            .set_read_timeout(Some(Duration::from_millis(500)))
            .ok();
        let mut sink = [0u8; 1024];
        while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
    });

    // Live readings mid-measurement, then poll status to completion.
    thread::sleep(Duration::from_millis(150));
    println!(
        "GET  /sessions/1/readings -> {}",
        http(api_addr, "GET", "/sessions/1/readings", "")
    );
    device_thread.join().expect("device thread");
    let deadline = Instant::now() + Duration::from_secs(10);
    let status = loop {
        let body = http(api_addr, "GET", "/sessions/1/status", "");
        if body.contains("\"state\":\"complete\"") || Instant::now() > deadline {
            break body;
        }
        thread::sleep(Duration::from_millis(20));
    };
    println!("GET  /sessions/1/status -> {status}");

    // Build the downsampled tiers, then replay the recording at three
    // zoom levels: every read is bounded by its own point budget, and
    // the store picks the coarsest tier that still fits.
    let report = hub.historian().compact().expect("compact");
    println!(
        "compaction: {} tier records over {} source samples",
        report.tier_records, report.source_samples
    );
    let snap = hub.historian().snapshot();
    let (from, to) = snap.session_span(DEVICE, 1).expect("session has data");
    let reader = hub.historian().reader();
    for budget in [2_000usize, 200, 20] {
        let wave = reader
            .read_range(DEVICE, 1, from, to, budget)
            .expect("ranged read");
        println!(
            "replay budget {budget:>4}: {} points from tier {} \
             (stride {}, {:.1} Hz effective)",
            wave.points.len(),
            wave.tier,
            wave.stride,
            wave.sample_rate_hz
        );
    }
    drop(reader);

    link.shutdown();
    api.shutdown();

    // Crash recovery: tear bytes off the youngest segment and reopen —
    // only the torn record is lost, everything else replays intact.
    drop(hub);
    let mut segs: Vec<_> = std::fs::read_dir(&dir)
        .expect("list store")
        .filter_map(|e| {
            let p = e.expect("entry").path();
            p.extension().is_some_and(|x| x == "tseg").then_some(p)
        })
        .collect();
    segs.sort();
    let last = segs.last().expect("segments");
    let len = std::fs::metadata(last).expect("metadata").len();
    std::fs::OpenOptions::new()
        .write(true)
        .open(last)
        .expect("open segment")
        .set_len(len - 41.min(len / 2))
        .expect("tear");
    let (recovered, report) = Historian::open(&dir, store_config, &t).expect("reopen after tear");
    println!(
        "recovery: {} records across {} segments survive a torn tail \
         ({} segment(s) truncated, {} bytes dropped)",
        report.records, report.segments, report.truncated_segments, report.dropped_bytes
    );
    let span = recovered.snapshot().session_span(DEVICE, 1);
    println!("recovered session span: {span:?}");
    drop(recovered);
    std::fs::remove_dir_all(&dir).ok();
}

//! Continuous wrist blood-pressure monitoring (the paper Fig. 9 session).
//!
//! Full pipeline: synthetic radial-artery pressure → tissue → PDMS
//! contact → membrane array → mux → ΣΔ modulator → decimation →
//! strongest-element selection → hand-cuff calibration → beat analysis,
//! with tracking errors measured against the known ground truth.
//!
//! Run with: `cargo run --release --example wrist_monitor`

use tonos::physio::patient::PatientProfile;
use tonos::system::config::SystemConfig;
use tonos::system::monitor::BloodPressureMonitor;
use tonos::system::report::SessionReport;
use tonos::system::vitals::respiratory_rate;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let patient = PatientProfile::normotensive();
    println!(
        "patient: {} ({:.0}/{:.0} mmHg at {:.0} bpm)",
        patient.name,
        patient.params.systolic.value(),
        patient.params.diastolic.value(),
        patient.params.heart_rate_bpm
    );

    let mut monitor = BloodPressureMonitor::new(SystemConfig::paper_default(), patient)?;
    let session = monitor.run(30.0)?;

    println!(
        "selected element: ({}, {}) out of the 2x2 array",
        session.scan.best.0, session.scan.best.1
    );
    println!(
        "cuff calibration: {:.0}/{:.0} mmHg -> gain {:.0} mmHg/FS, offset {:.0} mmHg",
        session.cuff_reading.systolic.value(),
        session.cuff_reading.diastolic.value(),
        session.calibration.gain,
        session.calibration.offset
    );
    println!(
        "analysis: {} beats, pulse {:.1} bpm, mean {:.1}/{:.1} mmHg",
        session.analysis.beats.len(),
        session.analysis.pulse_rate_bpm,
        session.analysis.mean_systolic,
        session.analysis.mean_diastolic
    );
    println!(
        "tracking vs ground truth: systolic MAE {:.2} mmHg, diastolic MAE {:.2} mmHg \
         over {} matched beats",
        session.errors.systolic_mae, session.errors.diastolic_mae, session.errors.matched_beats
    );

    println!("\n{}\n", SessionReport::from_session(&session));

    if let Ok(resp) = respiratory_rate(&session.analysis.beats, session.sample_rate) {
        println!(
            "derived vitals: breathing {:.1} /min ({:.1} mmHg modulation, confidence {:.2})",
            resp.rate_per_min, resp.amplitude, resp.confidence
        );
    }

    // A strip of the calibrated waveform, one line per 50 ms.
    println!("\ncalibrated waveform strip (each line = 50 ms, '*' = pressure):");
    let fs = session.sample_rate;
    for chunk in session.calibrated.chunks((fs * 0.05) as usize).take(40) {
        let mean = chunk.iter().map(|p| p.value()).sum::<f64>() / chunk.len() as f64;
        let col = ((mean - 70.0) / 60.0 * 60.0).clamp(0.0, 60.0) as usize;
        println!("{:6.1} mmHg |{}*", mean, " ".repeat(col));
    }
    Ok(())
}

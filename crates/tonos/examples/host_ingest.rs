//! The host half of the link, end to end on one machine: a concurrent
//! TCP ingest server fed by several simulated devices — most on clean
//! transports, one behind a deliberately lossy wire — showing frame
//! resynchronization, gap concealment, and the fleet report that a
//! ward's worth of sockets rolls up into.
//!
//! Run with: `cargo run --release --example host_ingest`
//!
//! To drive it from a separate process instead, bump `IDLE_EXIT` and
//! point `cargo run --release --example device_sim -- <addr>` at the
//! printed address.

use std::io::Write;
use std::net::TcpStream;
use std::thread;
use std::time::Duration;

use tonos::link::{
    DeviceSimulator, FaultConfig, FaultyTransport, LinkCalibration, LinkServer, LinkServerConfig,
};
use tonos::mems::units::MillimetersHg;
use tonos::physio::patient::PatientProfile;
use tonos::system::config::SystemConfig;
use tonos::telemetry::names;

const DEVICES: usize = 4;
const DURATION_S: f64 = 6.0;

fn main() {
    let config = SystemConfig::paper_default();
    // Calibrate the host side against the known device configuration by
    // probing an in-process readout at two reference pressures, exactly
    // as a bench calibration run would.
    let calibration =
        LinkCalibration::two_point(&config, MillimetersHg(60.0), MillimetersHg(180.0))
            .expect("two-point calibration");
    let server = LinkServer::bind(
        "127.0.0.1:0",
        LinkServerConfig {
            decimator: config.decimator,
            calibration,
            ..LinkServerConfig::default()
        },
    )
    .expect("bind ingest server");
    let addr = server.local_addr();
    println!("ingest server listening on {addr}");

    // Three patients on clean wires, one hypertensive patient behind a
    // transport that flips bits, drops chunks, and stalls — the server
    // must flag and conceal that stream, never silently corrupt it.
    let devices: Vec<_> = (0..DEVICES)
        .map(|i| {
            thread::spawn(move || {
                let (patient, faults) = match i {
                    0 => (PatientProfile::normotensive(), FaultConfig::clean()),
                    1 => (PatientProfile::hypotensive(), FaultConfig::clean()),
                    2 => (PatientProfile::hypertensive(), FaultConfig::noisy()),
                    _ => (
                        PatientProfile::normotensive().with_seed(0xBED + i as u64),
                        FaultConfig::clean(),
                    ),
                };
                let label = format!(
                    "{} ({})",
                    patient.name,
                    if faults.drop_chunk > 0.0 {
                        "noisy wire"
                    } else {
                        "clean wire"
                    }
                );
                let mut device =
                    DeviceSimulator::new(&config, &patient, DURATION_S).expect("device");
                let mut transport = FaultyTransport::new(faults, 0x1D_EA + i as u64);
                let mut stream = TcpStream::connect(addr).expect("connect");
                while let Some(packet) = device.next_packet().expect("conversion") {
                    stream
                        .write_all(&transport.transmit(&packet))
                        .expect("stream");
                }
                stream.write_all(&transport.flush()).expect("stream");
                label
            })
        })
        .collect();
    for d in devices {
        println!("device finished: {}", d.join().expect("device thread"));
    }

    // Readers drain to EOF once the sockets close; give them a moment.
    while server.connections() < DEVICES {
        thread::sleep(Duration::from_millis(10));
    }
    thread::sleep(Duration::from_millis(300));
    let (report, snapshot) = server.shutdown();

    print!("\n{report}");
    let counter = |name: &str| -> u64 { snapshot.counter(name).unwrap_or(0) };
    println!("\nlink telemetry rollup:");
    println!(
        "  {} connections, {} frames in ({} bytes), {} clean samples",
        counter(names::LINK_CONNECTIONS),
        counter(names::LINK_FRAMES_RX),
        counter(names::LINK_BYTES_RX),
        counter(names::LINK_SAMPLES_CLEAN),
    );
    println!(
        "  {} CRC rejects, {} resyncs, {} gap events ({} frames lost), {} samples concealed",
        counter(names::LINK_CRC_FAIL),
        counter(names::LINK_RESYNCS),
        counter(names::LINK_GAP_EVENTS),
        counter(names::LINK_GAP_FRAMES),
        counter(names::LINK_GAPS_CONCEALED),
    );
    println!(
        "  {} stale frames dropped, {} slow consumers evicted",
        counter(names::LINK_STALE_FRAMES),
        counter(names::LINK_SLOW_CONSUMER_DISCONNECTS),
    );
}

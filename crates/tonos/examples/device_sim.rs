//! The device half of the host link: a simulated sensor chip that
//! frames its ΣΔ bitstream and streams it to an ingest server over TCP,
//! optionally through a deliberately lossy transport.
//!
//! Start an ingest server first (`cargo run --release --example
//! host_ingest` prints its address, or embed [`tonos::link::LinkServer`]
//! in your own binary), then:
//!
//! ```text
//! cargo run --release --example device_sim -- 127.0.0.1:7400 hypertensive 10 noisy
//! ```
//!
//! Arguments (all optional, in order): server address, patient profile
//! (`normotensive` | `hypertensive` | `hypotensive`), duration in
//! seconds, and the literal `noisy` to route the stream through a
//! seeded [`tonos::link::FaultyTransport`].

use std::io::Write;
use std::net::TcpStream;

use tonos::link::{DeviceSimulator, FaultConfig, FaultyTransport};
use tonos::physio::patient::PatientProfile;
use tonos::system::config::SystemConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let addr = args.first().map_or("127.0.0.1:7400", String::as_str);
    let patient = match args.get(1).map(String::as_str) {
        None | Some("normotensive") => PatientProfile::normotensive(),
        Some("hypertensive") => PatientProfile::hypertensive(),
        Some("hypotensive") => PatientProfile::hypotensive(),
        Some(other) => {
            eprintln!("unknown profile {other:?}; use normotensive | hypertensive | hypotensive");
            std::process::exit(2);
        }
    };
    let duration_s: f64 = args.get(2).map_or(10.0, |s| s.parse().expect("duration"));
    let noisy = args.iter().any(|a| a == "noisy");

    let config = SystemConfig::paper_default();
    let mut device = DeviceSimulator::new(&config, &patient, duration_s).expect("device");
    let mut transport = FaultyTransport::new(
        if noisy {
            FaultConfig::noisy()
        } else {
            FaultConfig::clean()
        },
        0xD1CE,
    );

    println!(
        "device: {} for {duration_s} s over {} transport -> {addr}",
        patient.name,
        if noisy { "a noisy" } else { "a clean" },
    );
    let mut stream = TcpStream::connect(addr).expect("connect to ingest server");
    let mut frames = 0u64;
    let mut bytes = 0u64;
    while let Some(packet) = device.next_packet().expect("conversion") {
        frames += 1;
        let delivered = transport.transmit(&packet);
        bytes += delivered.len() as u64;
        stream.write_all(&delivered).expect("stream to server");
    }
    let tail = transport.flush();
    bytes += tail.len() as u64;
    stream.write_all(&tail).expect("stream to server");
    stream.flush().expect("flush");
    println!("device: sent {frames} frames, {bytes} bytes on the wire; done");
}

//! Why continuous monitoring matters: the paper's introduction, measured.
//!
//! Subjects a simulated patient to a hypertensive episode and monitors
//! with (a) a conventional oscillometric cuff and (b) the paper's
//! continuous tonometric sensor, then compares what each saw.
//!
//! Run with: `cargo run --release --example cuff_vs_continuous`

use tonos::physio::cuff::CuffDevice;
use tonos::physio::patient::PressureTransient;
use tonos::system::config::SystemConfig;
use tonos::system::monitor::BloodPressureMonitor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = PressureTransient::episode();
    println!(
        "scenario: +{:.0}/{:.0} mmHg episode at t = {:.0} s (ramp {:.0} s, hold {:.0} s)",
        scenario.sys_delta.value(),
        scenario.dia_delta.value(),
        scenario.onset_s,
        scenario.ramp_s,
        scenario.hold_s
    );
    let duration = 150.0;
    let truth = scenario.record(1000.0, duration)?;

    // (a) The cuff: one reading per 30 s inflation cycle.
    let mut cuff = CuffDevice::clinical(7);
    let readings = cuff.monitor(&truth);
    println!("\ncuff readings ({} in {:.0} s):", readings.len(), duration);
    for r in &readings {
        println!(
            "  t = {:5.1} s: {:3.0}/{:3.0} mmHg",
            r.time_s,
            r.systolic.value(),
            r.diastolic.value()
        );
    }

    // (b) The continuous sensor.
    let mut monitor = BloodPressureMonitor::new(SystemConfig::paper_default(), scenario.profile)?;
    let session = monitor.run_record(truth)?;
    println!(
        "\ncontinuous sensor: {} beats resolved, systolic MAE {:.2} mmHg",
        session.analysis.beats.len(),
        session.errors.systolic_mae
    );

    // Per-10 s systolic trend from the continuous channel.
    println!("\nsystolic trend from the beat series (10 s bins):");
    let fs = session.sample_rate;
    let mut bins: Vec<Vec<f64>> = vec![Vec::new(); (duration / 10.0) as usize + 1];
    for beat in &session.analysis.beats {
        let t = (session.acquisition_start + beat.peak_index) as f64 / fs;
        let idx = (t / 10.0) as usize;
        if idx < bins.len() {
            bins[idx].push(beat.systolic);
        }
    }
    for (i, bin) in bins.iter().enumerate() {
        if bin.is_empty() {
            continue;
        }
        let mean = bin.iter().sum::<f64>() / bin.len() as f64;
        let bar = "#".repeat(((mean - 100.0).max(0.0) / 1.5) as usize);
        println!(
            "  {:3}-{:3} s: {:5.1} mmHg {}",
            i * 10,
            (i + 1) * 10,
            mean,
            bar
        );
    }
    println!(
        "\nThe episode (60-110 s) is fully resolved by the continuous channel; the cuff \
         caught at most one or two points of it — the paper's motivation in one plot."
    );
    Ok(())
}

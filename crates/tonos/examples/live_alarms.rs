//! Live monitoring with the streaming analyzer: beats, rate, alarms.
//!
//! Feeds a hypertensive-episode scenario through [`OnlineAnalyzer`]
//! sample by sample — the push-based engine a bedside implementation of
//! the paper's sensor would run on the host after the USB link.
//!
//! Run with: `cargo run --release --example live_alarms`

use tonos::physio::patient::PressureTransient;
use tonos::system::stream::{AlarmLimits, MonitorEvent, OnlineAnalyzer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = PressureTransient::episode();
    println!(
        "scenario: normotensive patient, +{:.0} mmHg episode at t = {:.0} s",
        scenario.sys_delta.value(),
        scenario.onset_s
    );
    let record = scenario.record(250.0, 140.0)?;

    // This patient's episode peaks at ~155 mmHg; set the alarm limit the
    // way a clinician would for a normotensive baseline.
    let limits = AlarmLimits {
        systolic_high: 140.0,
        ..AlarmLimits::adult()
    };
    let mut analyzer = OnlineAnalyzer::new(record.sample_rate, limits)?;
    let mut beat_count = 0usize;
    let mut last_report = 0.0;
    for sample in &record.samples {
        for event in analyzer.push(sample.value()) {
            match event {
                MonitorEvent::Beat {
                    time_s,
                    systolic,
                    pulse_rate_bpm,
                    ..
                } => {
                    beat_count += 1;
                    // One status line every 10 s.
                    if time_s - last_report >= 10.0 {
                        last_report = time_s;
                        println!(
                            "t = {time_s:6.1} s | beat #{beat_count:<3} | sys {systolic:6.1} mmHg | \
                             rate {pulse_rate_bpm:5.1} bpm"
                        );
                    }
                }
                MonitorEvent::HypertensionAlarm { time_s, systolic } => {
                    println!(
                        ">>> HYPERTENSION ALARM at t = {time_s:.1} s (systolic {systolic:.0} mmHg)"
                    );
                }
                MonitorEvent::HypotensionAlarm { time_s, systolic } => {
                    println!(
                        ">>> HYPOTENSION ALARM at t = {time_s:.1} s (systolic {systolic:.0} mmHg)"
                    );
                }
                MonitorEvent::SignalLossAlarm { time_s, silence_s } => {
                    println!(">>> SIGNAL LOSS at t = {time_s:.1} s ({silence_s:.1} s silent)");
                }
            }
        }
    }
    println!(
        "\n{} beats streamed; final rate estimate {:.1} bpm",
        beat_count,
        analyzer.pulse_rate_bpm()
    );
    Ok(())
}

//! A monitoring fleet: every built-in patient profile on its own bed,
//! monitored concurrently on a worker pool, with one bed deliberately
//! poisoned to show failure isolation, and the whole ward summarized by
//! a single rolled-up telemetry registry.
//!
//! Run with: `cargo run --release --example fleet_monitor`

use std::time::Instant;

use tonos::fleet::{FleetConfig, FleetEngine, SessionSpec};
use tonos::physio::patient::PatientProfile;
use tonos::system::stream::AlarmLimits;
use tonos::telemetry::names;

fn main() {
    let config = FleetConfig::default();
    println!("spawning fleet: {} workers", config.workers.max(1));
    let mut fleet = FleetEngine::spawn(config);

    // One bed per built-in profile, each screened by the adult alarm
    // limits; the hypertensive patient (165/105) should light up.
    for (bed, patient) in PatientProfile::all().into_iter().enumerate() {
        fleet.push(
            SessionSpec::new(format!("bed-{bed} ({})", patient.name), patient)
                .with_duration(8.0)
                .with_scan_window(150)
                .with_alarms(AlarmLimits::adult()),
        );
    }
    // And one poisoned bed: the panic is caught at the worker boundary,
    // reported in the drain, and the other sessions are untouched.
    fleet.push_task("bed-5 (poisoned)", |_ctx| {
        panic!("simulated sensor driver fault")
    });

    let started = Instant::now();
    let report = fleet.drain();
    let elapsed = started.elapsed().as_secs_f64();

    print!("{report}");
    println!(
        "\nwall clock: {elapsed:.2} s for {:.2} s of summed worker time ({:.2}x effective parallelism)",
        report.total_wall_s(),
        report.total_wall_s() / elapsed.max(1e-9),
    );

    // The fleet registry holds the engine's accounting and everything
    // rolled up from the per-session registries, in one snapshot.
    let snapshot = fleet.snapshot();
    println!(
        "\nfleet rollup: {} sessions started, {} completed, {} panicked",
        snapshot.counter(names::FLEET_SESSIONS_STARTED).unwrap_or(0),
        snapshot
            .counter(names::FLEET_SESSIONS_COMPLETED)
            .unwrap_or(0),
        snapshot
            .counter(names::FLEET_SESSIONS_PANICKED)
            .unwrap_or(0),
    );
    print!("\n{}", fleet.registry().health());

    assert_eq!(report.failures().len(), 1, "only the poisoned bed fails");
    assert!(report.total_alarms() > 0, "the hypertensive bed alarms");
    println!("\nfleet checks passed: one isolated failure, alarms fanned in");
}

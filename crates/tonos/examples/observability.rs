//! End-to-end observability: one instrumented monitoring session, from
//! modulator bit to clinical alarm.
//!
//! A single [`Registry`] observes the whole stack: the readout system
//! flushes its substrate counters (modulator cycles, saturations, mux
//! switches, decimator throughput, chip energy) per frame, the monitor
//! times its session stages as spans and counts beats, and the streaming
//! analyzer journals every alarm. At the end, one health report and a
//! machine-readable snapshot summarize the session.
//!
//! Run with: `cargo run --release --example observability`

use tonos::physio::patient::PatientProfile;
use tonos::system::config::SystemConfig;
use tonos::system::monitor::BloodPressureMonitor;
use tonos::system::stream::{AlarmLimits, MonitorEvent, OnlineAnalyzer};
use tonos::telemetry::Registry;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let registry = Registry::new();

    // --- An instrumented 8 s session on a hypertensive patient. ---
    let mut monitor = BloodPressureMonitor::new(
        SystemConfig::paper_default(),
        PatientProfile::hypertensive(),
    )?
    .with_scan_window(150)
    .with_telemetry(registry.telemetry());
    println!("running an instrumented 8 s monitoring session...");
    let session = monitor.run(8.0)?;
    println!(
        "session done: {} beats matched, systolic MAE {:.2} mmHg\n",
        session.errors.matched_beats, session.errors.systolic_mae
    );

    // --- Replay the calibrated stream through the alarm engine. ---
    // The 170/105 mmHg patient sits above the adult 160 mmHg limit, so
    // the hypertension alarm must fire within the first qualifying run.
    let mut analyzer = OnlineAnalyzer::new(session.sample_rate, AlarmLimits::adult())?
        .with_telemetry(registry.telemetry());
    for p in &session.calibrated {
        for event in analyzer.push(p.value()) {
            if let MonitorEvent::HypertensionAlarm { time_s, systolic } = event {
                println!(
                    ">>> HYPERTENSION ALARM at t = {time_s:.1} s (systolic {systolic:.0} mmHg)"
                );
            }
        }
    }
    println!();

    // --- One view of the whole signal path. ---
    let health = registry.health();
    print!("{health}");

    // Everything the report summarizes is also available raw.
    let snapshot = registry.snapshot();
    println!("\njournal ({} events):", snapshot.events.len());
    for e in &snapshot.events {
        println!(
            "  [{:8.3} s] {:8} {:8} {}",
            e.at.as_secs_f64(),
            e.severity.as_str(),
            e.source,
            e.message
        );
    }

    let mut csv = Vec::new();
    snapshot.write_csv(&mut csv)?;
    println!(
        "\nsnapshot: {} counters, {} gauges, {} histograms ({} CSV bytes, {} JSON bytes)",
        snapshot.counters.len(),
        snapshot.gauges.len(),
        snapshot.histograms.len(),
        csv.len(),
        snapshot.to_json().len()
    );

    // The accounting identity the telemetry layer guarantees.
    assert_eq!(
        health.frames_in,
        health.samples_out + health.settling_discarded
    );
    assert!(health.modulator_steps > 0);
    assert!(health.settling_discarded > 0);
    assert!(health.beats > 0);
    assert!(health.alarms > 0);
    println!("\naccounting checks passed: every frame is a settled sample or a discard");
    Ok(())
}

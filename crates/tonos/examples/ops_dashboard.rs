//! The telemetry plane on a live ward: an ingest server fed by
//! simulated devices (one behind a lossy wire), with a scope endpoint
//! exposing Prometheus `/metrics`, per-link `/links` health, `/health`,
//! and the flight recorder's `/flight` ring — everything an operator's
//! dashboard would scrape, demonstrated by scraping it.
//!
//! Run with: `cargo run --release --example ops_dashboard`
//!
//! While it runs, the printed scope address answers real HTTP — point
//! `curl` or a Prometheus scraper at it from another terminal.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use tonos::link::{
    DeviceSimulator, FaultConfig, FaultyTransport, LinkCalibration, LinkServer, LinkServerConfig,
};
use tonos::mems::units::MillimetersHg;
use tonos::physio::patient::PatientProfile;
use tonos::scope::{FlightRecorder, RecorderConfig, ScopeServer, ScopeSources};
use tonos::system::config::SystemConfig;

const DEVICES: usize = 3;
const DURATION_S: f64 = 6.0;

/// One blocking HTTP/1.1 GET against the scope endpoint.
fn http_get(addr: SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect scope");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: dashboard\r\n\r\n").expect("request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("response");
    response
}

/// Body of a 200 response (everything after the blank line).
fn body(response: &str) -> &str {
    response.split_once("\r\n\r\n").map_or("", |(_, b)| b)
}

fn main() {
    let config = SystemConfig::paper_default();
    let calibration =
        LinkCalibration::two_point(&config, MillimetersHg(60.0), MillimetersHg(180.0))
            .expect("two-point calibration");
    let link = LinkServer::bind(
        "127.0.0.1:0",
        LinkServerConfig {
            decimator: config.decimator,
            calibration,
            ..LinkServerConfig::default()
        },
    )
    .expect("bind ingest server");
    let ingest_addr = link.local_addr();

    // The scope endpoint watches the ingest server's fleet registry and
    // live link directory; a 500 ms × 2 min flight recorder rides along
    // on the endpoint's accept loop.
    let recorder = Arc::new(Mutex::new(FlightRecorder::new(
        link.fleet_registry().clone(),
        RecorderConfig {
            interval: Duration::from_millis(500),
            retention: Duration::from_secs(120),
        },
    )));
    let scope = ScopeServer::bind(
        "127.0.0.1:0",
        ScopeSources::registry(link.fleet_registry().clone())
            .with_directory(link.directory())
            .with_recorder(Arc::clone(&recorder)),
    )
    .expect("bind scope endpoint");
    let scope_addr = scope.local_addr();
    println!("ingest server listening on {ingest_addr}");
    println!("scope endpoint listening on {scope_addr} (try: curl http://{scope_addr}/metrics)");

    // Two patients on clean wires, one hypertensive patient behind a
    // transport that flips bits and drops chunks — the dashboard should
    // show that link concealing gaps while the others stay clean.
    let devices: Vec<_> = (0..DEVICES)
        .map(|i| {
            thread::spawn(move || {
                let (patient, faults) = match i {
                    0 => (PatientProfile::normotensive(), FaultConfig::clean()),
                    1 => (PatientProfile::hypertensive(), FaultConfig::noisy()),
                    _ => (PatientProfile::hypotensive(), FaultConfig::clean()),
                };
                let mut device =
                    DeviceSimulator::new(&config, &patient, DURATION_S).expect("device");
                let mut transport = FaultyTransport::new(faults, 0x0B5 + i as u64);
                let mut stream = TcpStream::connect(ingest_addr).expect("connect");
                while let Some(packet) = device.next_packet().expect("conversion") {
                    stream
                        .write_all(&transport.transmit(&packet))
                        .expect("stream");
                }
                stream.write_all(&transport.flush()).expect("stream");
            })
        })
        .collect();

    // Scrape per-link health the way a monitoring stack would. (The
    // simulated sessions run far faster than real time, so depending on
    // timing the links may already show closed here — a real ward's
    // would stay live for the monitoring duration.)
    thread::sleep(Duration::from_millis(1500));
    let links = http_get(scope_addr, "/links");
    println!(
        "\nGET /links (per-link health):\n{}",
        body(&links).trim_end()
    );

    for d in devices {
        d.join().expect("device thread");
    }
    while link.connections() < DEVICES {
        thread::sleep(Duration::from_millis(10));
    }
    thread::sleep(Duration::from_millis(300));

    // Post-ingest: the health summary, a slice of the Prometheus
    // exposition, and the flight recorder's view of the session.
    println!(
        "\nGET /health:\n{}",
        body(&http_get(scope_addr, "/health")).trim_end()
    );
    let metrics = http_get(scope_addr, "/metrics");
    println!("\nGET /metrics (link and fleet series):");
    for line in body(&metrics)
        .lines()
        .filter(|l| l.starts_with("tonos_link") || l.starts_with("tonos_fleet"))
        .take(12)
    {
        println!("  {line}");
    }
    println!(
        "\nGET /flight:\n{}",
        body(&http_get(scope_addr, "/flight")).trim_end()
    );
    let frames_rx = recorder
        .lock()
        .expect("recorder")
        .counter_series("link.frames_rx");
    if let Some((_, last)) = frames_rx.last() {
        println!(
            "flight recorder replay: link.frames_rx reached {last} over {} ticks",
            frames_rx.len()
        );
    }

    scope.shutdown();
    let (report, _snapshot) = link.shutdown();
    print!("\n{report}");
}

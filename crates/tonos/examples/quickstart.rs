//! Quickstart: pressure in, digital samples out, in ~40 lines.
//!
//! Builds the paper's sensor system (2×2 membrane array + 2nd-order ΣΔ +
//! SINC³/FIR decimation at OSR 128), applies a pressure step, and shows
//! the 12-bit / 1 kS/s output tracking it.
//!
//! Run with: `cargo run --release --example quickstart`

use tonos::mems::units::{MillimetersHg, Pascals};
use tonos::system::config::SystemConfig;
use tonos::system::readout::ReadoutSystem;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The full measurement system with the paper's numbers: 128 kS/s
    // modulator, OSR 128, 500 Hz cutoff, 12-bit output at 1 kS/s.
    let mut system = ReadoutSystem::new(SystemConfig::paper_default())?;
    println!(
        "system: {} kS/s modulator, OSR {}, {} S/s output, chip power {:.1} mW",
        system.config().chip.sample_rate_hz / 1e3,
        system.osr(),
        system.output_rate_hz(),
        system.chip().power_consumption() * 1e3
    );

    // One pressure "frame" per output sample: hold 40 mmHg on all four
    // membranes, then step to 120 mmHg.
    let frame = |mmhg: f64| vec![Pascals::from_mmhg(MillimetersHg(mmhg)); 4];
    let settle = system.settling_frames();

    let low = system.push_frames(&vec![frame(40.0); settle + 50])?;
    let high = system.push_frames(&vec![frame(120.0); settle + 50])?;

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let low_level = mean(&low[settle..]);
    let high_level = mean(&high[settle..]);
    println!("output at  40 mmHg: {low_level:+.5} of full scale");
    println!("output at 120 mmHg: {high_level:+.5} of full scale");
    println!(
        "step response: {:+.5} FS for 80 mmHg -> {:.2} uFS/mmHg",
        high_level - low_level,
        (high_level - low_level) / 80.0 * 1e6
    );
    assert!(
        high_level > low_level,
        "more pressure, more capacitance, higher code"
    );
    println!("ok: the digital output tracks membrane pressure.");
    Ok(())
}

//! Electrical characterization of the ΣΔ-ADC (the paper Fig. 7 workflow).
//!
//! Uses the modulator's auxiliary differential voltage input — included
//! on the chip precisely "so a full characterization of the analog to
//! digital conversion … can be accomplished, independent of the connected
//! transducer" (§3) — to measure SNR/SNDR/ENOB of the complete converter.
//!
//! Run with: `cargo run --release --example adc_characterization`

use tonos::analog::modulator::PAPER_SAMPLE_RATE_HZ;
use tonos::dsp::metrics::{ideal_quantizer_snr_db, DynamicMetrics};
use tonos::dsp::spectrum::Spectrum;
use tonos::dsp::window::Window;
use tonos::mems::units::Volts;
use tonos::system::config::SystemConfig;
use tonos::system::readout::ReadoutSystem;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut system = ReadoutSystem::new(SystemConfig::characterization_default())?;
    let n_out = 4096;
    let out_rate = system.output_rate_hz();

    // Coherent test tone near the paper's 15.625 Hz, at -1.4 dBFS.
    let tone = Window::coherent_frequency(out_rate, n_out, 15.625);
    let vref = 2.5;
    let amplitude = 0.85 * vref;
    let settle = system.settling_frames() + 8;
    let n_in = system.osr() * (n_out + settle);
    let stimulus: Vec<Volts> = (0..n_in)
        .map(|i| {
            let t = i as f64 / PAPER_SAMPLE_RATE_HZ;
            Volts(amplitude * (2.0 * std::f64::consts::PI * tone * t).sin())
        })
        .collect();

    let out = system.acquire_voltage(&stimulus);
    let tail = &out[out.len() - n_out..];
    let spectrum = Spectrum::from_signal(tail, out_rate, Window::Hann)?;
    let metrics = DynamicMetrics::from_spectrum(&spectrum)?;

    println!(
        "test tone: {tone:.3} Hz at {:.2} V peak ({:.1} dBFS)",
        amplitude,
        20.0 * (amplitude / vref).log10()
    );
    println!("{metrics}");
    println!(
        "ideal 12-bit bound: {:.1} dB; paper: 'better than 72 dB'",
        ideal_quantizer_snr_db(12)
    );
    assert!(
        metrics.snr_db > 72.0,
        "the reproduction must clear the paper's floor"
    );
    println!(
        "ok: SNR {:.1} dB clears the paper's 72 dB floor.",
        metrics.snr_db
    );
    Ok(())
}

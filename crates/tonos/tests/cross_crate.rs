//! Cross-crate consistency: substrates must agree where they meet.

use tonos::analog::frontend::CapacitiveFrontEnd;
use tonos::mems::array::SensorArray;
use tonos::mems::contact::{ContactInterface, PressureField};
use tonos::mems::units::{Farads, MillimetersHg, Pascals, Volts};
use tonos::physio::patient::PatientProfile;
use tonos::physio::tissue::TissueModel;
use tonos::system::chip::SensorChip;
use tonos::system::config::ChipConfig;

/// The chip's front end must be referenced to its own array's reference
/// structure: a perfectly balanced element reads (nearly) zero input.
#[test]
fn frontend_reference_matches_array_reference() {
    let chip = SensorChip::new(ChipConfig::paper_default()).unwrap();
    let reference = chip.array().reference_capacitance();
    assert_eq!(chip.frontend().reference(), reference);
    let fe = CapacitiveFrontEnd::paper_default(reference);
    assert_eq!(fe.input_fraction(reference), 0.0);
}

/// Tissue fields plug into the MEMS contact interface and produce
/// element loads ordered by distance to the vessel.
#[test]
fn tissue_field_drives_contact_interface_consistently() {
    let array = SensorArray::paper_ideal();
    let tissue = TissueModel::radial_artery().with_vessel_offset(-2.0e-3);
    let field = tissue.field(MillimetersHg(120.0));
    let iface = ContactInterface::wrist_default();
    let loads = iface.element_pressures(&array, &field).unwrap();
    assert_eq!(loads.len(), 4);
    // Columns closer to the vessel (x = -75 um) load harder.
    assert!(loads[0] > loads[1], "row 0: left column nearer the vessel");
    assert!(loads[2] > loads[3], "row 1: left column nearer the vessel");
    // And the interface at least preserves the field ordering vs a
    // direct evaluation.
    let direct_left = field.pressure_at(-75e-6, -75e-6);
    let direct_right = field.pressure_at(75e-6, -75e-6);
    assert!(direct_left > direct_right);
}

/// Physiological pressures never collapse the paper's membranes through
/// the wrist contact stack.
#[test]
fn clinical_pressures_stay_far_from_collapse() {
    let chip = SensorChip::new(ChipConfig::paper_default()).unwrap();
    let iface = ContactInterface::wrist_default();
    for mmhg in [0.0, 80.0, 120.0, 200.0, 300.0] {
        let net = iface.net_element_pressure(Pascals::from_mmhg(MillimetersHg(mmhg)));
        let caps = chip.capacitances(&[net; 4]).unwrap();
        for c in caps {
            assert!(c.is_finite());
            assert!(c.value() > 0.0);
        }
    }
}

/// The physiology's pressure range maps into the modulator's stable
/// input range through the front end (no overload in normal operation).
#[test]
fn physiology_maps_into_modulator_range() {
    let chip = SensorChip::new(ChipConfig::measurement_tuned()).unwrap();
    let tissue = TissueModel::radial_artery();
    let iface = ContactInterface::wrist_default();
    let record = PatientProfile::hypertensive().record(250.0, 10.0).unwrap();
    let mut max_u = 0.0_f64;
    for &arterial in record.samples.iter().step_by(10) {
        let field = tissue.field(arterial);
        let net = iface.net_element_pressure(field.pressure_at(0.0, 0.0));
        let caps = chip.capacitances(&[net; 4]).unwrap();
        for c in caps {
            max_u = max_u.max(chip.frontend().input_fraction(c).abs());
        }
    }
    assert!(
        max_u < 0.9,
        "hypertensive swing must stay inside the stable range, peak |u| = {max_u}"
    );
    assert!(
        max_u > 0.001,
        "the signal must be measurable, peak |u| = {max_u}"
    );
}

/// Unit conversions agree across crate boundaries.
#[test]
fn unit_newtypes_are_shared_not_duplicated() {
    // One Farads/Volts/Pascals family is used everywhere — these
    // assignments only compile if the types are the same.
    let c: Farads = SensorArray::paper_ideal().reference_capacitance();
    let fe = CapacitiveFrontEnd::paper_default(c);
    let _: Volts = fe.vref();
    let p: Pascals = MillimetersHg(100.0).into();
    let back: MillimetersHg = p.into();
    assert!((back.value() - 100.0).abs() < 1e-9);
}

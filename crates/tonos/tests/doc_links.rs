//! Markdown link checker for the repo's documentation set.
//!
//! Every relative link in the tracked top-level documents must resolve
//! to a file that actually exists (anchors are stripped; external
//! `http(s):`/`mailto:` links are out of scope). This is the CI
//! link-check gate: a renamed file or a typo'd `[spec](PROTOCOL.md)`
//! fails here, not in a reader's browser.

use std::path::{Path, PathBuf};

/// Repo root, resolved from this crate's manifest directory.
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/tonos sits two levels below the repo root")
        .to_path_buf()
}

/// The documents under check. Deliberately explicit: a new document
/// joins the gate by being added here.
const DOCS: &[&str] = &[
    "README.md",
    "ARCHITECTURE.md",
    "DESIGN.md",
    "PROTOCOL.md",
    "ROADMAP.md",
    "CHANGELOG.md",
    "EXPERIMENTS.md",
];

/// Extracts `(link_text, target)` pairs from inline markdown links,
/// skipping fenced code blocks and images.
fn links(markdown: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut in_fence = false;
    for line in markdown.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let bytes = line.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            // Find `[text](target)`, ignoring images (`![`).
            if bytes[i] == b'[' && (i == 0 || bytes[i - 1] != b'!') {
                if let Some(close) = line[i..].find("](") {
                    let text = &line[i + 1..i + close];
                    let rest = &line[i + close + 2..];
                    if let Some(end) = rest.find(')') {
                        out.push((text.to_string(), rest[..end].to_string()));
                        i += close + 2 + end;
                        continue;
                    }
                }
            }
            i += 1;
        }
    }
    out
}

#[test]
fn every_relative_doc_link_resolves() {
    let root = repo_root();
    let mut broken = Vec::new();
    for doc in DOCS {
        let path = root.join(doc);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        for (label, target) in links(&text) {
            let target = target.trim();
            if target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with("mailto:")
            {
                continue;
            }
            // Strip anchors; a bare `#section` link is internal.
            let file = target.split('#').next().unwrap_or("");
            if file.is_empty() {
                continue;
            }
            let resolved = path.parent().unwrap().join(file);
            if !resolved.exists() {
                broken.push(format!(
                    "{doc}: [{label}]({target}) -> {}",
                    resolved.display()
                ));
            }
        }
    }
    assert!(
        broken.is_empty(),
        "broken relative links:\n{}",
        broken.join("\n")
    );
}

#[test]
fn the_wire_spec_is_reachable_from_readme_and_architecture() {
    // The PR's documentation contract: the normative wire spec is
    // linked from both entry-point documents.
    let root = repo_root();
    for doc in ["README.md", "ARCHITECTURE.md"] {
        let text = std::fs::read_to_string(root.join(doc)).unwrap();
        assert!(
            links(&text)
                .iter()
                .any(|(_, t)| t.split('#').next() == Some("PROTOCOL.md")),
            "{doc} must link to PROTOCOL.md"
        );
    }
}

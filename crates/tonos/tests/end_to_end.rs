//! End-to-end integration tests spanning all crates: the paper's two
//! headline experiments plus pipeline determinism.

use tonos::analog::modulator::PAPER_SAMPLE_RATE_HZ;
use tonos::dsp::metrics::DynamicMetrics;
use tonos::dsp::spectrum::Spectrum;
use tonos::dsp::window::Window;
use tonos::mems::units::Volts;
use tonos::physio::patient::PatientProfile;
use tonos::system::config::SystemConfig;
use tonos::system::monitor::BloodPressureMonitor;
use tonos::system::readout::ReadoutSystem;

/// The Fig. 7 claim: the complete converter (modulator + SINC³ + FIR +
/// 12-bit output) achieves SNR > 72 dB on a near-full-scale sine.
#[test]
fn fig7_snr_floor_holds_end_to_end() {
    let mut system = ReadoutSystem::new(SystemConfig::characterization_default()).unwrap();
    let n_out = 2048;
    let out_rate = system.output_rate_hz();
    let tone = Window::coherent_frequency(out_rate, n_out, 15.625);
    let settle = system.settling_frames() + 8;
    let n_in = system.osr() * (n_out + settle);
    let stimulus: Vec<Volts> = (0..n_in)
        .map(|i| {
            let t = i as f64 / PAPER_SAMPLE_RATE_HZ;
            Volts(0.85 * 2.5 * (2.0 * std::f64::consts::PI * tone * t).sin())
        })
        .collect();
    let out = system.acquire_voltage(&stimulus);
    let spectrum =
        Spectrum::from_signal(&out[out.len() - n_out..], out_rate, Window::Hann).unwrap();
    let metrics = DynamicMetrics::from_spectrum(&spectrum).unwrap();
    assert!(
        metrics.snr_db > 72.0,
        "paper floor violated: SNR {:.2} dB",
        metrics.snr_db
    );
    assert!(
        metrics.enob > 11.0,
        "12-bit converter must deliver > 11 effective bits, got {:.2}",
        metrics.enob
    );
    // Noise shaping sanity: the bottom quarter of the band carries less
    // noise than the top quarter (rising shaped-noise skirt).
    let quarter = spectrum.len() / 4;
    let peak = spectrum.peak_bin().unwrap();
    let low_band = spectrum.band_power(peak + 5, quarter);
    let high_band = spectrum.band_power(spectrum.len() - quarter, spectrum.len() - 1);
    assert!(
        high_band > low_band,
        "noise floor must rise toward Nyquist: {low_band:.3e} vs {high_band:.3e}"
    );
}

/// The Fig. 9 claim: a continuous, cuff-calibrated blood-pressure
/// waveform with beat-resolved systole/diastole.
#[test]
fn fig9_monitoring_session_tracks_ground_truth() {
    let mut monitor = BloodPressureMonitor::new(
        SystemConfig::paper_default(),
        PatientProfile::normotensive(),
    )
    .unwrap()
    .with_scan_window(150);
    let session = monitor.run(6.0).unwrap();
    assert!(session.errors.matched_beats >= 5);
    assert!(
        session.errors.systolic_mae < 8.0,
        "systolic MAE {:.2}",
        session.errors.systolic_mae
    );
    assert!(
        session.errors.diastolic_mae < 8.0,
        "diastolic MAE {:.2}",
        session.errors.diastolic_mae
    );
    assert!(session.errors.pulse_rate_error_bpm < 6.0);
    // The calibrated waveform must live in the clinical band.
    let vals: Vec<f64> = session.calibrated.iter().map(|p| p.value()).collect();
    let max = vals.iter().copied().fold(f64::MIN, f64::max);
    let min = vals.iter().copied().fold(f64::MAX, f64::min);
    assert!((95.0..150.0).contains(&max), "systolic envelope {max}");
    assert!((50.0..100.0).contains(&min), "diastolic envelope {min}");
}

/// Same seeds, same bits: the whole stack is deterministic.
#[test]
fn full_pipeline_is_deterministic() {
    let run = || {
        let mut monitor =
            BloodPressureMonitor::new(SystemConfig::paper_default(), PatientProfile::hypotensive())
                .unwrap()
                .with_scan_window(120);
        monitor.run(4.5).unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.raw, b.raw);
    assert_eq!(a.scan.best, b.scan.best);
    assert_eq!(a.calibration, b.calibration);
    assert_eq!(a.errors.matched_beats, b.errors.matched_beats);
}

/// The output rate advertised by the config is what the pipeline delivers.
#[test]
fn output_rate_is_exactly_one_sample_per_frame() {
    let mut system = ReadoutSystem::new(SystemConfig::paper_default()).unwrap();
    let frame = vec![tonos::mems::units::Pascals(0.0); 4];
    for _ in 0..50 {
        let _ = system.push_frame(&frame).unwrap();
    }
    // 50 frames at 1 kS/s = 50 ms of data; no samples lost or duplicated
    // (push_frame returns exactly one sample each, enforced by its
    // signature — this test asserts it does not error over time).
}

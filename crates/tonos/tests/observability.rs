//! Cross-crate telemetry integration: one registry observing the whole
//! monitoring pipeline, with exact frame accounting.

use tonos::physio::patient::PatientProfile;
use tonos::system::config::SystemConfig;
use tonos::system::monitor::BloodPressureMonitor;
use tonos::system::stream::{AlarmLimits, OnlineAnalyzer};
use tonos::telemetry::{names, Registry, Severity};

fn instrumented_session(
    registry: &Registry,
) -> (
    tonos::system::monitor::MonitoringSession,
    BloodPressureMonitor,
) {
    let mut monitor = BloodPressureMonitor::new(
        SystemConfig::paper_default(),
        PatientProfile::normotensive(),
    )
    .unwrap()
    .with_scan_window(150)
    .with_telemetry(registry.telemetry());
    let session = monitor.run(6.0).unwrap();
    (session, monitor)
}

#[test]
fn every_frame_is_a_settled_sample_or_a_discard() {
    let registry = Registry::new();
    let (session, monitor) = instrumented_session(&registry);
    let snapshot = registry.snapshot();
    let counter = |name: &str| snapshot.counter(name).unwrap_or(0);

    // The exact accounting identity.
    let frames_in = counter(names::READOUT_FRAMES_IN);
    let samples_out = counter(names::READOUT_SAMPLES_OUT);
    let discarded = counter(names::READOUT_SETTLING_DISCARDED);
    assert_eq!(frames_in, samples_out + discarded, "{snapshot:?}");

    // And we know each term in closed form. The scan measures all four
    // elements plus a winner re-select (5 selections, each discarding one
    // settling window); the acquisition converts the rest of the record.
    let sys = monitor.system();
    let settle = sys.settling_frames() as u64;
    let layout_len = 4u64;
    let window = 150u64;
    let scan_frames = layout_len * (settle + window) + (settle + 1);
    let acquired = session.raw.len() as u64;
    assert_eq!(frames_in, scan_frames + acquired);
    assert_eq!(discarded, (layout_len + 1) * settle);
    assert_eq!(counter(names::CHIP_ELEMENT_SELECTIONS), layout_len + 1);

    // The substrate bridge is consistent with the frame count: OSR
    // modulator clocks and decimator inputs per frame, one output each.
    let osr = sys.osr() as u64;
    assert_eq!(counter(names::MODULATOR_STEPS), frames_in * osr);
    assert_eq!(counter(names::DECIMATOR_SAMPLES_IN), frames_in * osr);
    assert_eq!(counter(names::DECIMATOR_SAMPLES_OUT), frames_in);

    // Session-stage observability: beats counted, all four spans timed.
    assert_eq!(
        counter(names::MONITOR_BEATS),
        session.analysis.beats.len() as u64
    );
    assert!(counter(names::MONITOR_BEATS) >= 5);
    for span in [
        names::SPAN_SCAN,
        names::SPAN_ACQUISITION,
        names::SPAN_CALIBRATION,
        names::SPAN_ANALYSIS,
    ] {
        let h = snapshot
            .histogram(span)
            .unwrap_or_else(|| panic!("{span} missing"));
        assert_eq!(h.count, 1, "{span}");
    }
    let h = snapshot.histogram(names::MONITOR_BEAT_INTERVAL_S).unwrap();
    assert_eq!(h.count as usize + 1, session.analysis.beats.len());

    // Energy integrates the per-cycle cost of the executed clocks.
    let energy = snapshot.gauge(names::CHIP_ENERGY_J).unwrap();
    let expected = monitor.system().chip().energy_for_cycles(frames_in * osr);
    assert!((energy - expected).abs() < 1e-12);

    // The health report exposes the same numbers.
    let health = registry.health();
    assert_eq!(health.frames_in, frames_in);
    assert_eq!(
        health.discard_ratio,
        Some(discarded as f64 / frames_in as f64)
    );
}

#[test]
fn analyzer_alarms_reach_the_journal() {
    let registry = Registry::new();
    let mut monitor = BloodPressureMonitor::new(
        SystemConfig::paper_default(),
        PatientProfile::hypertensive(),
    )
    .unwrap()
    .with_scan_window(150)
    .with_telemetry(registry.telemetry());
    let session = monitor.run(6.0).unwrap();

    let mut analyzer = OnlineAnalyzer::new(session.sample_rate, AlarmLimits::adult())
        .unwrap()
        .with_telemetry(registry.telemetry());
    let _ = analyzer.push_block(
        &session
            .calibrated
            .iter()
            .map(|p| p.value())
            .collect::<Vec<_>>(),
    );

    let snapshot = registry.snapshot();
    let alarms = snapshot.counter(names::ANALYZER_ALARMS).unwrap();
    assert!(
        alarms >= 1,
        "a 170 mmHg patient must trip the 160 mmHg limit"
    );
    let critical: Vec<_> = snapshot
        .events
        .iter()
        .filter(|e| e.severity == Severity::Critical && e.source == "analyzer")
        .collect();
    assert!(!critical.is_empty());
    assert!(critical[0].message.contains("hypertension"));
    assert!(registry.health().critical_events >= 1);
}

#[test]
fn telemetry_does_not_perturb_the_signal_path() {
    // Sessions are deterministic; attaching telemetry must not change a
    // single output sample.
    let plain = BloodPressureMonitor::new(
        SystemConfig::paper_default(),
        PatientProfile::normotensive(),
    )
    .unwrap()
    .with_scan_window(150)
    .run(5.0)
    .unwrap();
    let registry = Registry::new();
    let observed = BloodPressureMonitor::new(
        SystemConfig::paper_default(),
        PatientProfile::normotensive(),
    )
    .unwrap()
    .with_scan_window(150)
    .with_telemetry(registry.telemetry())
    .run(5.0)
    .unwrap();
    assert_eq!(plain.raw, observed.raw);
    assert_eq!(plain.calibration, observed.calibration);
}

//! Failure injection: the system must fail loudly and typed, not
//! silently produce garbage.

use tonos::mems::units::{MillimetersHg, Pascals};
use tonos::physio::artifact::ArtifactGenerator;
use tonos::physio::cuff::CuffDevice;
use tonos::physio::patient::PatientProfile;
use tonos::physio::PhysioError;
use tonos::system::analyze::detect_beats;
use tonos::system::config::{ChipConfig, SystemConfig};
use tonos::system::readout::ReadoutSystem;
use tonos::system::SystemError;

/// Crushing loads collapse the membrane and surface as a typed MEMS
/// error through the whole stack.
#[test]
fn collapse_loads_error_through_the_stack() {
    let mut system = ReadoutSystem::new(SystemConfig::paper_default()).unwrap();
    let crush = vec![Pascals(5.0e6); 4]; // ~37,500 mmHg
    let err = system.push_frame(&crush).unwrap_err();
    assert!(matches!(err, SystemError::Mems(_)), "got {err}");
    // The system remains usable afterwards with sane loads.
    let ok = system.push_frame(&[Pascals(0.0); 4]);
    assert!(ok.is_ok());
}

/// Beyond-full-scale electrical inputs overload the modulator and the
/// overload telltale reports it; the system recovers after reset.
#[test]
fn modulator_overload_is_reported_and_recoverable() {
    let mut config = SystemConfig::paper_default();
    // Make the front end absurdly sensitive so a modest pressure
    // overloads the loop.
    config.chip.feedback_capacitance = tonos::mems::units::Farads::from_femtofarads(0.05);
    let mut system = ReadoutSystem::new(config).unwrap();
    let frame = vec![Pascals::from_mmhg(MillimetersHg(300.0)); 4];
    for _ in 0..40 {
        let _ = system.push_frame(&frame).unwrap();
    }
    assert!(
        system.chip().overload_ratio() > 0.01,
        "overload must be flagged, ratio {}",
        system.chip().overload_ratio()
    );
    system.reset();
    assert_eq!(system.chip().overload_ratio(), 0.0);
}

/// A busy cuff refuses to measure and says when to retry.
#[test]
fn busy_cuff_refuses_politely() {
    let mut cuff = CuffDevice::clinical(1);
    cuff.measure(0.0, MillimetersHg(120.0), MillimetersHg(80.0))
        .unwrap();
    match cuff.measure(5.0, MillimetersHg(120.0), MillimetersHg(80.0)) {
        Err(PhysioError::CuffBusy { ready_in_s }) => {
            assert!((ready_in_s - 25.0).abs() < 1e-9);
        }
        other => panic!("expected CuffBusy, got {other:?}"),
    }
}

/// Motion artifacts distort but do not break beat detection: the rate
/// estimate stays within a few bpm.
#[test]
fn beat_detection_survives_motion_artifacts() {
    let record = PatientProfile::normotensive().record(250.0, 30.0).unwrap();
    let mut samples = record.samples.clone();
    // Inject moderate artifacts (15 mmHg spikes ~ every 5 s).
    ArtifactGenerator::new(0.2, 15.0, 9)
        .unwrap()
        .apply(&mut samples, 250.0);
    let x: Vec<f64> = samples.iter().map(|p| p.value()).collect();
    let beats = detect_beats(&x, 250.0).unwrap();
    let clean_rate = record.mean_heart_rate_bpm();
    let first = beats.first().unwrap().peak_index as f64;
    let last = beats.last().unwrap().peak_index as f64;
    let rate = 60.0 * 250.0 * (beats.len() - 1) as f64 / (last - first);
    assert!(
        (rate - clean_rate).abs() < 8.0,
        "rate {rate:.1} vs clean {clean_rate:.1} under artifacts"
    );
}

/// Invalid configurations are rejected at construction, not at runtime.
#[test]
fn invalid_configurations_fail_fast() {
    let mut bad = ChipConfig::paper_default();
    bad.capacitance_grid = 3;
    assert!(matches!(
        tonos::system::chip::SensorChip::new(bad),
        Err(SystemError::Config(_))
    ));

    let mut bad = SystemConfig::paper_default();
    bad.decimator.osr = 100; // valid for the decimator alone…
    bad.chip.sample_rate_hz = 100_000.0; // …but rates now disagree? keep consistent:
    bad.decimator.input_rate = 128_000.0;
    assert!(ReadoutSystem::new(bad).is_err());
}

/// Flat (non-pulsatile) signals produce a typed no-beats error rather
/// than fabricated beats.
#[test]
fn flat_signals_do_not_fabricate_beats() {
    let err = detect_beats(&vec![42.0; 5000], 1000.0).unwrap_err();
    assert!(matches!(err, SystemError::NoBeatsDetected { .. }));
}

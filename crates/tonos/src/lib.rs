//! # tonos — umbrella crate for the CMOS tactile blood-pressure sensor stack
//!
//! A behavioral, laptop-scale reproduction of
//! *"A CMOS-Based Tactile Sensor for Continuous Blood Pressure Monitoring"*
//! (Kirstein et al., DATE'05): MEMS membrane transducers, a second-order
//! single-bit ΣΔ readout, the SINC³+FIR decimation "FPGA", physiological
//! pressure sources, and the end-to-end monitoring system.
//!
//! This crate re-exports the workspace members under stable names:
//!
//! * [`mems`] — membrane mechanics and capacitive transduction
//! * [`analog`] — switched-capacitor ΣΔ modulator, mux, noise, power
//! * [`dsp`] — decimation filters, FFT, spectral metrics
//! * [`physio`] — arterial waveforms, tissue coupling, cuff reference
//! * [`system`] — the chip + readout + calibration + analysis stack
//! * [`telemetry`] — counters, histograms, spans, and the event journal
//!   for observing the whole signal path (see `examples/observability.rs`)
//! * [`fleet`] — many concurrent monitoring sessions on a worker pool,
//!   with failure isolation and fleet-wide telemetry rollup (see
//!   `examples/fleet_monitor.rs`)
//! * [`link`] — the chip-to-host boundary: wire framing, lossy-transport
//!   fault injection, the gap-concealing host pipeline, and a
//!   concurrent TCP ingest server (see `examples/host_ingest.rs`)
//! * [`scope`] — the live telemetry plane: a flight recorder over any
//!   registry plus an HTTP endpoint serving Prometheus `/metrics`,
//!   `/health`, `/links`, and `/flight` (see `examples/ops_dashboard.rs`)
//! * [`historian`] — the storage plane: an append-only segmented
//!   session store with crash recovery, tiered downsampling, and the
//!   measurement-session HTTP API (see `examples/historian_replay.rs`)
//!
//! See `examples/quickstart.rs` for the five-minute tour and
//! `ARCHITECTURE.md` for the end-to-end dataflow.

pub use tonos_analog as analog;
pub use tonos_core as system;
pub use tonos_dsp as dsp;
pub use tonos_fleet as fleet;
pub use tonos_historian as historian;
pub use tonos_link as link;
pub use tonos_mems as mems;
pub use tonos_physio as physio;
pub use tonos_scope as scope;
pub use tonos_telemetry as telemetry;

/// Compiles every fenced Rust block in the repository README as a
/// doctest, so the quickstart can never rot.
#[cfg(doctest)]
#[doc = include_str!("../../../README.md")]
pub struct ReadmeDoctests;

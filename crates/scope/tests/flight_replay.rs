//! Flight-recorder replay over a fleet-shaped counter history: two and
//! a half minutes of simulated fleet activity on a fake clock, replayed
//! exactly over the retained two-minute window.

use std::sync::Arc;
use std::time::Duration;

use tonos_scope::{FlightRecorder, RecorderConfig};
use tonos_telemetry::{names, FakeClock, Registry};

#[test]
fn recorder_replays_sixty_plus_seconds_of_fleet_counter_history() {
    const TOTAL_TICKS: u64 = 150; // 2.5 min of 1 Hz ticks
    const RETENTION_S: u64 = 120;

    let clock = Arc::new(FakeClock::new());
    let registry = Registry::with_clock(clock.clone());
    let t = registry.telemetry();
    let frames = t.counter(names::LINK_FRAMES_RX);
    let completed = t.counter(names::FLEET_SESSIONS_COMPLETED);
    let resets = t.counter(names::LINK_STREAM_RESETS);

    let mut recorder = FlightRecorder::new(
        registry.clone(),
        RecorderConfig {
            interval: Duration::from_secs(1),
            retention: Duration::from_secs(RETENTION_S),
        },
    );

    // Drive a deterministic fleet history and remember what each tick
    // should replay to: frames stream steadily, a session completes
    // every 5 s, a burst of stream resets hits at t = 100 s.
    let mut expected_frames = Vec::new();
    let mut expected_completed = Vec::new();
    for tick in 0..TOTAL_TICKS {
        frames.add(128);
        if tick % 5 == 4 {
            completed.inc();
        }
        if tick == 100 {
            resets.add(3);
        }
        recorder.tick();
        let at = Duration::from_secs(tick);
        expected_frames.push((at, 128 * (tick + 1)));
        expected_completed.push((at, (tick + 1) / 5));
        clock.advance(Duration::from_secs(1));
    }

    // The ring holds exactly the last two minutes.
    assert_eq!(recorder.ticks(), TOTAL_TICKS);
    assert_eq!(recorder.len(), RETENTION_S as usize);
    let (from, to) = recorder.span().unwrap();
    assert_eq!(from, Duration::from_secs(TOTAL_TICKS - RETENTION_S));
    assert_eq!(to, Duration::from_secs(TOTAL_TICKS - 1));
    assert!(
        (to - from) >= Duration::from_secs(60),
        "retained window shorter than a minute"
    );

    // Replay matches the driven history exactly over the whole window —
    // including the first retained ticks, whose values predate the ring
    // (eviction folded them into the base).
    let window = (TOTAL_TICKS - RETENTION_S) as usize;
    assert_eq!(
        recorder.counter_series(names::LINK_FRAMES_RX),
        expected_frames[window..]
    );
    assert_eq!(
        recorder.counter_series(names::FLEET_SESSIONS_COMPLETED),
        expected_completed[window..]
    );

    // The reset burst replays at its exact second: 0 before t = 100 s,
    // 3 from then on.
    let reset_series = recorder.counter_series(names::LINK_STREAM_RESETS);
    for &(at, value) in &reset_series {
        let want = if at >= Duration::from_secs(100) { 3 } else { 0 };
        assert_eq!(value, want, "stream resets wrong at {at:?}");
    }

    // Change compression held: a tick carries the steady counter and, on
    // most seconds, nothing else.
    let tail = recorder.tail(5);
    assert_eq!(tail.len(), 5);
    for frame in &tail {
        assert!(frame.changed() >= 1 && frame.changed() <= 2);
    }
}

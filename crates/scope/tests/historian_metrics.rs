//! The historian's telemetry surfaced through the scope plane: every
//! `historian.*` instrument must show up in the `/metrics` exposition
//! and be capturable by the flight recorder — the storage layer is
//! observable through the same endpoints as the rest of the system.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use tonos_historian::{Historian, HubConfig, MeasurementHub, StoreConfig};
use tonos_mems::units::MillimetersHg;
use tonos_scope::{FlightRecorder, RecorderConfig, ScopeServer, ScopeSources};
use tonos_telemetry::{names, Registry};

fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to scope server");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    response
        .split_once("\r\n\r\n")
        .expect("response has headers")
        .1
        .to_string()
}

#[test]
fn historian_counters_reach_metrics_and_the_flight_recorder() {
    let dir = tonos_historian::scratch_dir("scope-metrics");
    let registry = Registry::new();
    let telemetry = registry.telemetry();

    // Drive the store through a real session so every instrument
    // family moves: appends, seals, reads, tier records, recovery.
    let config = StoreConfig {
        segment_bytes: 32 * 1024,
        tier_block: 256,
        ..StoreConfig::default()
    };
    let (historian, _) = Historian::open(&dir, config, &telemetry).unwrap();
    let hub = MeasurementHub::new(historian.clone(), HubConfig::default(), &telemetry);
    let id = hub.prepare(1);
    hub.start(id).unwrap();
    for k in 0..20u64 {
        let raw: Vec<f64> = (0..512).map(|i| (k * 512 + i) as f64).collect();
        let cal: Vec<MillimetersHg> = raw.iter().map(|&r| MillimetersHg(r * 0.1)).collect();
        historian
            .append(1, id, k * 512, 1000.0, &raw, &cal)
            .unwrap();
    }
    historian.compact().unwrap();
    let reader = historian.reader();
    reader.read_range(1, id, 0, 20 * 512, 64).unwrap();

    let recorder = std::sync::Arc::new(std::sync::Mutex::new(FlightRecorder::new(
        registry.clone(),
        RecorderConfig {
            interval: Duration::from_millis(1),
            retention: Duration::from_secs(5),
        },
    )));
    recorder.lock().unwrap().tick();

    let server = ScopeServer::bind(
        "127.0.0.1:0",
        ScopeSources::registry(registry).with_recorder(std::sync::Arc::clone(&recorder)),
    )
    .unwrap();
    let body = http_get(server.local_addr(), "/metrics");

    // Counters (`_total`), gauges (bare), and the fsync histogram all
    // present and nonzero where the workload moved them.
    for metric in [
        "tonos_historian_records_appended_total",
        "tonos_historian_bytes_appended_total",
        "tonos_historian_reads_total",
        "tonos_historian_bytes_read_total",
        "tonos_historian_segments_sealed_total",
        "tonos_historian_compactions_total",
        "tonos_historian_tier_records_total",
        "tonos_historian_sessions_prepared_total",
        "tonos_historian_sessions_started_total",
    ] {
        let line = body
            .lines()
            .find(|l| l.starts_with(metric) && !l.starts_with('#'))
            .unwrap_or_else(|| panic!("{metric} missing from /metrics:\n{body}"));
        let value: f64 = line.split_whitespace().last().unwrap().parse().unwrap();
        assert!(value > 0.0, "{metric} never moved: {line}");
    }
    for gauge in ["tonos_historian_segments", "tonos_historian_bytes"] {
        assert!(
            body.lines()
                .any(|l| l.starts_with(gauge) && !l.contains("_total")),
            "{gauge} missing from /metrics"
        );
    }
    assert!(
        body.contains("tonos_historian_fsync_s_bucket"),
        "fsync histogram missing"
    );

    // The flight recorder captured the same series by name.
    let rec = recorder.lock().unwrap();
    let series = rec.series_names();
    for name in [
        names::HISTORIAN_APPENDS,
        names::HISTORIAN_SEALS,
        names::HISTORIAN_COMPACTIONS,
        names::HISTORIAN_SESSIONS_PREPARED,
    ] {
        assert!(
            series.iter().any(|s| s == name),
            "{name} missing from recorder series: {series:?}"
        );
    }
    let appended = rec.counter_series(names::HISTORIAN_APPENDS);
    assert!(!appended.is_empty());
    assert!(appended.last().unwrap().1 >= 20);
    drop(rec);
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

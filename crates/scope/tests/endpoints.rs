//! The acceptance scenario: a live [`LinkServer`] ingesting eight
//! devices over a faulty transport while a [`ScopeServer`] wired to its
//! fleet registry and link directory serves `/metrics`, `/health`, and
//! `/links` — all queried mid-ingest over real HTTP.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use tonos_link::{FaultConfig, FaultyTransport, LinkServer, LinkServerConfig};
use tonos_scope::{FlightRecorder, RecorderConfig, ScopeServer, ScopeSources};

const DEVICES: usize = 8;
const FRAME_BITS: usize = 1024;
const PHASE1_FRAMES: u32 = 20;
const PHASE2_FRAMES: u32 = 30;

fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to scope server");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("response has a header terminator");
    (head.to_string(), body.to_string())
}

/// Polls an endpoint until `pred` accepts its body (~10 s), panicking
/// with the last body on timeout.
fn wait_body(addr: SocketAddr, path: &str, what: &str, pred: impl Fn(&str) -> bool) -> String {
    let mut last = String::new();
    for _ in 0..1_000 {
        let (head, body) = http_get(addr, path);
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{path}: {head}");
        if pred(&body) {
            return body;
        }
        last = body;
        thread::sleep(Duration::from_millis(10));
    }
    panic!("timed out waiting for {what}; last {path} body: {last}");
}

/// Every non-comment, non-blank line must be `name[{labels}] value`
/// with a metric name in the Prometheus grammar and a parseable value.
fn assert_parseable_prometheus(body: &str) {
    let mut samples = 0;
    for line in body.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("sample line without a value: {line:?}");
        });
        let name = series.split('{').next().unwrap();
        assert!(
            !name.is_empty()
                && name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "bad metric name in line: {line:?}"
        );
        assert!(
            value.parse::<f64>().is_ok() || matches!(value, "NaN" | "+Inf" | "-Inf"),
            "unparseable value in line: {line:?}"
        );
        samples += 1;
    }
    assert!(samples >= 10, "suspiciously few samples: {samples}");
}

#[test]
fn live_endpoints_observe_eight_faulty_devices_mid_ingest() {
    let link = LinkServer::bind(
        "127.0.0.1:0",
        LinkServerConfig {
            workers: 2,
            ..LinkServerConfig::default()
        },
    )
    .unwrap();
    let ingest_addr = link.local_addr();

    // The scope endpoint watches the link server's fleet registry and
    // live directory, with a flight recorder riding along.
    let recorder = Arc::new(Mutex::new(FlightRecorder::new(
        link.fleet_registry().clone(),
        RecorderConfig {
            interval: Duration::from_millis(20),
            retention: Duration::from_secs(60),
        },
    )));
    let scope = ScopeServer::bind(
        "127.0.0.1:0",
        ScopeSources::registry(link.fleet_registry().clone())
            .with_directory(link.directory())
            .with_recorder(Arc::clone(&recorder)),
    )
    .unwrap();
    let scope_addr = scope.local_addr();

    // Eight channel-gated devices (same shape as the link crate's
    // mid-ingest test): clean frames, hold; forged outage + noisy
    // transport, hold; hang up.
    let mut gates = Vec::new();
    let clients: Vec<_> = (0..DEVICES)
        .map(|i| {
            let (tx, rx) = mpsc::channel::<()>();
            gates.push(tx);
            thread::spawn(move || {
                let bits: tonos_dsp::bits::PackedBits =
                    (0..FRAME_BITS).map(|i| i % 3 == 0).collect();
                let frame = |seq: u32, clock: u64| -> Vec<u8> {
                    tonos_dsp::frame::Frame::bitstream(0, seq, clock, &bits)
                        .unwrap()
                        .encode()
                };
                let mut stream = TcpStream::connect(ingest_addr).unwrap();
                let mut clock = 0u64;
                for seq in 0..PHASE1_FRAMES {
                    stream.write_all(&frame(seq, clock)).unwrap();
                    clock += FRAME_BITS as u64;
                }
                stream.flush().unwrap();
                rx.recv().unwrap();
                // Outage: seq and clock jump past the concealment
                // clamp (stream reset), then a lossy wire.
                clock += 100_000_000;
                let seq_base = PHASE1_FRAMES + 1_000;
                let mut wire = FaultyTransport::new(FaultConfig::noisy(), 0x5C0BE + i as u64);
                for seq in seq_base..(seq_base + PHASE2_FRAMES) {
                    let encoded = frame(seq, clock);
                    clock += FRAME_BITS as u64;
                    let mangled = if seq == seq_base {
                        encoded
                    } else {
                        wire.transmit(&encoded)
                    };
                    stream.write_all(&mangled).unwrap();
                }
                stream.write_all(&wire.flush()).unwrap();
                stream.flush().unwrap();
                rx.recv().unwrap();
            })
        })
        .collect();

    // Phase 1 over HTTP: /links shows eight live connections with
    // frames flowing and no resets yet.
    let links = wait_body(scope_addr, "/links", "eight live links with frames", |b| {
        b.matches("\"live\":true").count() == DEVICES && !b.contains("\"frames\":0")
    });
    assert_eq!(links.matches("\"stream_resets\":0").count(), DEVICES);

    // /metrics is parseable and carries the live directory gauges.
    let metrics = wait_body(scope_addr, "/metrics", "live gauges in /metrics", |b| {
        b.contains(&format!("tonos_links_live {DEVICES}"))
    });
    assert_parseable_prometheus(&metrics);
    assert!(metrics.contains("tonos_uptime_seconds"));
    // Engine counters are live before any session rolls up.
    assert!(metrics.contains(&format!("tonos_link_connections_total {DEVICES}")));
    let frames_line = metrics
        .lines()
        .find(|l| l.starts_with("tonos_links_frames "))
        .expect("live frame gauge present");
    let live_frames: u64 = frames_line.split(' ').nth(1).unwrap().parse().unwrap();
    assert!(
        live_frames >= (DEVICES as u32 * PHASE1_FRAMES) as u64,
        "live frame sum {live_frames} below phase-1 floor"
    );

    // /health reflects the same directory.
    let health = wait_body(scope_addr, "/health", "live links in /health", |b| {
        b.contains(&format!("\"links_live\":{DEVICES}"))
    });
    assert!(health.starts_with("{\"status\":\"ok\""));

    // Release the outage and watch fault counters move on LIVE links —
    // through the HTTP endpoint, not an in-process query.
    for gate in &gates {
        gate.send(()).unwrap();
    }
    let links = wait_body(scope_addr, "/links", "resets on live links", |b| {
        b.matches("\"live\":true").count() == DEVICES && !b.contains("\"stream_resets\":0")
    });
    assert_eq!(links.matches("\"skipped_samples\":0").count(), 0);
    wait_body(scope_addr, "/metrics", "reset gauge catches up", |b| {
        b.lines()
            .find(|l| l.starts_with("tonos_links_stream_resets "))
            .and_then(|l| l.split(' ').nth(1))
            .and_then(|v| v.parse::<u64>().ok())
            .is_some_and(|v| v >= DEVICES as u64)
    });

    // Hang up; entries flip to closed but stay listed, and the fleet
    // registry gains the rolled-up session counters (the accept loop
    // polls finished sessions, so no shutdown is needed to see them).
    for gate in &gates {
        gate.send(()).unwrap();
    }
    for client in clients {
        client.join().unwrap();
    }
    wait_body(scope_addr, "/links", "all entries closed", |b| {
        b.matches("\"live\":false").count() == DEVICES
    });
    wait_body(
        scope_addr,
        "/metrics",
        "rolled-up resets in /metrics",
        |b| {
            b.lines()
                .find(|l| l.starts_with("tonos_link_stream_resets_total "))
                .and_then(|l| l.split(' ').nth(1))
                .and_then(|v| v.parse::<u64>().ok())
                .is_some_and(|v| v >= DEVICES as u64)
        },
    );

    // The recorder ticked through all of it and holds replayable
    // history of the fleet registry.
    let (_, flight) = http_get(scope_addr, "/flight");
    assert!(flight.starts_with("{\"enabled\":true"), "flight: {flight}");
    // On a fast machine the whole ingest can outrun a 20 ms tick
    // interval, so wait for the accept loop (still running) to
    // accumulate a few ticks rather than asserting a racy minimum.
    for _ in 0..1_000 {
        if recorder.lock().unwrap().ticks() >= 3 {
            break;
        }
        thread::sleep(Duration::from_millis(10));
    }
    {
        let rec = recorder.lock().unwrap();
        assert!(rec.ticks() >= 3, "recorder barely ticked: {}", rec.ticks());
        let series = rec.counter_series("link.connections");
        assert_eq!(
            series.last().map(|&(_, v)| v),
            Some(DEVICES as u64),
            "recorder missed the connection history: {series:?}"
        );
    }

    scope.shutdown();
    let (report, _) = link.shutdown();
    assert_eq!(report.len(), DEVICES);
}

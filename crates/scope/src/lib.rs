//! `tonos-scope` — the live telemetry plane: flight recorder, metrics
//! exposition endpoint, and per-link health queries.
//!
//! `tonos-telemetry` gives every pipeline a registry of counters,
//! gauges, histograms, and a journal; `tonos-link` runs a fleet of
//! ingest sessions against it. What was missing is the *operator's*
//! side: a way to watch a live deployment without stopping it. This
//! crate closes that loop with two pieces, both `std`-only:
//!
//! * [`FlightRecorder`] — a bounded ring of periodic telemetry frames
//!   over one [`Registry`](tonos_telemetry::Registry), change-compressed
//!   (idle ticks cost a timestamp) and clock-injected (deterministic
//!   under `FakeClock`). Replay APIs reconstruct any counter, gauge, or
//!   histogram series over the retained window — the last two minutes of
//!   history when an alarm pages, with a hard memory ceiling.
//! * [`ScopeServer`] — a hand-rolled HTTP/1.1 endpoint serving
//!   `/metrics` (Prometheus text exposition 0.0.4), `/health` (JSON
//!   summary), `/links` (per-connection
//!   [`LinkStatus`](tonos_link::LinkStatus) JSON, mid-ingest included,
//!   via a [`LinkDirectory`](tonos_link::LinkDirectory)), and `/flight`
//!   (recorder ring status). Scrapes never mutate the observed
//!   registry.
//!
//! Wiring it to a running ingest server is three lines:
//!
//! ```no_run
//! use tonos_link::{LinkServer, LinkServerConfig};
//! use tonos_scope::{ScopeServer, ScopeSources};
//!
//! let link = LinkServer::bind("127.0.0.1:9000", LinkServerConfig::default())?;
//! let sources = ScopeSources::registry(link.fleet_registry().clone())
//!     .with_directory(link.directory());
//! let scope = ScopeServer::bind("127.0.0.1:9090", sources)?;
//! println!("scrape http://{}/metrics", scope.local_addr());
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod recorder;
pub mod server;

pub use recorder::{FlightRecorder, RecorderConfig, SeriesFrame};
pub use server::{ScopeServer, ScopeSources};

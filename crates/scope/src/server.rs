//! The exposition endpoint: a hand-rolled HTTP/1.1 server on
//! `std::net` serving live telemetry to scrapers and operators.
//!
//! Routes:
//!
//! * `GET /metrics` — the observed registry's snapshot in Prometheus
//!   text exposition format 0.0.4 (via
//!   [`prometheus_text`]), plus directory-derived
//!   `tonos_links_*` gauges when a [`LinkDirectory`] is attached —
//!   those sum *live* per-connection counters that won't reach the
//!   fleet registry until session rollup.
//! * `GET /health` — a compact JSON health summary derived from the
//!   registry's [`HealthReport`](tonos_telemetry::HealthReport).
//! * `GET /links` — per-connection [`LinkStatus`](tonos_link::LinkStatus)
//!   JSON, mid-ingest included (empty array without a directory).
//! * `GET /flight` — the attached [`FlightRecorder`]'s ring status.
//!
//! The server never mutates the observed registry: a scrape is a read.
//! Connections are handled inline on the accept thread under short
//! read/write timeouts — scrape payloads are small and the handler
//! allocation-light, so a dedicated thread per scrape would buy
//! nothing; the timeouts bound how long a stalled client can hold the
//! loop. The same loop drives the flight recorder's
//! [`maybe_tick`](FlightRecorder::maybe_tick), so attaching a recorder
//! is all it takes to get periodic history capture.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use tonos_link::LinkDirectory;
use tonos_telemetry::{prometheus_text, Registry};

use crate::recorder::FlightRecorder;

/// Accept-loop poll interval (also the recorder-tick granularity).
const POLL: Duration = Duration::from_millis(2);

/// How long a single scrape may stall on a slow client.
const IO_TIMEOUT: Duration = Duration::from_millis(500);

/// Request size cap: a scrape request line + headers, nothing more.
const MAX_REQUEST: usize = 4096;

/// What the endpoint exposes: a registry (required) plus optional
/// live-link directory and flight recorder.
#[derive(Clone)]
pub struct ScopeSources {
    registry: Registry,
    directory: Option<Arc<LinkDirectory>>,
    recorder: Option<Arc<Mutex<FlightRecorder>>>,
}

impl ScopeSources {
    /// Sources exposing only `registry`.
    pub fn registry(registry: Registry) -> Self {
        ScopeSources {
            registry,
            directory: None,
            recorder: None,
        }
    }

    /// Attaches a link directory: `/links` gains per-connection status
    /// and `/metrics` gains live `tonos_links_*` gauges.
    #[must_use]
    pub fn with_directory(mut self, directory: Arc<LinkDirectory>) -> Self {
        self.directory = Some(directory);
        self
    }

    /// Attaches a flight recorder; the accept loop drives its ticks.
    #[must_use]
    pub fn with_recorder(mut self, recorder: Arc<Mutex<FlightRecorder>>) -> Self {
        self.recorder = Some(recorder);
        self
    }
}

impl std::fmt::Debug for ScopeSources {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScopeSources")
            .field("directory", &self.directory.is_some())
            .field("recorder", &self.recorder.is_some())
            .finish_non_exhaustive()
    }
}

/// A running telemetry endpoint.
///
/// Bind with [`ScopeServer::bind`], learn the ephemeral port from
/// [`ScopeServer::local_addr`], stop with [`ScopeServer::shutdown`].
#[derive(Debug)]
pub struct ScopeServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    requests: Arc<AtomicU64>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ScopeServer {
    /// Binds and starts serving. `addr` follows [`TcpListener::bind`]
    /// conventions (`"127.0.0.1:0"` picks an ephemeral port).
    ///
    /// # Errors
    ///
    /// Propagates bind/configuration I/O failures.
    pub fn bind(addr: &str, sources: ScopeSources) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let requests = Arc::new(AtomicU64::new(0));
        let stop_accept = Arc::clone(&stop);
        let req_accept = Arc::clone(&requests);
        let accept_thread =
            thread::spawn(move || accept_loop(&listener, &sources, &stop_accept, &req_accept));
        Ok(ScopeServer {
            addr: local,
            stop,
            requests,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests served so far (any route, errors included).
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::SeqCst)
    }

    /// Stops the accept loop and joins it.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            handle.join().expect("scope accept thread never panics");
        }
    }
}

impl Drop for ScopeServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    sources: &ScopeSources,
    stop: &AtomicBool,
    requests: &AtomicU64,
) {
    while !stop.load(Ordering::SeqCst) {
        if let Some(recorder) = &sources.recorder {
            recorder
                .lock()
                .expect("flight recorder lock poisoned")
                .maybe_tick();
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                requests.fetch_add(1, Ordering::SeqCst);
                // Inline handling: scrapes are tiny; the timeouts bound
                // how long a stalled client can hold the loop.
                let _ = serve(stream, sources);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => thread::sleep(POLL),
            Err(_) => thread::sleep(POLL),
        }
    }
}

/// Reads one request and writes one response; errors only on I/O.
fn serve(mut stream: TcpStream, sources: &ScopeSources) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let request = read_request(&mut stream)?;
    let (status, content_type, body) = match parse_request_line(&request) {
        None => (
            "400 Bad Request",
            "application/json",
            "{\"error\":\"malformed request\"}".to_string(),
        ),
        Some((method, _)) if method != "GET" => (
            "405 Method Not Allowed",
            "application/json",
            "{\"error\":\"method not allowed\"}".to_string(),
        ),
        Some((_, path)) => route(path, sources),
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(response.as_bytes())
}

/// Reads until the header terminator, EOF, timeout, or the size cap.
fn read_request(stream: &mut TcpStream) -> std::io::Result<String> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() >= MAX_REQUEST {
                    break;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                break
            }
            Err(e) => return Err(e),
        }
    }
    Ok(String::from_utf8_lossy(&buf).into_owned())
}

/// `"GET /metrics HTTP/1.1" → ("GET", "/metrics")`, query string
/// stripped. `None` on anything that is not a two-token request line.
fn parse_request_line(request: &str) -> Option<(&str, &str)> {
    let line = request.lines().next()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?;
    let target = parts.next()?;
    let path = target.split('?').next().unwrap_or(target);
    Some((method, path))
}

/// Dispatches a GET to its payload.
fn route(path: &str, sources: &ScopeSources) -> (&'static str, &'static str, String) {
    match path {
        "/metrics" => ("200 OK", "text/plain; version=0.0.4", metrics_body(sources)),
        "/health" => ("200 OK", "application/json", health_body(sources)),
        "/links" => (
            "200 OK",
            "application/json",
            sources
                .directory
                .as_ref()
                .map_or_else(|| "[]".to_string(), |d| d.to_json()),
        ),
        "/flight" => ("200 OK", "application/json", flight_body(sources)),
        _ => (
            "404 Not Found",
            "application/json",
            "{\"error\":\"not found\"}".to_string(),
        ),
    }
}

/// The registry exposition, plus live link gauges when a directory is
/// attached.
fn metrics_body(sources: &ScopeSources) -> String {
    let mut body = prometheus_text(&sources.registry.snapshot());
    if let Some(directory) = &sources.directory {
        let agg = directory.aggregate();
        // Gauges, not counters: these are sums over a mutable directory
        // of live sessions, a complement to the rolled-up
        // `tonos_link_*_total` counters above (which lag by design —
        // session registries fold in only at rollup).
        for (name, help, value) in [
            ("live", "Connections currently ingesting", agg.live),
            ("closed", "Connections that have disconnected", agg.closed),
            (
                "frames",
                "CRC-verified frames across all connections",
                agg.frames,
            ),
            (
                "crc_failures",
                "CRC failures across all connections",
                agg.crc_failures,
            ),
            (
                "gap_events",
                "Gap episodes across all connections",
                agg.gap_events,
            ),
            (
                "clean_samples",
                "Clean output samples across all connections",
                agg.clean_samples,
            ),
            (
                "concealed_samples",
                "Concealed or invalid output samples across all connections",
                agg.concealed_samples,
            ),
            (
                "stream_resets",
                "Stream resets across all connections",
                agg.stream_resets,
            ),
            (
                "skipped_samples",
                "Reset-skipped output samples across all connections",
                agg.skipped_samples,
            ),
            ("alarms", "Alarms across all connections", agg.alarms),
            (
                "reordered_frames",
                "Frames healed by the reorder window across all connections",
                agg.reordered_frames,
            ),
            (
                "retransmits_rx",
                "NAK-recovered retransmitted frames accepted across all connections",
                agg.retransmits_rx,
            ),
            (
                "naks_tx",
                "NAK retransmit requests sent to devices across all connections",
                agg.naks_tx,
            ),
            (
                "handshakes_ok",
                "Verified device handshakes across all connections",
                agg.handshakes_ok,
            ),
            (
                "handshakes_rejected",
                "Rejected (forged or malformed) device handshakes across all connections",
                agg.handshakes_rejected,
            ),
            (
                "unauth_frames",
                "Data frames dropped before authentication across all connections",
                agg.unauth_frames,
            ),
        ] {
            body.push_str(&format!(
                "# HELP tonos_links_{name} {help} (live directory sum).\n\
                 # TYPE tonos_links_{name} gauge\n\
                 tonos_links_{name} {value}\n",
            ));
        }
    }
    body
}

/// The `/health` JSON payload.
fn health_body(sources: &ScopeSources) -> String {
    let h = sources.registry.health();
    let (live, closed) = sources.directory.as_ref().map_or((0, 0), |d| {
        let agg = d.aggregate();
        (agg.live, agg.closed)
    });
    format!(
        concat!(
            "{{\"status\":\"ok\",\"uptime_s\":{},\"modulator_steps\":{},",
            "\"frames_in\":{},\"samples_out\":{},\"beats\":{},\"alarms\":{},",
            "\"warning_events\":{},\"critical_events\":{},",
            "\"links_live\":{},\"links_closed\":{}}}"
        ),
        h.uptime.as_secs_f64(),
        h.modulator_steps,
        h.frames_in,
        h.samples_out,
        h.beats,
        h.alarms,
        h.warning_events,
        h.critical_events,
        live,
        closed,
    )
}

/// The `/flight` JSON payload: ring status, not the frames themselves
/// (replay is an in-process API; the endpoint answers "is history being
/// kept, how much, how big").
fn flight_body(sources: &ScopeSources) -> String {
    match &sources.recorder {
        None => "{\"enabled\":false}".to_string(),
        Some(recorder) => {
            let rec = recorder.lock().expect("flight recorder lock poisoned");
            let (from, to) = rec
                .span()
                .map_or((0.0, 0.0), |(a, b)| (a.as_secs_f64(), b.as_secs_f64()));
            format!(
                concat!(
                    "{{\"enabled\":true,\"frames\":{},\"capacity\":{},",
                    "\"interval_s\":{},\"ticks\":{},\"from_s\":{},\"to_s\":{},",
                    "\"series\":{},\"approx_bytes\":{}}}"
                ),
                rec.len(),
                rec.capacity(),
                rec.interval().as_secs_f64(),
                rec.ticks(),
                from,
                to,
                rec.series_names().len(),
                rec.approx_bytes(),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect to scope server");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response
            .split_once("\r\n\r\n")
            .expect("response has a header terminator");
        (head.to_string(), body.to_string())
    }

    #[test]
    fn request_line_parsing() {
        assert_eq!(
            parse_request_line("GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n"),
            Some(("GET", "/metrics"))
        );
        assert_eq!(
            parse_request_line("GET /links?live=1 HTTP/1.1\r\n\r\n"),
            Some(("GET", "/links"))
        );
        assert_eq!(parse_request_line(""), None);
        assert_eq!(parse_request_line("GET"), None);
    }

    #[test]
    fn serves_metrics_health_links_and_404() {
        let registry = Registry::new();
        registry.telemetry().counter("scope.test").add(9);
        let server =
            ScopeServer::bind("127.0.0.1:0", ScopeSources::registry(registry.clone())).unwrap();
        let addr = server.local_addr();

        let (head, body) = http_get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "head: {head}");
        assert!(head.contains("text/plain; version=0.0.4"));
        assert!(body.contains("tonos_uptime_seconds"));
        assert!(body.contains("tonos_scope_test_total 9"));

        let (head, body) = http_get(addr, "/health");
        assert!(head.starts_with("HTTP/1.1 200 OK"));
        assert!(body.starts_with("{\"status\":\"ok\""));
        assert!(body.contains("\"links_live\":0"));

        let (head, body) = http_get(addr, "/links");
        assert!(head.starts_with("HTTP/1.1 200 OK"));
        assert_eq!(body, "[]");

        let (head, body) = http_get(addr, "/flight");
        assert!(head.starts_with("HTTP/1.1 200 OK"));
        assert_eq!(body, "{\"enabled\":false}");

        let (head, _) = http_get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"));

        assert_eq!(server.requests(), 5);
        server.shutdown();
    }

    #[test]
    fn rejects_non_get_and_garbage() {
        let server =
            ScopeServer::bind("127.0.0.1:0", ScopeSources::registry(Registry::new())).unwrap();
        let addr = server.local_addr();

        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "POST /metrics HTTP/1.1\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 405"), "got: {response}");

        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 400"), "got: {response}");
        server.shutdown();
    }

    #[test]
    fn accept_loop_drives_the_recorder() {
        let registry = Registry::new(); // real clock: ticks are time-driven
        let recorder = Arc::new(Mutex::new(FlightRecorder::new(
            registry.clone(),
            crate::recorder::RecorderConfig {
                interval: Duration::from_millis(5),
                retention: Duration::from_secs(1),
            },
        )));
        let server = ScopeServer::bind(
            "127.0.0.1:0",
            ScopeSources::registry(registry).with_recorder(Arc::clone(&recorder)),
        )
        .unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let ticks = recorder.lock().unwrap().ticks();
            if ticks >= 3 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "recorder never ticked (got {ticks})"
            );
            thread::sleep(Duration::from_millis(5));
        }
        let (_, body) = http_get(server.local_addr(), "/flight");
        assert!(body.starts_with("{\"enabled\":true"), "body: {body}");
        assert!(body.contains("\"capacity\":200"));
        server.shutdown();
    }
}

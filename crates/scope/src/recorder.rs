//! The flight recorder: a bounded ring of periodic telemetry deltas.
//!
//! A [`TelemetrySnapshot`] answers "what are the totals *now*?"; an
//! operator debugging a live incident needs "what did this counter do
//! over the last two minutes?". The [`FlightRecorder`] answers that
//! with bounded memory: attached to a [`Registry`], each
//! [`tick`](FlightRecorder::tick) captures a [`SeriesFrame`] holding
//! only the series that **changed** since the previous tick (change
//! compression — an idle fleet costs a timestamp per tick, not a full
//! snapshot). Frames live in a ring sized `retention / interval`
//! (default 1 s × 120 s); when a frame falls off the old end its values
//! fold into a per-series *base*, so replay over the retained window is
//! exact — eviction loses resolution, never mass.
//!
//! Replay is pull-based: [`counter_series`](FlightRecorder::counter_series),
//! [`gauge_series`](FlightRecorder::gauge_series), and
//! [`histogram_series`](FlightRecorder::histogram_series) reconstruct
//! cumulative per-tick values by carrying the last known value across
//! frames without an entry. Ticks read the registry's own [`Clock`] —
//! under a `FakeClock` the whole recorder is deterministic, which is
//! how the replay tests pin 60 s of history exactly.
//!
//! [`Clock`]: tonos_telemetry::Clock

use std::collections::{HashMap, VecDeque};
use std::time::Duration;

use tonos_telemetry::{Registry, TelemetrySnapshot};

/// Recorder cadence and depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecorderConfig {
    /// Time between frames (floor 1 ms).
    pub interval: Duration,
    /// Window of history retained (rounded up to whole intervals).
    pub retention: Duration,
}

impl Default for RecorderConfig {
    /// One frame per second, two minutes of history.
    fn default() -> Self {
        RecorderConfig {
            interval: Duration::from_secs(1),
            retention: Duration::from_secs(120),
        }
    }
}

/// Series id inside one recorder (interned name index).
type SeriesId = u32;

/// One recorded tick: registry-clock timestamp plus the values of every
/// series that changed since the previous tick (absolute values, sparse
/// layout).
#[derive(Debug, Clone, Default)]
pub struct SeriesFrame {
    /// Registry-clock time of the capture.
    pub at: Duration,
    pub(crate) counters: Vec<(SeriesId, u64)>,
    pub(crate) gauges: Vec<(SeriesId, f64)>,
    /// Histogram (count, sum) pairs.
    pub(crate) hists: Vec<(SeriesId, u64, f64)>,
}

impl SeriesFrame {
    /// Number of changed series captured in this frame.
    pub fn changed(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.hists.len()
    }
}

/// Last-known values per series, used both as the delta reference for
/// the next tick and as the fold-in target when frames are evicted.
#[derive(Debug, Default)]
struct SeriesState {
    counters: Vec<u64>,
    gauges: Vec<f64>,
    hists: Vec<(u64, f64)>,
}

impl SeriesState {
    fn ensure(&mut self, id: SeriesId) {
        let need = id as usize + 1;
        if self.counters.len() < need {
            self.counters.resize(need, 0);
            self.gauges.resize(need, 0.0);
            self.hists.resize(need, (0, 0.0));
        }
    }
}

/// Bounded ring of periodic telemetry frames over one [`Registry`].
#[derive(Debug)]
pub struct FlightRecorder {
    registry: Registry,
    interval: Duration,
    capacity: usize,
    names: Vec<String>,
    ids: HashMap<String, SeriesId>,
    /// Values as of just *before* the oldest retained frame.
    base: SeriesState,
    /// Values as of the newest tick (delta reference).
    last: SeriesState,
    frames: VecDeque<SeriesFrame>,
    last_tick: Option<Duration>,
    ticks: u64,
}

impl FlightRecorder {
    /// A recorder over `registry` with the given cadence.
    pub fn new(registry: Registry, config: RecorderConfig) -> Self {
        let interval = config.interval.max(Duration::from_millis(1));
        let capacity = config
            .retention
            .as_nanos()
            .div_ceil(interval.as_nanos())
            .max(1) as usize;
        FlightRecorder {
            registry,
            interval,
            capacity,
            names: Vec::new(),
            ids: HashMap::new(),
            base: SeriesState::default(),
            last: SeriesState::default(),
            frames: VecDeque::with_capacity(capacity + 1),
            last_tick: None,
            ticks: 0,
        }
    }

    /// The registry this recorder samples.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Frame interval.
    pub fn interval(&self) -> Duration {
        self.interval
    }

    /// Maximum retained frames.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Retained frames right now.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether no frame has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Total ticks ever taken (evicted frames included).
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Registry-clock timestamps of the oldest and newest retained
    /// frames, when any.
    pub fn span(&self) -> Option<(Duration, Duration)> {
        Some((self.frames.front()?.at, self.frames.back()?.at))
    }

    /// Captures one frame now, unconditionally.
    pub fn tick(&mut self) {
        let snapshot = self.registry.snapshot();
        self.record(&snapshot);
    }

    /// Captures a frame if at least one interval has elapsed on the
    /// registry clock since the last one. Returns whether it ticked —
    /// poll loops (like the scope server's accept loop) call this every
    /// iteration and let the clock decide.
    pub fn maybe_tick(&mut self) -> bool {
        let now = self.registry.now();
        let due = match self.last_tick {
            None => true,
            Some(prev) => now.saturating_sub(prev) >= self.interval,
        };
        if due {
            self.tick();
        }
        due
    }

    /// Records an externally captured snapshot (e.g. a fleet rollup
    /// shipped from elsewhere) instead of sampling the registry.
    pub fn record(&mut self, snapshot: &TelemetrySnapshot) {
        let mut frame = SeriesFrame {
            at: snapshot.uptime,
            ..SeriesFrame::default()
        };
        for c in &snapshot.counters {
            let (id, fresh) = self.intern(&c.name);
            if fresh || self.last.counters[id as usize] != c.value {
                frame.counters.push((id, c.value));
                self.last.counters[id as usize] = c.value;
            }
        }
        for g in &snapshot.gauges {
            let (id, fresh) = self.intern(&g.name);
            if fresh || self.last.gauges[id as usize].to_bits() != g.value.to_bits() {
                frame.gauges.push((id, g.value));
                self.last.gauges[id as usize] = g.value;
            }
        }
        for h in &snapshot.histograms {
            let (id, fresh) = self.intern(&h.name);
            if fresh || self.last.hists[id as usize] != (h.count, h.sum) {
                frame.hists.push((id, h.count, h.sum));
                self.last.hists[id as usize] = (h.count, h.sum);
            }
        }
        self.last_tick = Some(frame.at);
        self.ticks += 1;
        self.frames.push_back(frame);
        while self.frames.len() > self.capacity {
            let evicted = self.frames.pop_front().expect("non-empty ring");
            // Fold the evicted frame into the base so series replay
            // still starts from the correct value.
            for (id, v) in evicted.counters {
                self.base.ensure(id);
                self.base.counters[id as usize] = v;
            }
            for (id, v) in evicted.gauges {
                self.base.ensure(id);
                self.base.gauges[id as usize] = v;
            }
            for (id, count, sum) in evicted.hists {
                self.base.ensure(id);
                self.base.hists[id as usize] = (count, sum);
            }
        }
    }

    /// Replays a counter over the retained window: one `(at, value)`
    /// per frame, carrying the last known value across frames where the
    /// series did not change. Empty for unknown names.
    pub fn counter_series(&self, name: &str) -> Vec<(Duration, u64)> {
        let Some(&id) = self.ids.get(name) else {
            return Vec::new();
        };
        let mut value = self
            .base
            .counters
            .get(id as usize)
            .copied()
            .unwrap_or_default();
        self.frames
            .iter()
            .map(|f| {
                if let Some(&(_, v)) = f.counters.iter().find(|(i, _)| *i == id) {
                    value = v;
                }
                (f.at, value)
            })
            .collect()
    }

    /// Replays a gauge over the retained window (see
    /// [`counter_series`](FlightRecorder::counter_series)).
    pub fn gauge_series(&self, name: &str) -> Vec<(Duration, f64)> {
        let Some(&id) = self.ids.get(name) else {
            return Vec::new();
        };
        let mut value = self
            .base
            .gauges
            .get(id as usize)
            .copied()
            .unwrap_or_default();
        self.frames
            .iter()
            .map(|f| {
                if let Some(&(_, v)) = f.gauges.iter().find(|(i, _)| *i == id) {
                    value = v;
                }
                (f.at, value)
            })
            .collect()
    }

    /// Replays a histogram's `(at, count, sum)` over the retained
    /// window (see [`counter_series`](FlightRecorder::counter_series)).
    pub fn histogram_series(&self, name: &str) -> Vec<(Duration, u64, f64)> {
        let Some(&id) = self.ids.get(name) else {
            return Vec::new();
        };
        let mut value = self
            .base
            .hists
            .get(id as usize)
            .copied()
            .unwrap_or_default();
        self.frames
            .iter()
            .map(|f| {
                if let Some(&(_, c, s)) = f.hists.iter().find(|(i, _, _)| *i == id) {
                    value = (c, s);
                }
                (f.at, value.0, value.1)
            })
            .collect()
    }

    /// The newest `n` frames, oldest first.
    pub fn tail(&self, n: usize) -> Vec<&SeriesFrame> {
        let skip = self.frames.len().saturating_sub(n);
        self.frames.iter().skip(skip).collect()
    }

    /// Every series name this recorder has ever seen, interning order.
    pub fn series_names(&self) -> &[String] {
        &self.names
    }

    /// Rough heap footprint of the ring: interned names, base/last
    /// tables, and every retained frame's sparse entries. The bench
    /// records this as the recorder memory ceiling.
    pub fn approx_bytes(&self) -> usize {
        let names: usize = self
            .names
            .iter()
            .map(|n| n.len() + std::mem::size_of::<String>())
            .sum();
        let state = 2
            * self.names.len()
            * (std::mem::size_of::<u64>()
                + std::mem::size_of::<f64>()
                + std::mem::size_of::<(u64, f64)>());
        let frames: usize = self
            .frames
            .iter()
            .map(|f| {
                std::mem::size_of::<SeriesFrame>()
                    + f.counters.len() * std::mem::size_of::<(SeriesId, u64)>()
                    + f.gauges.len() * std::mem::size_of::<(SeriesId, f64)>()
                    + f.hists.len() * std::mem::size_of::<(SeriesId, u64, f64)>()
            })
            .sum();
        names + state + frames
    }

    /// Resolves (interning on first use) a series name. Returns the id
    /// and whether it was fresh.
    fn intern(&mut self, name: &str) -> (SeriesId, bool) {
        if let Some(&id) = self.ids.get(name) {
            (id, false)
        } else {
            let id = self.names.len() as SeriesId;
            self.names.push(name.to_string());
            self.ids.insert(name.to_string(), id);
            self.last.ensure(id);
            (id, true)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tonos_telemetry::FakeClock;

    fn rig(interval_s: u64, retention_s: u64) -> (Arc<FakeClock>, Registry, FlightRecorder) {
        let clock = Arc::new(FakeClock::new());
        let registry = Registry::with_clock(clock.clone());
        let recorder = FlightRecorder::new(
            registry.clone(),
            RecorderConfig {
                interval: Duration::from_secs(interval_s),
                retention: Duration::from_secs(retention_s),
            },
        );
        (clock, registry, recorder)
    }

    #[test]
    fn capacity_is_retention_over_interval() {
        let (_, _, rec) = rig(1, 120);
        assert_eq!(rec.capacity(), 120);
        let (_, _, rec) = rig(7, 120);
        assert_eq!(rec.capacity(), 18); // ceil(120/7)
    }

    #[test]
    fn counter_series_carries_values_across_idle_frames() {
        let (clock, registry, mut rec) = rig(1, 60);
        let c = registry.telemetry().counter("x");
        c.add(5);
        rec.tick(); // t=0: x=5
        clock.advance(Duration::from_secs(1));
        rec.tick(); // t=1: idle — no entry for x
        clock.advance(Duration::from_secs(1));
        c.add(2);
        rec.tick(); // t=2: x=7

        let series = rec.counter_series("x");
        assert_eq!(
            series,
            vec![
                (Duration::from_secs(0), 5),
                (Duration::from_secs(1), 5),
                (Duration::from_secs(2), 7),
            ]
        );
        // The idle frame carried only the uptime, no series entries.
        assert_eq!(rec.tail(2)[0].changed(), 0);
    }

    #[test]
    fn eviction_folds_into_base_not_oblivion() {
        let (clock, registry, mut rec) = rig(1, 3);
        let c = registry.telemetry().counter("x");
        for i in 1..=10u64 {
            c.add(1);
            rec.tick();
            clock.advance(Duration::from_secs(1));
            assert!(rec.len() <= 3, "ring exceeded capacity at tick {i}");
        }
        assert_eq!(rec.ticks(), 10);
        let series = rec.counter_series("x");
        // Frames 8..10 retained; replay starts from the evicted value.
        assert_eq!(
            series.iter().map(|&(_, v)| v).collect::<Vec<_>>(),
            vec![8, 9, 10]
        );
    }

    #[test]
    fn maybe_tick_follows_the_registry_clock() {
        let (clock, _, mut rec) = rig(1, 60);
        assert!(rec.maybe_tick()); // first tick always fires
        assert!(!rec.maybe_tick()); // no time passed
        clock.advance(Duration::from_millis(999));
        assert!(!rec.maybe_tick());
        clock.advance(Duration::from_millis(1));
        assert!(rec.maybe_tick());
        assert_eq!(rec.len(), 2);
    }

    #[test]
    fn gauge_and_histogram_series_replay() {
        let (clock, registry, mut rec) = rig(1, 60);
        let t = registry.telemetry();
        let g = t.gauge("g");
        let h = t.histogram("h", &[1.0, 2.0]);
        g.set(1.5);
        h.record(0.5);
        rec.tick();
        clock.advance(Duration::from_secs(1));
        h.record(1.5);
        rec.tick();

        assert_eq!(
            rec.gauge_series("g"),
            vec![(Duration::from_secs(0), 1.5), (Duration::from_secs(1), 1.5),]
        );
        assert_eq!(
            rec.histogram_series("h"),
            vec![
                (Duration::from_secs(0), 1, 0.5),
                (Duration::from_secs(1), 2, 2.0),
            ]
        );
        assert_eq!(rec.counter_series("nope"), Vec::new());
    }

    #[test]
    fn approx_bytes_grows_with_history_and_is_bounded_by_the_ring() {
        let (clock, registry, mut rec) = rig(1, 5);
        let c = registry.telemetry().counter("x");
        rec.tick();
        let empty = rec.approx_bytes();
        for _ in 0..50 {
            c.add(1);
            clock.advance(Duration::from_secs(1));
            rec.tick();
        }
        let full = rec.approx_bytes();
        assert!(full > empty);
        // Another 50 ticks: the ring is saturated, memory must not grow.
        for _ in 0..50 {
            c.add(1);
            clock.advance(Duration::from_secs(1));
            rec.tick();
        }
        assert_eq!(rec.approx_bytes(), full);
    }
}

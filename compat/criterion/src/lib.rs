//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no crates.io access, so this crate provides
//! the API subset the workspace's benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Throughput`], `b.iter(..)`,
//! and the [`criterion_group!`]/[`criterion_main!`] macros — backed by a
//! simple but honest wall-clock measurement loop: per benchmark it runs a
//! calibration pass to size batches, a warm-up, then timed batches, and
//! reports the median per-iteration time plus throughput. That is enough
//! to compare variants of the same code (e.g. telemetry enabled vs.
//! disabled) on the same machine in the same process, which is how the
//! workspace uses it. It does not implement statistical regression
//! analysis, plotting, or result persistence.
//!
//! When the harness binary is invoked by `cargo test` (criterion benches
//! use `harness = false`, so `cargo test` runs them with `--test`-style
//! flags), measurement is skipped and each benchmark body runs once as a
//! smoke check.

use std::time::{Duration, Instant};

/// How long the timed phase of each benchmark aims to run.
const TARGET_MEASURE: Duration = Duration::from_millis(600);
/// How long the warm-up phase aims to run.
const TARGET_WARMUP: Duration = Duration::from_millis(150);
/// Number of timed batches the measurement is split into.
const BATCHES: usize = 11;

/// Black box: prevents the optimizer from deleting a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation attached to a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier combining a function name and a parameter, mirroring
/// `criterion::BenchmarkId::new`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `"{name}/{parameter}"`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", name.into()),
        }
    }

    /// Builds a parameter-only id, mirroring `from_parameter`.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    mode: Mode,
    /// Median per-iteration time, filled in by [`Bencher::iter`].
    result: Option<Duration>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Measure,
    SmokeTest,
}

impl Bencher {
    /// Runs `routine` repeatedly and records the median per-iteration time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.mode == Mode::SmokeTest {
            black_box(routine());
            self.result = Some(Duration::ZERO);
            return;
        }

        // Calibrate: how many iterations fit in one batch?
        let calib_start = Instant::now();
        black_box(routine());
        let once = calib_start.elapsed().max(Duration::from_nanos(1));
        let per_batch = (TARGET_MEASURE.as_nanos() / BATCHES as u128 / once.as_nanos())
            .clamp(1, 1_000_000) as u64;

        // Warm up.
        let warm_start = Instant::now();
        while warm_start.elapsed() < TARGET_WARMUP {
            black_box(routine());
        }

        // Timed batches; the median batch defeats scheduler outliers.
        let mut batch_times: Vec<Duration> = Vec::with_capacity(BATCHES);
        for _ in 0..BATCHES {
            let start = Instant::now();
            for _ in 0..per_batch {
                black_box(routine());
            }
            batch_times.push(start.elapsed());
        }
        batch_times.sort();
        let median_batch = batch_times[BATCHES / 2];
        self.result = Some(median_batch / per_batch as u32);
    }
}

/// A named group of related benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let full = format!("{}/{id}", self.name);
        self.criterion.run_one(&full, self.throughput, f);
        self
    }

    /// Like `bench_function` but threads a borrowed input through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl std::fmt::Display,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (report-flush point in real criterion; no-op here).
    pub fn finish(self) {}
}

/// The benchmark driver.
pub struct Criterion {
    smoke_test: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` invokes harness=false benches with libtest-style
        // flags; `cargo bench` passes `--bench`. Anything that looks like
        // a test invocation downgrades to a single-shot smoke run.
        let smoke_test =
            std::env::args().any(|a| a == "--test") && !std::env::args().any(|a| a == "--bench");
        Criterion { smoke_test }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let name = id.to_string();
        self.run_one(&name, None, f);
        self
    }

    fn run_one<F>(&mut self, name: &str, throughput: Option<Throughput>, f: F)
    where
        F: FnOnce(&mut Bencher),
    {
        let mode = if self.smoke_test {
            Mode::SmokeTest
        } else {
            Mode::Measure
        };
        let mut bencher = Bencher { mode, result: None };
        f(&mut bencher);
        match (mode, bencher.result) {
            (Mode::SmokeTest, _) => println!("{name}: ok (smoke test)"),
            (Mode::Measure, Some(per_iter)) => {
                let ns = per_iter.as_nanos().max(1);
                match throughput {
                    Some(Throughput::Elements(n)) => {
                        let rate = n as f64 * 1e9 / ns as f64;
                        println!(
                            "{name}: {} per iter, {rate:.3e} elem/s",
                            fmt_duration(per_iter)
                        );
                    }
                    Some(Throughput::Bytes(n)) => {
                        let rate = n as f64 * 1e9 / ns as f64;
                        println!(
                            "{name}: {} per iter, {rate:.3e} B/s",
                            fmt_duration(per_iter)
                        );
                    }
                    None => println!("{name}: {} per iter", fmt_duration(per_iter)),
                }
            }
            (Mode::Measure, None) => println!("{name}: no measurement (b.iter never called)"),
        }
    }

    /// Final-report hook invoked by [`criterion_main!`]; no-op here.
    pub fn final_summary(&mut self) {}
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares the harness `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $( $group(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_a_simple_loop() {
        let mut c = Criterion { smoke_test: false };
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(100));
        group.bench_function("sum", |b| {
            b.iter(|| (0..100u64).map(black_box).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn smoke_mode_runs_once() {
        let mut c = Criterion { smoke_test: true };
        let mut count = 0u32;
        c.bench_function("once", |b| b.iter(|| count += 1));
        assert_eq!(count, 1);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("fft", 4096).to_string(), "fft/4096");
        assert_eq!(BenchmarkId::from_parameter(128).to_string(), "128");
    }
}

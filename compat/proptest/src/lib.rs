//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no crates.io access, so this crate provides
//! the subset of the proptest 1.x surface the workspace's property tests
//! use: the [`proptest!`] macro over `name(arg in strategy, ...)` test
//! functions, [`prop_assert!`]/[`prop_assert_eq!`]/[`prop_assume!`],
//! range strategies, [`any`], `prop::collection::vec`, and
//! `prop::bool::ANY`.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case panics with the generated inputs in
//!   the panic message (via the assertion text) but is not minimized.
//! * **Deterministic generation.** Each test's input stream is seeded from
//!   a hash of the test function's name, so failures reproduce exactly —
//!   there is no `PROPTEST_CASES`/persistence machinery.
//! * **`prop_assume!` rejections** simply skip the case; a test that
//!   rejects far more cases than it accepts fails loudly.

use std::ops::{Range, RangeInclusive};

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude::*`.
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assume, proptest, Arbitrary, ProptestConfig,
        Strategy, TestRng,
    };
}

/// Per-test configuration (only the `cases` knob is honoured).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of accepted cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` accepted inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases: cases.max(1),
        }
    }
}

impl Default for ProptestConfig {
    /// 64 cases: smaller than upstream's 256 because the physical models
    /// under test are comparatively expensive per case.
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Marker returned by [`prop_assume!`] rejections.
#[derive(Debug, Clone, Copy)]
pub struct TestCaseReject;

/// Deterministic generator feeding the strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream from a test name (FNV-1a over the bytes).
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[0, bound)`.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "empty bound");
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }
}

/// A source of test inputs: the (non-shrinking) strategy abstraction.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one input.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 strategy range");
        let v = self.start + (self.end - self.start) * rng.unit_f64();
        if v >= self.end {
            self.end.next_down()
        } else {
            v
        }
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 strategy range");
        lo + (hi - lo) * ((rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64))
    }
}

macro_rules! impl_int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let pick = (rng.next_u64() as u128 * span) >> 64;
                (self.start as i128 + pick as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let pick = (rng.next_u64() as u128 * span) >> 64;
                (lo as i128 + pick as i128) as $t
            }
        }
    )*};
}

impl_int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a whole-domain strategy, for [`any`].
pub trait Arbitrary: Sized {
    /// Draws one value uniformly over the domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    /// Finite, sign-symmetric values across magnitudes (not raw bit
    /// patterns: NaN/inf inputs would make most numeric properties
    /// vacuous).
    fn arbitrary(rng: &mut TestRng) -> Self {
        let mag = (rng.unit_f64() * 600.0) - 300.0; // exponent in [-300, 300)
        let mantissa = 1.0 + rng.unit_f64();
        let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
        sign * mantissa * 10f64.powf(mag / 10.0)
    }
}

/// Whole-domain strategy for `T` (mirrors `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub mod prop {
    //! The `prop::` namespace mirrored from upstream.

    pub mod collection {
        //! Collection strategies.
        use crate::{Strategy, TestRng};

        /// Length specification for [`vec()`]: a fixed size or a range.
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            lo: usize,
            hi_inclusive: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange {
                    lo: n,
                    hi_inclusive: n,
                }
            }
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi_inclusive: r.end - 1,
                }
            }
        }

        impl From<std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: std::ops::RangeInclusive<usize>) -> Self {
                SizeRange {
                    lo: *r.start(),
                    hi_inclusive: *r.end(),
                }
            }
        }

        /// A `Vec` strategy: `size` elements drawn from `element`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// Strategy returned by [`vec()`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = if self.size.lo == self.size.hi_inclusive {
                    self.size.lo
                } else {
                    self.size.lo + rng.below(self.size.hi_inclusive - self.size.lo + 1)
                };
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }

    pub mod bool {
        //! Boolean strategies.
        use crate::{Strategy, TestRng};

        /// Strategy type of [`ANY`].
        #[derive(Debug, Clone, Copy)]
        pub struct BoolAny;

        impl Strategy for BoolAny {
            type Value = bool;
            fn sample(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }

        /// Uniform `true`/`false`.
        pub const ANY: BoolAny = BoolAny;
    }
}

/// Declares property tests: `proptest! { #[test] fn name(x in strat) {..} }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = (<$crate::ProptestConfig as ::std::default::Default>::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(::std::stringify!($name));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                while accepted < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= config.cases.saturating_mul(50).max(1000),
                        "proptest stand-in: {} rejected too many cases ({} attempts, {} accepted)",
                        ::std::stringify!($name), attempts, accepted
                    );
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    // The closure exists so `prop_assume!` can early-return
                    // a rejection out of `$body` without exiting the test.
                    #[allow(clippy::redundant_closure_call)]
                    let outcome: ::std::result::Result<(), $crate::TestCaseReject> =
                        (|| { { $body } ::std::result::Result::Ok(()) })();
                    if outcome.is_ok() {
                        accepted += 1;
                    }
                }
            }
        )*
    };
}

/// Asserts inside a property test (non-shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { ::std::assert!($($tt)*) };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { ::std::assert_eq!($($tt)*) };
}

/// Skips the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseReject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::deterministic("case");
        let mut b = TestRng::deterministic("case");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("other");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Range strategies stay inside their bounds.
        #[test]
        fn ranges_are_bounded(x in -3.0_f64..7.5, n in 1_usize..9, k in -5_i64..=5) {
            prop_assert!((-3.0..7.5).contains(&x));
            prop_assert!((1..9).contains(&n));
            prop_assert!((-5..=5).contains(&k));
        }

        /// Assumptions reject without failing.
        #[test]
        fn assume_skips(x in 0.0_f64..1.0) {
            prop_assume!(x > 0.5);
            prop_assert!(x > 0.5);
        }

        /// Vec strategies honour fixed sizes, and bool::ANY produces both
        /// values across a batch.
        #[test]
        fn vec_and_bool(v in prop::collection::vec(-1.0_f64..1.0, 16),
                        bits in prop::collection::vec(prop::bool::ANY, 64)) {
            prop_assert_eq!(v.len(), 16);
            prop_assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
            prop_assert_eq!(bits.len(), 64);
        }

        /// `any::<u64>()` varies.
        #[test]
        fn any_u64_varies(a in any::<u64>(), b in any::<u64>()) {
            // Collisions are astronomically unlikely across 64 cases.
            prop_assert!(a != b);
        }
    }
}

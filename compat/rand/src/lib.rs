//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this repository has no access to a crates.io
//! registry, so the workspace vendors the *small* slice of the `rand` 0.8
//! API it actually uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over floating-point ranges, and [`Rng::gen`] for
//! integer seeds. The generator is xoshiro256++ seeded through SplitMix64
//! — not the upstream ChaCha12, so *sequences differ from real `rand`*,
//! but every consumer in this workspace only requires determinism for a
//! fixed seed and sound statistical quality, both of which hold.
//!
//! Nothing here is cryptographically secure; it is simulation-grade PRNG
//! plumbing only.

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    //! Deterministic generators mirroring `rand::rngs`.
    pub use crate::StdRng;
}

/// Low-level entropy source: everything is derived from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly over their whole domain (the
/// stand-in for `rand`'s `Standard` distribution).
pub trait SampleStandard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleStandard for f64 {
    /// Uniform in `[0, 1)` with 53-bit resolution.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can produce a uniform sample (the stand-in for
/// `rand`'s `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        let u = f64::sample(rng);
        let v = self.start + (self.end - self.start) * u;
        // Floating rounding can land exactly on `end`; fold it back.
        if v >= self.end {
            self.end.next_down()
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty f64 range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + (hi - lo) * u
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let pick = (rng.next_u64() as u128 * span) >> 64;
                (self.start as i128 + pick as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty integer range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let pick = (rng.next_u64() as u128 * span) >> 64;
                (lo as i128 + pick as i128) as $t
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly over the type's whole domain.
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a single `u64` (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 step: the standard seed-expansion mixer.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The workspace's deterministic generator: xoshiro256++.
///
/// Statistically solid for simulation, tiny, and dependency-free. Not the
/// upstream `StdRng` algorithm — sequences are *not* bit-compatible with
/// real `rand`, only self-consistent per seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *word = u64::from_le_bytes(bytes);
        }
        if s.iter().all(|&w| w == 0) {
            // The all-zero state is a fixed point; re-derive a valid one.
            return StdRng::seed_from_u64(0);
        }
        StdRng { s }
    }

    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!((f64::MIN_POSITIVE..1.0).contains(&v));
            let w: f64 = rng.gen_range(-3.0..=3.0);
            assert!((-3.0..=3.0).contains(&w));
        }
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mean = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn integer_ranges_cover_the_domain() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
            let v: i64 = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_produces_varied_u64s() {
        let mut rng = StdRng::seed_from_u64(0);
        let a: u64 = rng.gen();
        let b: u64 = rng.gen();
        assert_ne!(a, b);
    }

    #[test]
    fn zero_seed_is_valid() {
        let mut rng = StdRng::from_seed([0u8; 32]);
        assert_ne!(rng.next_u64(), 0);
    }
}
